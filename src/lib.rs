//! Umbrella crate for the Chimera reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests under
//! `tests/` and the runnable examples under `examples/`. All functionality
//! lives in the member crates; the [`chimera`] facade crate is the public
//! entry point for downstream users.

pub use chimera;
