#!/usr/bin/env bash
# Hermetic CI for the Chimera reproduction.
#
# Everything runs --offline against the committed Cargo.lock: the build
# must succeed on a machine that has never talked to crates.io, because
# the workspace depends on nothing outside itself. The final check makes
# that hermeticity an invariant rather than an accident.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== build benches (offline) =="
cargo build --offline --benches

echo "== test (offline) =="
cargo test -q --offline

echo "== interpreter differential suite (flat vs reference) =="
# Byte-identical results and traces across both stepping implementations
# on every workload and 64 generated racy programs (DESIGN.md §8). Runs
# in the suite above too; invoked explicitly so a failure is unmissable.
cargo test -q --offline --test vm_differential

echo "== fused-differential gate (superinstruction + spec-engine identity) =="
# The fusion pass's unit invariants (sidecar agrees with the summary,
# fused sites never exceed static pairs) and the differential cases that
# arm the full layered engine — fusion + batch commit + speculative
# rounds — against the reference interpreter (DESIGN.md §13). Subsets of
# suites above; named so a fusion regression is unmissable.
cargo test -q --offline -p chimera-runtime --lib flat::tests
cargo test -q --offline --test vm_differential parallel_mode

echo "== parallel-smoke gate (DRF-certified parallel mode) =="
# End-to-end CLI: the parallel flat VM must reach the same final state
# as serial on the checked-in fixture, with CHIMERA_SERIAL=1 respected
# as the fallback (DESIGN.md §13). The full nine-workload bit-identity
# pin (results, traces, replay logs) lives in vm_differential.
chimera_bin="cargo run -q --release --offline -p chimera --bin chimera --"
par_hash=$($chimera_bin run fixtures/racy_counter.mc --parallel 4 --no-jitter --json \
    | grep '"state_hash"')
ser_hash=$($chimera_bin run fixtures/racy_counter.mc --no-jitter --json \
    | grep '"state_hash"')
pin_hash=$(CHIMERA_SERIAL=1 $chimera_bin run fixtures/racy_counter.mc --parallel 4 --no-jitter --json \
    | grep '"state_hash"')
if [ "$par_hash" != "$ser_hash" ] || [ "$pin_hash" != "$ser_hash" ]; then
    echo "parallel smoke diverged: serial=$ser_hash parallel=$par_hash pinned=$pin_hash" >&2
    exit 1
fi
echo "parallel mode bit-identical to serial (and CHIMERA_SERIAL=1 respected)"

echo "== DRF-equivalence certification =="
# Every workload certifies race-free instrumented and every dynamic race
# joins a static relay pair; racy corpus + generative sweep race
# uninstrumented (DESIGN.md §10). Runs in the suite above too; invoked
# explicitly so a failure is unmissable.
cargo test -q --offline --test drf_equivalence

echo "== schedule exploration (adversarial schedulers) =="
# Nine workloads certify replay under PCT + preemption-bounded hostile
# schedules, the racy corpus diverges under the same sweep, and both
# interpreters stay bit-identical per (strategy, seed) (DESIGN.md §11).
# Runs in the suite above too; invoked explicitly so a failure is
# unmissable.
cargo test -q --offline --test schedule_exploration

echo "== replay log format + divergence bisection =="
# Log format v2 invariants (round-trip, v1 back-compat, corruption
# rejection with chunk attribution) and the checkpoint-bisection oracle
# localizing planted divergences on every workload (DESIGN.md §12).
# Run in the suites above too; invoked explicitly so a failure is
# unmissable.
cargo test -q --offline -p chimera-replay
cargo test -q --offline --test replay_bisection

echo "== explore smoke (CLI sweep on checked-in fixture) =="
# One-sample end-to-end run of the CLI: instrument a checked-in racy
# program and certify its replay under every strategy — zero
# divergences, zero single-holder violations (EXPERIMENTS.md). The
# uninstrumented-must-diverge side is pinned by schedule_exploration.
cargo run -q --release --offline -p chimera --bin chimera -- \
    explore fixtures/racy_counter.mc --seeds 1 --drd

echo "== fleet containers + resume idempotence =="
# Corpus/journal hostile-input hardening (every-prefix truncation,
# byte-flip detection, named-section errors) and the orchestrator's
# resume guarantee: budget + --resume renders byte-identical reports to
# one-shot and re-executes nothing (DESIGN.md §14). Runs in the suite
# above too; invoked explicitly so a failure is unmissable.
cargo test -q --offline -p chimera-fleet

echo "== fleet smoke (journaled CLI grid, resumed twice) =="
# End-to-end CLI: a small grid on the checked-in fixture executes and
# journals every cell, then two --resume re-runs are pure journal hits —
# zero cells re-executed (EXPERIMENTS.md).
fleet_dir=$(mktemp -d)
fleet_run1=$($chimera_bin fleet fixtures/racy_counter.mc --seeds 2 --check-determinism \
    --dir "$fleet_dir")
echo "$fleet_run1" | grep -q "6 executed now, 0 journal hit(s)" || {
    echo "fleet first run did not execute the full grid:" >&2
    echo "$fleet_run1" >&2
    exit 1
}
for attempt in 1 2; do
    fleet_rerun=$($chimera_bin fleet fixtures/racy_counter.mc --seeds 2 --check-determinism \
        --dir "$fleet_dir" --resume)
    echo "$fleet_rerun" | grep -q "0 executed now, 6 journal hit(s)" || {
        echo "fleet resume #$attempt re-executed cells:" >&2
        echo "$fleet_rerun" >&2
        exit 1
    }
done
rm -rf "$fleet_dir"
echo "fleet grid journaled once, resumed twice with zero re-executions"

echo "== plan round-trip gate (evidence -> demotion -> replanned run) =="
# The full hybrid loop on the CLI (DESIGN.md §15): a hostile sweep
# exports evidence for the demotable fixture, `plan` certifies demotion
# of every statically-alarmed-but-dynamically-clean pair, and the
# replanned run replays deterministically and race-free under --verify.
# The differential suite behind it is tests/plan_soundness.rs.
plan_dir=$(mktemp -d)
$chimera_bin explore fixtures/partitioned_sum.mc --seeds 3 --evidence "$plan_dir"
plan_out=$($chimera_bin plan fixtures/partitioned_sum.mc --evidence "$plan_dir" \
    -o "$plan_dir/partitioned_sum.chpl")
echo "$plan_out" | grep -q "2 of 2 static pair(s) demoted" || {
    echo "demotable fixture did not fully demote:" >&2
    echo "$plan_out" >&2
    exit 1
}
$chimera_bin run fixtures/partitioned_sum.mc --plan "$plan_dir/partitioned_sum.chpl" --verify \
    | grep -q "verified under plan" || {
    echo "replanned run failed verification" >&2
    exit 1
}
# Negative side 1: the racy fixture's dynamically-confirmed pairs must
# never earn demotion (its remaining false-positive pair may).
$chimera_bin explore fixtures/racy_counter.mc --seeds 3 --evidence "$plan_dir"
racy_out=$($chimera_bin plan fixtures/racy_counter.mc --evidence "$plan_dir" \
    -o "$plan_dir/racy_counter.chpl")
echo "$racy_out" | grep -q "keep .*dynamically confirmed racy" || {
    echo "racy fixture lost its dynamically-confirmed kept pairs:" >&2
    echo "$racy_out" >&2
    exit 1
}
# Negative side 2: coverage below threshold refuses with the named code.
if refuse_out=$($chimera_bin plan fixtures/partitioned_sum.mc --evidence "$plan_dir" \
    --min-seeds 99 -o "$plan_dir/never.chpl" 2>&1); then
    echo "under-covered evidence was not refused:" >&2
    echo "$refuse_out" >&2
    exit 1
fi
echo "$refuse_out" | grep -q "demotion refused (insufficient-seeds)" || {
    echo "refusal did not name its code:" >&2
    echo "$refuse_out" >&2
    exit 1
}
rm -rf "$plan_dir"
echo "plan round-trip: demoted, verified, racy pairs kept, thin coverage refused"

echo "== clippy (deny warnings) =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "== points-to scaling smoke (1 sample) =="
# One sample per benchmark just proves the naive and worklist solvers both
# still run at every N. CHIMERA_BENCH_JSON stays unset so this never
# clobbers the committed BENCH_pta.json (see EXPERIMENTS.md).
CHIMERA_BENCH_SAMPLES=1 CHIMERA_BENCH_WARMUP=1 \
    cargo bench --offline -p chimera-bench --bench pta_scaling

echo "== interpreter scaling smoke (1 sample) =="
# Proves both stepping paths still run every bench workload; committed
# BENCH_vm.json is refreshed manually (see EXPERIMENTS.md).
CHIMERA_BENCH_SAMPLES=1 CHIMERA_BENCH_WARMUP=1 \
    cargo bench --offline -p chimera-bench --bench interp_scaling

echo "== race-detector overhead smoke (1 sample) =="
# Proves the FastTrack detector still attaches cleanly to every bench
# workload (and that they stay dynamically race-free); committed
# BENCH_drd.json is refreshed manually (see EXPERIMENTS.md).
CHIMERA_BENCH_SAMPLES=1 CHIMERA_BENCH_WARMUP=1 \
    cargo bench --offline -p chimera-bench --bench drd_overhead

echo "== scheduler-seam overhead smoke (1 sample) =="
# Proves every strategy still runs the bench workloads to clean exit;
# committed BENCH_sched.json is refreshed manually (see EXPERIMENTS.md).
CHIMERA_BENCH_SAMPLES=1 CHIMERA_BENCH_WARMUP=1 \
    cargo bench --offline -p chimera-bench --bench sched_explore

echo "== replay-format overhead smoke (1 sample) =="
# Proves every workload still records, round-trips both container
# versions, and that v2 never emits more bytes than v1 (the bench
# asserts it); committed BENCH_replay.json is refreshed manually (see
# EXPERIMENTS.md).
CHIMERA_BENCH_SAMPLES=1 CHIMERA_BENCH_WARMUP=1 \
    cargo bench --offline -p chimera-bench --bench replay_format

echo "== fleet throughput smoke (1 sample) =="
# Proves the ≥1,000-cell grid (nine workloads × three strategies × 38
# seeds) still completes clean under both serial and work-stealing
# execution with identical reports; committed BENCH_fleet.json is
# refreshed manually (see EXPERIMENTS.md).
CHIMERA_BENCH_SAMPLES=1 CHIMERA_BENCH_WARMUP=1 \
    cargo bench --offline -p chimera-bench --bench fleet_throughput

echo "== instrumentation overhead smoke (1 sample) =="
# Proves the evidence -> plan -> overhead loop end to end and asserts
# the payoff: planned makespan ≤ full on every workload and strictly
# below on ≥3/4 (the bench itself asserts both); committed
# BENCH_plan.json is refreshed manually (see EXPERIMENTS.md).
CHIMERA_BENCH_SAMPLES=1 CHIMERA_BENCH_WARMUP=1 \
    cargo bench --offline -p chimera-bench --bench instr_overhead

echo "== dependency purity =="
# Every node in the full dependency graph (normal, dev, and build deps)
# must be a workspace-local chimera-* crate. `cargo tree` also emits
# section headers like [dev-dependencies] and blank lines; anything else
# is a third-party crate sneaking back in.
impure=$(cargo tree --offline --workspace -e normal,dev,build --prefix none \
    | sed 's/ (\*)$//' \
    | grep -v '^chimera' \
    | grep -v '^\[' \
    | grep -v '^$' || true)
if [ -n "$impure" ]; then
    echo "non-workspace dependencies found:" >&2
    echo "$impure" >&2
    exit 1
fi
echo "dependency graph is workspace-only"

echo "CI OK"
