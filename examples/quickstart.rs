//! Quickstart: take a racy program, run the full Chimera pipeline, record
//! an execution, and replay it deterministically under different timing.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use chimera::{analyze, measure, PipelineConfig};
use chimera_minic::compile;
use chimera_runtime::ExecConfig;

fn main() {
    // A classic lost-update race: two threads increment `g` without a
    // lock. The final value depends on scheduling.
    let source = r#"
        int g;
        void worker(int v) {
            int i; int x;
            for (i = 0; i < 100; i = i + 1) {
                x = g;
                g = x + v;
            }
        }
        int main() {
            int t;
            t = spawn(worker, 1);
            worker(2);
            join(t);
            print(g);
            return 0;
        }
    "#;
    let program = compile(source).expect("valid MiniC");

    // Static race detection + profiling + weak-lock instrumentation.
    let analysis = analyze(&program, &PipelineConfig::default());
    println!("== Chimera analysis ==");
    println!("race pairs found by RELAY : {}", analysis.races.pairs.len());
    println!("weak-locks inserted       : {}", analysis.instrumented.weak_locks);
    println!(
        "plan: {} loop-lock sites, {} bb-lock sites, {} instr-lock sites",
        analysis.plan.loop_locks.values().map(|v| v.len()).sum::<usize>(),
        analysis.plan.bb_locks.values().map(|v| v.len()).sum::<usize>(),
        analysis.plan.instr_locks.values().map(|v| v.len()).sum::<usize>(),
    );
    println!("{}", analysis.races.describe(&program));

    // Record once, then replay under a different seed (different timing
    // jitter). The replay must match exactly.
    let m = measure(&analysis, &ExecConfig::default(), 42);
    println!("== record & replay ==");
    println!("baseline  outcome: {:?}", m.baseline.outcome);
    println!("recording outcome: {:?}", m.recording.result.outcome);
    println!("replayed  outcome: {:?}", m.replay.result.outcome);
    println!("record overhead  : {:.2}x", m.record_overhead);
    println!("replay overhead  : {:.2}x", m.replay_overhead);
    println!(
        "deterministic    : {}",
        if m.deterministic { "YES" } else { "NO" }
    );
    let (input_kb, order_kb) = m.recording.logs.compressed_sizes();
    println!("log sizes        : input {input_kb} B, order {order_kb} B");
    assert!(m.deterministic, "Chimera's guarantee failed");
}
