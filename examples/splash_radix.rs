//! The paper's Figure 4 walkthrough on the `radix` workload: how symbolic
//! bounds analysis decides between ranged loop-locks (the zero-fill loop,
//! precise bounds) and a `-INF..+INF` loop-lock (the histogram with a
//! data-dependent index), and what each optimization level costs.
//!
//! ```text
//! cargo run --release --example splash_radix
//! ```

use chimera::{analyze_workload, figure5_configs, measure_trials};
use chimera_runtime::ExecConfig;
use chimera_workloads::by_name;

fn main() {
    let workload = by_name("radix").expect("radix workload exists");
    let exec = ExecConfig::default();

    // Show the loop-lock decisions of the full optimization set.
    let analysis = analyze_workload(
        &workload,
        4,
        &chimera::OptSet::all(),
        6,
        &exec,
    );
    println!("== radix loop-lock plan (paper Fig. 4) ==");
    for ((f, header), specs) in &analysis.plan.loop_locks {
        let fname = &analysis.program.funcs[f.index()].name;
        for s in specs {
            match &s.range {
                Some((lo, hi)) => {
                    println!("  {fname} loop@{header}: lock {:?} range [{lo}] .. [{hi}]", s.lock)
                }
                None => println!("  {fname} loop@{header}: lock {:?} range -INF..+INF", s.lock),
            }
        }
    }

    // Mini Figure 5: record overhead under each optimization set.
    println!("\n== radix recording overhead per optimization set ==");
    for (label, opts) in figure5_configs() {
        let a = analyze_workload(&workload, 4, &opts, 6, &exec);
        let s = measure_trials(&a, &exec, 2);
        println!(
            "  {label:<18} {:>8.2}x  (deterministic: {})",
            s.record_overhead, s.all_deterministic
        );
        assert!(s.all_deterministic, "replay must never diverge");
    }
}
