//! Recording a production-style server: the `apache` workload.
//!
//! Demonstrates the paper's headline claim for server applications:
//! recording costs almost nothing because the weak-lock and logging work
//! hides inside network I/O wait — and replay is *faster* than real time
//! because recorded input is fed back without waiting for the network.
//!
//! ```text
//! cargo run --release --example record_webserver
//! ```

use chimera::{analyze_workload, measure_trials, OptSet};
use chimera_minic::ir::LockGranularity;
use chimera_runtime::ExecConfig;
use chimera_workloads::by_name;

fn main() {
    let workload = by_name("apache").expect("apache workload exists");
    let exec = ExecConfig::default();
    println!("analyzing '{}' ({})...", workload.name, workload.blurb);
    let analysis = analyze_workload(&workload, 4, &OptSet::all(), 6, &exec);

    println!("\n== static analysis ==");
    println!("race pairs        : {}", analysis.races.pairs.len());
    println!(
        "profile           : {} runs, {} concurrent function pairs",
        analysis.profile.runs,
        analysis.profile.concurrent.len()
    );
    println!(
        "plan              : {} weak-locks ({} func sites, {} loop sites, {} bb sites, {} instr sites)",
        analysis.plan.n_weak_locks,
        analysis.plan.func_locks.values().map(|v| v.len()).sum::<usize>(),
        analysis.plan.loop_locks.values().map(|v| v.len()).sum::<usize>(),
        analysis.plan.bb_locks.values().map(|v| v.len()).sum::<usize>(),
        analysis.plan.instr_locks.values().map(|v| v.len()).sum::<usize>(),
    );

    // The hot memset-like library loop must be covered by a *ranged*
    // loop-lock — the paper's §7.3 apache example.
    let buf_clear = analysis.program.func_by_name("buf_clear").expect("library fn");
    let ranged = analysis
        .plan
        .loop_locks
        .iter()
        .filter(|((f, _), specs)| *f == buf_clear.id && specs.iter().any(|s| s.range.is_some()))
        .count();
    println!("buf_clear loop    : {ranged} ranged loop-lock(s) (workers stay parallel)");

    let summary = measure_trials(&analysis, &exec, 3);
    let m = summary.last.as_ref().expect("trials ran");
    println!("\n== record & replay (mean of 3 trials) ==");
    println!("record overhead   : {:.2}x", summary.record_overhead);
    println!("replay overhead   : {:.2}x (recorded input fed without network wait)", summary.replay_overhead);
    println!("deterministic     : {}", summary.all_deterministic);
    let stats = &m.recording.result.stats;
    println!(
        "I/O wait          : {} of {} cycles ({:.0}%)",
        stats.io_wait,
        m.recording.result.makespan,
        100.0 * stats.io_wait as f64 / m.recording.result.makespan as f64
    );
    for g in [
        LockGranularity::Function,
        LockGranularity::Loop,
        LockGranularity::BasicBlock,
        LockGranularity::Instruction,
    ] {
        println!(
            "{g:>6}-lock ops    : {}",
            stats.weak_acquires.get(&g).copied().unwrap_or(0)
        );
    }
    let (input_b, order_b) = m.recording.logs.compressed_sizes();
    println!("log sizes         : input {input_b} B, order {order_b} B");
    assert!(summary.all_deterministic);
}
