//! The debugging story from the paper's introduction: a rare concurrency
//! bug manifests only under some schedules. Without Chimera, re-running
//! the program cannot reproduce it; with Chimera, the one recording that
//! caught the bug replays it exactly, every time.
//!
//! The bug here is an atomicity violation: a "check-then-act" on a shared
//! balance that can be interleaved, driving the balance negative.
//!
//! ```text
//! cargo run --example debug_race
//! ```

use chimera::{analyze, PipelineConfig};
use chimera_minic::compile;
use chimera_replay::{record, replay};
use chimera_runtime::{ExecConfig, ThreadId};

const BANK: &str = r#"
    int balance;
    int overdrafts;
    int audit_log[64];
    int audit_pos;
    // Audit every attempt (the call between check and act keeps Chimera's
    // weak-locks at instruction granularity here, so the racy interleaving
    // window stays open — coarser regions would mask the bug, paper 2.4).
    int audit_fee(int amount) {
        if (audit_pos < 64) {
            audit_log[audit_pos] = amount;
            audit_pos = audit_pos + 1;
        }
        return 0;
    }
    void withdraw_loop(int amount) {
        int i; int ok; int fee; int think; int j;
        for (i = 0; i < 40; i = i + 1) {
            // Irregular, input-dependent think time (network/user delay):
            // this is what makes the bug timing-dependent and rare.
            think = sys_input(7) % 24;
            fee = 0;
            for (j = 0; j < think; j = j + 1) { fee = fee + j - j; }
            // check...
            ok = 0;
            if (balance >= amount) { ok = 1; }
            fee = fee + audit_fee(amount);
            // ...then act (not atomic: another thread can slip in between)
            if (ok == 1) {
                balance = balance - amount - fee;
            }
            if (balance < 0) {
                overdrafts = overdrafts + 1;
                balance = 0;
            }
        }
    }
    int main() {
        int t1; int t2;
        balance = 60;
        t1 = spawn(withdraw_loop, 7);
        t2 = spawn(withdraw_loop, 5);
        join(t1);
        join(t2);
        print(balance);
        print(overdrafts);
        return 0;
    }
"#;

fn main() {
    let program = compile(BANK).expect("valid MiniC");
    let analysis = analyze(&program, &PipelineConfig::default());
    println!(
        "RELAY reports {} race pairs; {} weak-locks inserted",
        analysis.races.pairs.len(),
        analysis.instrumented.weak_locks
    );

    // Hunt for a recording in which the bug (an overdraft) manifests.
    let mut buggy = None;
    for seed in 0..200u64 {
        let rec = record(
            &analysis.instrumented,
            &ExecConfig {
                seed,
                ..ExecConfig::default()
            },
        );
        let out = rec.result.output_of(ThreadId(0));
        if out.len() == 2 && out[1] > 0 {
            println!("seed {seed}: bug manifested (overdrafts = {})", out[1]);
            buggy = Some((seed, rec));
            break;
        }
    }
    let Some((seed, recording)) = buggy else {
        println!("the bug did not manifest in 200 recorded runs — rerun me");
        return;
    };

    // Now the payoff: replay that one buggy recording five times, under
    // five different timing seeds. Every replay reproduces the bug.
    println!("replaying the buggy recording 5 times:");
    for replay_seed in [1u64, 99, 1234, 9999, 424242] {
        let rep = replay(
            &analysis.instrumented,
            &recording.logs,
            &ExecConfig {
                seed: replay_seed,
                ..ExecConfig::default()
            },
        );
        let out = rep.result.output_of(ThreadId(0));
        println!(
            "  replay(seed={replay_seed:>6}): balance={} overdrafts={} complete={}",
            out[0], out[1], rep.complete
        );
        assert_eq!(
            out,
            recording.result.output_of(ThreadId(0)),
            "replay diverged from the buggy recording"
        );
    }
    println!("bug from recording seed {seed} reproduced deterministically 5/5 times");
}
