//! The IR optimizer must be behavior-preserving: for every workload and a
//! batch of small programs, the optimized program produces the same
//! output, final memory, and exit code under the VM.

use chimera_minic::opt::optimize;
use chimera_runtime::{execute, ExecConfig};

fn assert_equivalent(src: &str) {
    let base = chimera_minic::compile(src).expect("compiles");
    let mut opt = base.clone();
    let _ = optimize(&mut opt);
    let exec = ExecConfig::default();
    let a = execute(&base, &exec);
    let b = execute(&opt, &exec);
    assert_eq!(a.outcome, b.outcome, "{src}");
    assert_eq!(a.output, b.output, "{src}");
    assert_eq!(a.state_hash, b.state_hash, "{src}");
    assert!(
        b.stats.instrs <= a.stats.instrs,
        "optimizer must not add work"
    );
}

#[test]
fn optimizer_preserves_workload_behavior() {
    for w in chimera_workloads::all() {
        let src = w.source(&w.eval_params(2));
        assert_equivalent(&src);
    }
}

#[test]
fn optimizer_preserves_small_program_behavior() {
    for src in [
        "int main() { int x; x = 2 + 3 * 4 - 1; print(x); return x; }",
        "int a[8]; int main() { int i; for (i = 0; i < 4 + 4; i++) { a[i] = i * (1 + 1); }
         print(a[7]); return 0; }",
        "int main() { if (2 > 1) { print(1); } else { print(0); } return 0; }",
        "int g; lock_t m;
         void w(int v) { lock(&m); g += v * 1; unlock(&m); }
         int main() { int t; t = spawn(w, 2 + 3); w(0 * 9 + 4); join(t);
                      lock(&m); print(g); unlock(&m); return 0; }",
        "struct p { int x; int y; }; struct p s;
         int main() { s.x = 3 * 3; s.y = s.x + 0 * 5; print(s.y); return 0; }",
    ] {
        assert_equivalent(src);
    }
}

#[test]
fn optimizer_shrinks_workload_code() {
    let mut shrunk = 0;
    for w in chimera_workloads::all() {
        let mut p = w.compile(&w.eval_params(2)).unwrap();
        shrunk += optimize(&mut p);
    }
    assert!(shrunk > 0, "the workloads contain foldable arithmetic");
}
