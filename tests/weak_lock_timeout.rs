//! The weak part of weak-locks (paper §2.3): a weak-lock held across a
//! blocking wait must not deadlock the program — the runtime forcibly
//! preempts the holder, hands the lock to the starving waiter, and the
//! forced release is recorded (holder + instruction count) and re-injected
//! on replay.
//!
//! The paper's benchmarks never triggered this path ("none of our
//! benchmarks have exhibited a weak-lock timeout"); these tests construct
//! the condvar-deadlock scenario deliberately and verify both liveness and
//! replay fidelity.

use chimera_minic::compile;
use chimera_minic::diag::Span;
use chimera_minic::ir::{
    FuncId, Instr, LockGranularity, Program, Terminator, WeakLockId,
};
use chimera_replay::{record, replay, verify_determinism};
use chimera_runtime::{execute, execute_supervised, ExecConfig, SchedStrategy, SingleHolderProbe};

/// Wrap the whole body of `func` in weak-lock `lock` — the hand-rolled
/// equivalent of a function-granularity instrumentation decision.
fn wrap_function_in_weak_lock(program: &mut Program, func: FuncId, lock: WeakLockId) {
    let f = &mut program.funcs[func.index()];
    let entry = f.entry;
    f.block_mut(entry).instrs.insert(
        0,
        Instr::WeakAcquire {
            lock,
            granularity: LockGranularity::Function,
            range: None,
        },
    );
    f.block_mut(entry).spans.insert(0, Span::default());
    for b in 0..f.blocks.len() {
        if matches!(f.blocks[b].term, Terminator::Return(_)) {
            f.blocks[b]
                .instrs
                .push(Instr::WeakRelease { lock });
            f.blocks[b].spans.push(Span::default());
        }
    }
    program.weak_locks = program.weak_locks.max(lock.0 + 1);
}

/// A consumer blocks in `cond_wait` while (artificially) holding a
/// weak-lock; the producer needs that same weak-lock to reach its
/// `cond_signal`. Without §2.3's timeout this deadlocks forever.
const CONDVAR_DEADLOCK: &str = r#"
    int ready; int data; lock_t m; cond_t c;
    void consumer(int unused) {
        lock(&m);
        while (ready == 0) {
            cond_wait(&c, &m);
        }
        print(data);
        unlock(&m);
    }
    void producer(int v) {
        lock(&m);
        data = v;
        ready = 1;
        cond_signal(&c);
        unlock(&m);
    }
    int main() {
        int t1; int t2;
        t1 = spawn(consumer, 0);
        t2 = spawn(producer, 77);
        join(t1);
        join(t2);
        return 0;
    }
"#;

fn deadlocky_program() -> Program {
    let mut p = compile(CONDVAR_DEADLOCK).expect("valid MiniC");
    let consumer = p.func_by_name("consumer").unwrap().id;
    let producer = p.func_by_name("producer").unwrap().id;
    // One shared weak-lock held for both whole bodies: the consumer parks
    // inside cond_wait still holding it; the producer stalls acquiring it.
    wrap_function_in_weak_lock(&mut p, consumer, WeakLockId(0));
    wrap_function_in_weak_lock(&mut p, producer, WeakLockId(0));
    p
}

fn exec_with_timeout(timeout: u64) -> ExecConfig {
    ExecConfig {
        weak_timeout: timeout,
        ..ExecConfig::default()
    }
}

#[test]
fn timeout_resolves_the_condvar_deadlock() {
    let p = deadlocky_program();
    let r = execute(&p, &exec_with_timeout(2_000));
    assert!(r.outcome.is_exit(), "{:?}", r.outcome);
    assert!(
        r.stats.forced_releases > 0,
        "the deadlock must be resolved by a forced release"
    );
}

#[test]
fn forced_release_preserves_single_holder_invariant_and_output() {
    let p = deadlocky_program();
    let r = execute(&p, &exec_with_timeout(2_000));
    // The consumer's print must still observe the produced value.
    let consumer_out: Vec<i64> = r
        .output
        .iter()
        .map(|(_, v)| *v)
        .collect();
    assert_eq!(consumer_out, vec![77]);
}

#[test]
fn forced_releases_are_recorded_and_replayed_exactly() {
    let p = deadlocky_program();
    for seed in [1u64, 9, 42] {
        let rec = record(
            &p,
            &ExecConfig {
                seed,
                weak_timeout: 2_000,
                ..ExecConfig::default()
            },
        );
        assert!(rec.result.outcome.is_exit(), "{:?}", rec.result.outcome);
        assert!(
            !rec.logs.forced.is_empty(),
            "recording must contain forced-release events"
        );
        let rep = replay(
            &p,
            &rec.logs,
            &ExecConfig {
                seed: seed + 555,
                weak_timeout: 2_000,
                ..ExecConfig::default()
            },
        );
        let v = verify_determinism(&rec.result, &rep.result);
        assert!(
            rep.complete && v.equivalent,
            "seed {seed}: forced-release replay diverged: {:?}",
            v.differences
        );
        assert_eq!(
            rep.result.stats.forced_releases, rec.result.stats.forced_releases,
            "replay must re-inject exactly the recorded preemptions"
        );
    }
}

#[test]
fn larger_timeout_just_delays_the_resolution() {
    let p = deadlocky_program();
    let fast = execute(&p, &exec_with_timeout(1_000));
    let slow = execute(&p, &exec_with_timeout(50_000));
    assert!(fast.outcome.is_exit());
    assert!(slow.outcome.is_exit());
    assert!(
        slow.makespan > fast.makespan,
        "waiting longer before forcing must cost virtual time ({} vs {})",
        slow.makespan,
        fast.makespan
    );
}

/// The hostile schedules for the timeout tests: PCT with change points
/// sized to this short program, and preemption-bounding with `period: 1`
/// so a context switch is forced at *every* weak-lock acquire/release and
/// shared-access boundary — including the acquire the timeout hands off.
fn adversarial_strategies() -> Vec<SchedStrategy> {
    vec![
        SchedStrategy::Pct {
            depth: 3,
            span: 500,
        },
        SchedStrategy::PreemptBound {
            budget: 4_096,
            period: 1,
        },
    ]
}

#[test]
fn timeout_handoff_survives_adversarial_schedules() {
    let p = deadlocky_program();
    for sched in adversarial_strategies() {
        for seed in [1u64, 7, 23] {
            let cfg = ExecConfig {
                seed,
                sched,
                weak_timeout: 2_000,
                ..ExecConfig::default()
            };
            let mut probe = SingleHolderProbe::default();
            let r = execute_supervised(&p, &cfg, &mut probe);
            assert!(
                r.outcome.is_exit(),
                "{} seed {seed}: {:?}",
                sched.name(),
                r.outcome
            );
            assert!(
                r.stats.forced_releases > 0,
                "{} seed {seed}: deadlock must resolve via forced release",
                sched.name()
            );
            let out: Vec<i64> = r.output.iter().map(|(_, v)| *v).collect();
            assert_eq!(
                out,
                vec![77],
                "{} seed {seed}: consumer lost the produced value",
                sched.name()
            );
            assert!(
                probe.holds(),
                "{} seed {seed}: single-holder violated: {:?}",
                sched.name(),
                probe.violations
            );
            assert!(probe.forced > 0, "{} seed {seed}", sched.name());
        }
    }
}

#[test]
fn forced_releases_replay_exactly_under_adversarial_schedules() {
    let p = deadlocky_program();
    for sched in adversarial_strategies() {
        // Not every schedule deadlocks: if the producer runs to completion
        // before the consumer starts, `ready` is already set and nobody
        // parks holding the weak-lock. Require the deadlock somewhere in
        // the sweep, and replay fidelity everywhere.
        let mut saw_forced = false;
        for seed in [1u64, 5, 9, 13] {
            let rec = record(
                &p,
                &ExecConfig {
                    seed,
                    sched,
                    weak_timeout: 2_000,
                    ..ExecConfig::default()
                },
            );
            assert!(
                rec.result.outcome.is_exit(),
                "{} seed {seed}: {:?}",
                sched.name(),
                rec.result.outcome
            );
            saw_forced |= !rec.logs.forced.is_empty();
            // Hostile replay: same strategy, different seed.
            let rep = replay(
                &p,
                &rec.logs,
                &ExecConfig {
                    seed: seed + 555,
                    sched,
                    weak_timeout: 2_000,
                    ..ExecConfig::default()
                },
            );
            let v = verify_determinism(&rec.result, &rep.result);
            assert!(
                rep.complete && v.equivalent,
                "{} seed {seed}: diverged: {:?}",
                sched.name(),
                v.differences
            );
            assert_eq!(
                rep.result.stats.forced_releases, rec.result.stats.forced_releases,
                "{} seed {seed}: replay must re-inject exactly the recorded preemptions",
                sched.name()
            );
        }
        assert!(
            saw_forced,
            "{}: no seed in the sweep exercised the forced-release path",
            sched.name()
        );
    }
}

/// Regression: a cross-granularity lock-order inversion (one thread holds
/// object A's lock at loop granularity and takes B's per instruction; the
/// other holds B's at loop granularity and takes A's) triggers repeated
/// forced handoffs during recording. The replay must reproduce the
/// execution exactly — this was the shrunk counterexample from the
/// generative soak that motivated consumed-grant logging and per-thread
/// forced-event queues (DESIGN.md §6).
#[test]
fn lock_order_inversion_war_replays_exactly() {
    use chimera::{analyze, measure, OptSet, PipelineConfig};

    let src = "int g0; int g1; int g2;
        int arr[16];
        lock_t m;
        void wa(int v) {
            int r; int i; int x;
            for (r = 0; r < 4; r = r + 1) {
                arr[g0 & 15] = 0;
                g0 = g0 + 0;
                if (g1 > 0) { g0 = g0 - 1; }
                g0 = g0 + 0;
            }
        }
        void wb(int v) {
            int r; int i; int x;
            for (r = 0; r < 4; r = r + 1) {
                if (g1 > 0) { g1 = g1 - 1; }
                for (i = 0; i < 8; i = i + 1) { arr[i] = arr[i] + g1; }
            }
        }
        int main() {
            int t1; int t2; int i; int s;
            g0 = 5; g1 = 3; g2 = 9;
            t1 = spawn(wa, 1);
            t2 = spawn(wb, 2);
            join(t1);
            join(t2);
            s = g0 + g1 * 10 + g2 * 100;
            for (i = 0; i < 16; i = i + 1) { s = s + arr[i]; }
            print(s);
            return 0;
        }";
    let program = compile(src).unwrap();
    let cfg = PipelineConfig {
        opts: OptSet::loop_only(),
        profile_seeds: vec![1, 2],
        exec: ExecConfig::default(),
    };
    let analysis = analyze(&program, &cfg);
    let mut saw_forced = false;
    for seed in 110..125u64 {
        let m = measure(&analysis, &ExecConfig::default(), seed);
        saw_forced |= m.recording.result.stats.forced_releases > 0;
        assert!(m.deterministic, "seed {seed}: inversion war diverged");
    }
    assert!(
        saw_forced,
        "the scenario must actually exercise forced handoffs"
    );
}
