//! DRF-equivalence certification: the end-to-end property the Chimera
//! pipeline promises (paper §2): after weak-lock instrumentation the
//! program is data-race-free, so recording sync + weak-lock order is
//! enough for deterministic replay.
//!
//! Three angles:
//!
//! 1. The nine paper workloads certify race-free when instrumented, and
//!    every dynamically observed race maps to a static relay pair
//!    (soundness join). The workloads are *deliberately* dynamically DRF
//!    — their static race reports are the paper's false positives (water
//!    barrier phases, apache's memset loop, pfscan's condvar handoff) —
//!    so the logged FP ratio is the paper's precision story, and the
//!    dynamic detector reporting zero races on them is itself evidence.
//! 2. A corpus of genuinely racy programs: each reports ≥1 dynamic race
//!    uninstrumented and 0 races fully instrumented, across seeds.
//! 3. A `chimera-testkit` generative sweep over racy counter programs
//!    (threads, iteration counts, seeds drawn by the prop harness):
//!    every sampled schedule races uninstrumented and certifies clean
//!    instrumented.

use chimera::{analyze, certify_drf, PipelineConfig};
use chimera_minic::compile;
use chimera_runtime::ExecConfig;
use chimera_testkit::prop::{self, Config, Gen};
use chimera_workloads::all;

const SEEDS: &[u64] = &[1, 42, 99];

/// Every paper workload: instrumented runs certify race-free on all
/// seeds, and the dynamic ⊆ static join holds (no dynamic race escapes
/// the static detector). The per-workload FP ratio — the fraction of
/// static pairs never observed dynamically — is logged for comparison
/// with the paper's precision discussion.
#[test]
fn workloads_certify_drf_equivalence() {
    for w in all() {
        let p = w.compile(&w.profile_params(0)).expect("workload compiles");
        let a = analyze(&p, &PipelineConfig::default());
        let c = certify_drf(&a, &ExecConfig::default(), SEEDS);
        eprintln!(
            "{:8} static={:3} dynamic={:3} joined={:3} fp-ratio={:.2}",
            w.name,
            a.races.pairs.len(),
            c.uninstrumented.pairs.len(),
            c.joined,
            c.false_positive_ratio,
        );
        assert!(
            c.holds(),
            "{}: instrumented run raced ({} pair(s))",
            w.name,
            c.instrumented.pairs.len()
        );
        assert!(
            c.static_sound(),
            "{}: dynamic race escaped the static detector: {:?}",
            w.name,
            c.missed
        );
        assert!(
            !a.races.pairs.is_empty(),
            "{}: static detector found nothing to certify against",
            w.name
        );
    }
}

/// Genuinely racy programs (unsynchronized counter, unlocked array
/// scatter, missing barrier): all race uninstrumented and certify clean
/// once weak-lock instrumented, across all seeds.
#[test]
fn racy_programs_race_uninstrumented_and_certify_instrumented() {
    let corpus: &[(&str, &str)] = &[
        (
            "counter",
            "int g;
             void w(int v) { int i; int x;
                 for (i = 0; i < 120; i = i + 1) { x = g; g = x + v; } }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                 print(g); return 0; }",
        ),
        (
            "scatter",
            "int arr[16]; int sum;
             void w(int v) { int i;
                 for (i = 0; i < 64; i = i + 1) {
                     arr[i & 15] = arr[i & 15] + v;
                 } }
             int main() { int a; int b; int i;
                 a = spawn(w, 1); b = spawn(w, 3);
                 join(a); join(b);
                 for (i = 0; i < 16; i = i + 1) { sum = sum + arr[i]; }
                 print(sum); return 0; }",
        ),
        (
            "missing-barrier",
            "int buf[8]; int out;
             void producer(int v) { int i;
                 for (i = 0; i < 8; i = i + 1) { buf[i] = v + i; } }
             void consumer(int v) { int i;
                 for (i = 0; i < 8; i = i + 1) { out = out + buf[i]; } }
             int main() { int p; int c;
                 p = spawn(producer, 10); c = spawn(consumer, 0);
                 join(p); join(c); print(out); return 0; }",
        ),
    ];
    for (name, src) in corpus {
        let p = compile(src).expect("corpus program compiles");
        let a = analyze(&p, &PipelineConfig::default());
        assert!(
            a.instrumented.weak_locks > 0,
            "{name}: expected weak-lock instrumentation"
        );
        let c = certify_drf(&a, &ExecConfig::default(), SEEDS);
        assert!(
            !c.uninstrumented.is_race_free(),
            "{name}: uninstrumented run should race"
        );
        assert!(
            c.holds(),
            "{name}: instrumented run raced ({} pair(s))",
            c.instrumented.pairs.len()
        );
        assert!(
            c.static_sound(),
            "{name}: dynamic race escaped the static detector: {:?}",
            c.missed
        );
        eprintln!(
            "{name:16} dynamic={} races={} fp-ratio={:.2}",
            c.uninstrumented.pairs.len(),
            c.uninstrumented.races,
            c.false_positive_ratio,
        );
    }
}

/// One generated racy-counter configuration: worker count, per-thread
/// iteration count, and execution seed (the schedule) all drawn by the
/// prop harness.
#[derive(Debug, Clone)]
struct RacyCase {
    threads: u8,
    reps: u8,
    seed: u64,
}

fn racy_case_gen() -> Gen<RacyCase> {
    Gen::new(|s| RacyCase {
        threads: s.int(1u8..=3),
        reps: s.int(40u8..=120),
        seed: s.int(0u64..10_000),
    })
}

fn render_racy(case: &RacyCase) -> String {
    let decls: String = (0..case.threads).map(|i| format!("    int t{i};\n")).collect();
    let spawns: String = (0..case.threads)
        .map(|i| format!("    t{i} = spawn(w, {});\n", i + 1))
        .collect();
    let joins: String = (0..case.threads)
        .map(|i| format!("    join(t{i});\n"))
        .collect();
    format!(
        "int g;
         void w(int v) {{ int i; int x;
             for (i = 0; i < {reps}; i = i + 1) {{ x = g; g = x + v; }} }}
         int main() {{\n{decls}{spawns}    w(9);\n{joins}    print(g); return 0; }}",
        reps = case.reps,
    )
}

/// Generative sweep: every sampled racy counter races uninstrumented
/// (main races with at least one spawned worker on every schedule —
/// the loop bodies are long enough to always overlap) and certifies
/// race-free instrumented, with no dynamic race outside the static
/// report.
#[test]
fn generated_racy_programs_certify_across_schedules() {
    prop::check_config(
        &Config::from_env().with_cases(16),
        "generated_racy_programs_certify_across_schedules",
        &racy_case_gen(),
        |case| {
            let p = compile(&render_racy(case)).expect("generated source is valid MiniC");
            let a = analyze(&p, &PipelineConfig::default());
            let c = certify_drf(&a, &ExecConfig::default(), &[case.seed]);
            chimera_testkit::prop_assert!(
                !c.uninstrumented.is_race_free(),
                "no dynamic race uninstrumented for {case:?}"
            );
            chimera_testkit::prop_assert!(
                c.holds(),
                "instrumented run raced for {case:?}: {} pair(s)",
                c.instrumented.pairs.len()
            );
            chimera_testkit::prop_assert!(
                c.static_sound(),
                "dynamic race escaped the static detector for {case:?}: {:?}",
                c.missed
            );
            Ok(())
        },
    );
}
