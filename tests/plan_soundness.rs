//! Certified-plan soundness, differentially: on the nine paper workloads
//! nearly every static race pair is a false positive (Table 2's fp
//! ratios), so the hybrid loop must demote everything FastTrack never
//! confirmed — fully, for most workloads; partially where the hostile
//! sweep exposes genuine dynamic races (pfscan here). A fully-demoted
//! program must be byte-identical to the original, under hostile
//! schedules, in both interpreter modes, with identical replay logs and
//! detector verdicts; a partially-demoted one must keep exactly the
//! confirmed-racy pairs locked and still replay deterministically.
//!
//! The suite gathers each workload's evidence once (`certified()`):
//! the full default sweep — {jitter, PCT, preempt-bound} × seeds
//! {1, 2, 3} — feeds `demote`, and every test then drills into the
//! resulting plan from a different angle.

use chimera::{analyze, demote, gather_evidence, verify_under_plan, Analysis, PipelineConfig};
use chimera_fleet::cell::{resolve_strategy, run_cell};
use chimera_minic::ir::Program;
use chimera_minic::pretty::program_to_string;
use chimera_plan::{apply_plan, CertifiedPlan, GatherConfig, Thresholds};
use chimera_runtime::{execute, execute_mode, ExecConfig, InterpMode, SchedStrategy};
use chimera_workloads::all;
use std::sync::OnceLock;

struct Certified {
    name: &'static str,
    analysis: Analysis,
    plan: CertifiedPlan,
    planned: Program,
}

static CERTIFIED: OnceLock<Vec<Certified>> = OnceLock::new();

fn certified() -> &'static [Certified] {
    CERTIFIED.get_or_init(|| {
        all()
            .iter()
            .map(|w| {
                let p = w.compile(&w.profile_params(0)).expect("workload compiles");
                let analysis = analyze(&p, &PipelineConfig::default());
                let statics: Vec<_> =
                    analysis.races.pairs.iter().map(|p| (p.a, p.b)).collect();
                let ev = gather_evidence(
                    w.name,
                    &analysis.program,
                    &analysis.instrumented,
                    &statics,
                    &GatherConfig::default(),
                );
                let plan = demote(&ev, &Thresholds::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                let (planned, _) = apply_plan(
                    &analysis.program,
                    &analysis.races,
                    &analysis.profile,
                    &chimera::OptSet::all(),
                    &plan,
                )
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                Certified {
                    name: w.name,
                    analysis,
                    plan,
                    planned,
                }
            })
            .collect()
    })
}

fn hostile_strategies(instrs: u64) -> [SchedStrategy; 3] {
    [
        SchedStrategy::ClockJitter,
        resolve_strategy(SchedStrategy::pct(3), instrs),
        SchedStrategy::preempt_bound(),
    ]
}

#[test]
fn workloads_demote_every_unconfirmed_pair() {
    let mut fully_demoted = 0;
    for c in certified() {
        assert!(
            !c.plan.static_pairs.is_empty(),
            "{}: RELAY reported no pairs — nothing to certify",
            c.name
        );
        assert!(
            !c.plan.demotions.is_empty(),
            "{}: the false-positive-heavy workload demoted nothing",
            c.name
        );
        assert_eq!(
            c.plan.demotions.len() + c.plan.kept.len(),
            c.plan.static_pairs.len(),
            "{}",
            c.name
        );
        if c.plan.kept.is_empty() {
            fully_demoted += 1;
            assert_eq!(c.planned.weak_locks, 0, "{}", c.name);
            // Full demotion is exact: the plan-instrumented program *is*
            // the original, so attached overhead is definitionally zero.
            assert_eq!(
                program_to_string(&c.planned),
                program_to_string(&c.analysis.program),
                "{}: planned IR drifted from the original",
                c.name
            );
        } else {
            // Partially demoted (pfscan): confirmed-racy pairs keep
            // their weak-locks, so instrumentation survives but shrinks.
            assert!(c.planned.weak_locks > 0, "{}: kept pairs lost their locks", c.name);
            assert!(
                c.planned.weak_locks <= c.analysis.instrumented.weak_locks,
                "{}",
                c.name
            );
        }
    }
    assert!(
        fully_demoted >= 7,
        "only {fully_demoted}/9 workloads fully demoted — the false-positive \
         landscape this suite pins has shifted"
    );
}

#[test]
fn planned_execution_is_byte_identical_with_and_without_the_plan() {
    // Per (strategy, seed): a fully-demoted planned program and the
    // original must produce field-identical executions (they are the
    // same IR — this pins that apply_plan introduces no hidden
    // execution-level state), and for every workload the planned and
    // full-instrumented variants must agree on every program output
    // (weak-locks may reshape virtual time, never results).
    for c in certified() {
        let baseline = execute(&c.planned, &ExecConfig::default());
        for sched in hostile_strategies(baseline.stats.instrs) {
            for seed in [1u64, 17] {
                let cfg = ExecConfig {
                    seed,
                    sched,
                    ..ExecConfig::default()
                };
                let planned = execute(&c.planned, &cfg);
                if c.plan.kept.is_empty() {
                    let original = execute(&c.analysis.program, &cfg);
                    assert_eq!(planned.outcome, original.outcome, "{}", c.name);
                    assert_eq!(planned.output, original.output, "{}", c.name);
                    assert_eq!(planned.state_hash, original.state_hash, "{}", c.name);
                    assert_eq!(planned.makespan, original.makespan, "{}", c.name);
                    assert_eq!(planned.stats, original.stats, "{}", c.name);
                }

                // No cross-variant output comparison: weak-locks change
                // the instruction stream, so lock-acquisition order — and
                // with it legitimate schedule-dependent work distribution
                // (apache's queue) — differs between variants. Chimera
                // certifies each variant's own determinism (replay), not
                // schedule-independence of results; the planned variant's
                // determinism is pinned by
                // planned_cells_stay_clean_across_the_hostile_sweep.
                let full = execute(&c.analysis.instrumented, &cfg);
                assert_eq!(planned.stats.threads, full.stats.threads, "{}", c.name);
                assert_eq!(planned.outcome, full.outcome, "{}", c.name);
            }
        }
    }
}

#[test]
fn planned_modes_stay_bit_identical_per_strategy_and_seed() {
    // The flat and reference interpreters must agree on the planned
    // program exactly as vm_differential.rs pins for the instrumented
    // one — demotion must not open a mode seam.
    for c in certified() {
        let baseline = execute(&c.planned, &ExecConfig::default());
        for sched in hostile_strategies(baseline.stats.instrs) {
            for seed in [1u64, 17] {
                let cfg = ExecConfig {
                    seed,
                    sched,
                    ..ExecConfig::default()
                };
                let flat = execute_mode(&c.planned, &cfg, InterpMode::Flat);
                let refr = execute_mode(&c.planned, &cfg, InterpMode::Reference);
                assert_eq!(flat.outcome, refr.outcome, "{} {}", c.name, sched.name());
                assert_eq!(flat.output, refr.output, "{} {}", c.name, sched.name());
                assert_eq!(flat.state_hash, refr.state_hash, "{} {}", c.name, sched.name());
                assert_eq!(flat.makespan, refr.makespan, "{} {}", c.name, sched.name());
                assert_eq!(flat.stats, refr.stats, "{} {}", c.name, sched.name());
            }
        }
    }
}

#[test]
fn replay_logs_match_byte_for_byte_with_and_without_the_plan() {
    for c in certified() {
        let exec = ExecConfig::default();
        let planned = chimera_replay::record(&c.planned, &exec);
        if c.plan.kept.is_empty() {
            let original = chimera_replay::record(&c.analysis.program, &exec);
            assert_eq!(
                planned.logs.to_bytes(),
                original.logs.to_bytes(),
                "{}: replay log bytes diverged under the plan",
                c.name
            );
        }
        // Recording is deterministic under any plan, partial or full.
        let again = chimera_replay::record(&c.planned, &exec);
        assert_eq!(
            planned.logs.to_bytes(),
            again.logs.to_bytes(),
            "{}: planned recording is nondeterministic",
            c.name
        );
    }
}

#[test]
fn planned_cells_stay_clean_across_the_hostile_sweep() {
    // The full per-cell pipeline — record, hostile replay, determinism
    // verdict, single-holder probe, FastTrack — on the planned program,
    // across the same grid the evidence swept. Detector verdicts must be
    // identical to the uninstrumented program's: race-free.
    for c in certified() {
        let exec = ExecConfig::default();
        let baseline = execute(&c.planned, &exec);
        for sched in hostile_strategies(baseline.stats.instrs) {
            for seed in [1u64, 2] {
                let o = run_cell(&c.planned, None, sched, seed, &exec, true);
                assert!(
                    o.clean(),
                    "{} {} seed {seed}: planned cell unclean: {:?} {:?}",
                    c.name,
                    sched.name(),
                    o.differences,
                    o.violations
                );
                assert_eq!(o.drd_races, Some(0), "{} {}", c.name, sched.name());
            }
        }
        verify_under_plan(&c.planned, &c.plan, &exec)
            .unwrap_or_else(|e| panic!("{}: {e}", c.name));
    }
}
