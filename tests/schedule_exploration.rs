//! Schedule exploration (the adversarial counterpart of
//! `drf_equivalence.rs`): Chimera's replay guarantee must survive hostile
//! scheduling, not just the clock-ordered baseline with jitter.
//!
//! Three angles:
//!
//! 1. All nine paper workloads sweep {jitter, PCT, preemption-bounded} ×
//!    seeds: every recording replays identically under a different seed
//!    of the same hostile strategy, the weak-lock single-holder invariant
//!    holds under a supervisor probe, instrumented runs stay dynamically
//!    race-free, and no dynamic race on the uninstrumented program
//!    escapes RELAY's static pairs.
//! 2. The genuinely racy corpus diverges *somewhere* in the same sweep
//!    when left uninstrumented — evidence the adversarial strategies
//!    actually explore schedules that expose races, i.e. that the clean
//!    sweep in (1) is meaningful.
//! 3. Per `(strategy, seed)`, the flat and reference interpreters stay
//!    bit-identical, so `vm_differential.rs`'s pinning extends to the
//!    new scheduler seam.

use chimera::{analyze, explore, explore_uninstrumented, ExploreConfig, PipelineConfig};
use chimera_minic::compile;
use chimera_runtime::{execute_mode, ExecConfig, InterpMode, SchedStrategy};
use chimera_workloads::all;

fn sweep_cfg(seeds: Vec<u64>, check_drd: bool) -> ExploreConfig {
    ExploreConfig {
        strategies: vec![
            SchedStrategy::ClockJitter,
            SchedStrategy::pct(3),
            SchedStrategy::preempt_bound(),
        ],
        seeds,
        exec: ExecConfig::default(),
        check_drd,
        jobs: 0,
    }
}

#[test]
fn workloads_certify_replay_under_adversarial_schedules() {
    let cfg = sweep_cfg(vec![1, 2], true);
    for w in all() {
        let p = w.compile(&w.profile_params(0)).expect("workload compiles");
        let a = analyze(&p, &PipelineConfig::default());
        let r = explore(w.name, &a, &cfg);
        for st in &r.strategies {
            eprintln!(
                "{:8} {:>13}: orders={} prefixes={} preemptions={}",
                w.name, st.strategy, st.distinct_orders, st.distinct_prefixes, st.preemptions
            );
        }
        assert!(
            r.clean(),
            "{}: adversarial sweep found problems:\n{}",
            w.name,
            r.to_json()
        );
        assert_eq!(r.divergences(), 0, "{}", w.name);
        assert_eq!(r.violations(), 0, "{}", w.name);
        // The sweep must actually perturb schedules, not replay the
        // baseline three times under different names.
        let perturbed: u64 = r
            .strategies
            .iter()
            .filter(|s| s.strategy != "jitter")
            .map(|s| s.preemptions)
            .sum();
        assert!(perturbed > 0, "{}: no perturbations injected", w.name);
    }
}

#[test]
fn racy_corpus_diverges_somewhere_in_the_sweep() {
    // The uninstrumented racy corpus from drf_equivalence.rs: replaying a
    // racy program's recording under a different hostile seed must break
    // for at least one (strategy, seed) cell per program — the schedules
    // being explored are hostile enough to expose each race.
    let corpus: &[(&str, &str)] = &[
        (
            "counter",
            "int g;
             void w(int v) { int i; int x;
                 for (i = 0; i < 120; i = i + 1) { x = g; g = x + v; } }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                 print(g); return 0; }",
        ),
        (
            "scatter",
            "int arr[16]; int sum;
             void w(int v) { int i;
                 for (i = 0; i < 64; i = i + 1) {
                     arr[i & 15] = arr[i & 15] + v;
                 } }
             int main() { int a; int b; int i;
                 a = spawn(w, 1); b = spawn(w, 3);
                 join(a); join(b);
                 for (i = 0; i < 16; i = i + 1) { sum = sum + arr[i]; }
                 print(sum); return 0; }",
        ),
        (
            "missing-barrier",
            "int buf[8]; int out;
             void producer(int v) { int i;
                 for (i = 0; i < 8; i = i + 1) { buf[i] = v + i; } }
             void consumer(int v) { int i;
                 for (i = 0; i < 8; i = i + 1) { out = out + buf[i]; } }
             int main() { int p; int c;
                 p = spawn(producer, 10); c = spawn(consumer, 0);
                 join(p); join(c); print(out); return 0; }",
        ),
    ];
    let cfg = sweep_cfg(vec![1, 2, 3], false);
    for (name, src) in corpus {
        let p = compile(src).expect("corpus program compiles");
        let r = explore_uninstrumented(name, &p, &cfg);
        assert!(
            r.any_divergence(),
            "{name}: hostile sweep failed to expose the race:\n{}",
            r.to_json()
        );
        eprintln!(
            "{name:16} divergent cells: {}",
            r.strategies
                .iter()
                .map(|s| format!("{}={}", s.strategy, s.divergences))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}

#[test]
fn instrumented_corpus_stays_clean_in_the_same_sweep() {
    // The flip side: once weak-lock instrumented, the exact corpus that
    // diverged above must survive the identical sweep.
    let racy = "int g;
        void w(int v) { int i; int x;
            for (i = 0; i < 120; i = i + 1) { x = g; g = x + v; } }
        int main() { int t; t = spawn(w, 1); w(2); join(t);
            print(g); return 0; }";
    let p = compile(racy).unwrap();
    let a = analyze(&p, &PipelineConfig::default());
    assert!(a.instrumented.weak_locks > 0);
    let r = explore("counter", &a, &sweep_cfg(vec![1, 2, 3], true));
    assert!(r.clean(), "{}", r.to_json());
}

#[test]
fn modes_stay_bit_identical_per_strategy_and_seed() {
    // The scheduler seam must not fork the two interpreter paths: for
    // every workload × strategy × seed, the instrumented program's flat
    // and reference executions agree field for field (stats include the
    // injected-preemption count).
    for w in all() {
        let p = w.compile(&w.profile_params(0)).expect("workload compiles");
        let a = analyze(&p, &PipelineConfig::default());
        let baseline = chimera_runtime::execute(&a.instrumented, &ExecConfig::default());
        for sched in [
            SchedStrategy::ClockJitter,
            chimera::explore::resolve_strategy(SchedStrategy::pct(3), baseline.stats.instrs),
            SchedStrategy::preempt_bound(),
        ] {
            for seed in [1u64, 17] {
                let cfg = ExecConfig {
                    seed,
                    sched,
                    ..ExecConfig::default()
                };
                let flat = execute_mode(&a.instrumented, &cfg, InterpMode::Flat);
                let refr = execute_mode(&a.instrumented, &cfg, InterpMode::Reference);
                assert_eq!(flat.outcome, refr.outcome, "{} {}", w.name, sched.name());
                assert_eq!(flat.output, refr.output, "{} {}", w.name, sched.name());
                assert_eq!(
                    flat.state_hash,
                    refr.state_hash,
                    "{} {}",
                    w.name,
                    sched.name()
                );
                assert_eq!(flat.makespan, refr.makespan, "{} {}", w.name, sched.name());
                assert_eq!(flat.stats, refr.stats, "{} {}", w.name, sched.name());
            }
        }
    }
}
