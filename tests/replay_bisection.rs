//! Divergence-bisection oracle suite (DESIGN.md §12).
//!
//! Three claims, checked against every paper workload:
//!
//! 1. **Conformance**: a correct replay of an instrumented recording
//!    produces a bit-identical journal and checkpoint stream, so
//!    `localize_divergence` reports nothing.
//! 2. **Oracle exactness**: a single-event mutation planted at a known
//!    journal position is localized to exactly that chunk and event —
//!    with O(log n) checkpoint probes, not a full linear re-scan.
//! 3. **Mid-log decode**: the v2 container supports starting a decode at
//!    any chunk boundary, anchored by the checkpoint recorded there.
//!
//! Plus a cross-interpreter check: the checkpoint digest is a function of
//! the schedule, so the flat and reference VMs must produce identical
//! checkpoint streams for the same recording.

use chimera::{analyze_workload, OptSet};
use chimera_replay::{
    localize_divergence, record_with, replay_bisect, DivergenceCause, JournalEvent, ReplayLogs,
    CHUNK_EVENTS,
};
use chimera_runtime::{execute_supervised_mode, ExecConfig, InterpMode};
use chimera_workloads::all;

/// Checkpoint every 16 ordered events instead of the production
/// [`CHUNK_EVENTS`]: the workload journals run 15–140 events, so the
/// default interval would leave the binary search nothing to probe.
const CKPT_EVERY: u64 = 16;

fn recorded_workloads() -> Vec<(&'static str, chimera_minic::ir::Program, chimera_replay::Recording)>
{
    let exec = ExecConfig::default();
    all()
        .into_iter()
        .map(|w| {
            let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
            let rec = record_with(&analysis.instrumented, &exec, CKPT_EVERY);
            assert!(
                rec.result.outcome.is_exit(),
                "{}: recording did not exit cleanly",
                w.name
            );
            (w.name, analysis.instrumented.clone(), rec)
        })
        .collect()
}

/// Bump the event at `pos` to a different value without touching any
/// other position.
fn mutate_at(logs: &mut ReplayLogs, pos: usize) {
    let ev = &mut logs.journal[pos];
    *ev = match *ev {
        JournalEvent::Mutex { thread, addr } => JournalEvent::Mutex {
            thread: thread + 1,
            addr,
        },
        other => JournalEvent::Spawn {
            thread: other.thread() + 1,
        },
    };
    // A divergent replay's digests differ from the first checkpoint
    // covering the mutated suffix onward; model that.
    for cp in &mut logs.checkpoints {
        if cp.events > pos as u64 {
            cp.state_hash ^= 0xdead_beef;
        }
    }
}

#[test]
fn conforming_replays_localize_nothing_on_all_workloads() {
    for (name, program, rec) in recorded_workloads() {
        let rep = replay_bisect(
            &program,
            &rec.logs,
            &ExecConfig {
                seed: 0xc0ffee,
                ..ExecConfig::default()
            },
        );
        assert!(rep.complete, "{name}: replay did not complete");
        assert!(
            rec.logs.journal.len() < CKPT_EVERY as usize
                || !rec.logs.checkpoints.is_empty(),
            "{name}: expected checkpoints at interval {CKPT_EVERY}"
        );
        assert_eq!(
            rep.observed.journal, rec.logs.journal,
            "{name}: replay journal differs"
        );
        assert_eq!(
            rep.observed.checkpoints, rec.logs.checkpoints,
            "{name}: replay checkpoints differ"
        );
        assert!(
            localize_divergence(&rec.logs, &rep.observed).is_none(),
            "{name}: conformant replay flagged divergent"
        );
    }
}

#[test]
fn planted_mutations_are_localized_to_exact_chunk_and_event() {
    for (name, _program, rec) in recorded_workloads() {
        let total = rec.logs.journal.len();
        assert!(total > 0, "{name}: empty journal");
        // First, last, middle, and both sides of the first chunk
        // boundary (when the log is long enough to have one).
        let mut positions = vec![0, total / 2, total - 1];
        if total > CHUNK_EVENTS {
            positions.push(CHUNK_EVENTS - 1);
            positions.push(CHUNK_EVENTS);
        }
        for pos in positions {
            let mut mutated = rec.logs.clone();
            mutate_at(&mut mutated, pos);
            let d = localize_divergence(&rec.logs, &mutated)
                .unwrap_or_else(|| panic!("{name}: mutation at {pos} not detected"));
            assert_eq!(d.event, pos as u64, "{name}: wrong event for pos {pos}");
            assert_eq!(
                d.chunk,
                pos / CHUNK_EVENTS,
                "{name}: wrong chunk for pos {pos}"
            );
            assert!(
                !matches!(d.cause, DivergenceCause::StateValue),
                "{name}: journal mutation misread as a value race"
            );
            // The bisection must not degenerate into a linear checkpoint
            // walk: probe count is logarithmic in the checkpoint count.
            let n_cp = rec.logs.checkpoints.len();
            let log_bound = (usize::BITS - n_cp.leading_zeros()) as usize + 1;
            assert!(
                d.checkpoint_probes <= log_bound,
                "{name}: {} probes over {} checkpoints (bound {})",
                d.checkpoint_probes,
                n_cp,
                log_bound
            );
        }
    }
}

#[test]
fn bisection_agrees_with_linear_scan() {
    // The binary search is an optimization, not a different answer:
    // whatever it names must be the first index where the journals
    // disagree, verified by brute force.
    for (name, _program, rec) in recorded_workloads() {
        let total = rec.logs.journal.len();
        for pos in [0, total / 3, 2 * total / 3, total - 1] {
            let mut mutated = rec.logs.clone();
            mutate_at(&mut mutated, pos);
            let d = localize_divergence(&rec.logs, &mutated).expect("diverges");
            let linear = rec
                .logs
                .journal
                .iter()
                .zip(&mutated.journal)
                .position(|(a, b)| a != b)
                .expect("linear scan finds it");
            assert_eq!(d.event, linear as u64, "{name}: bisection != linear scan");
        }
    }
}

#[test]
fn truncated_replay_journal_is_localized_at_the_cut() {
    for (name, _program, rec) in recorded_workloads() {
        let total = rec.logs.journal.len();
        let cut = total - 1;
        let mut short = rec.logs.clone();
        short.journal.truncate(cut);
        short.checkpoints.retain(|c| c.events <= cut as u64);
        let d = localize_divergence(&rec.logs, &short)
            .unwrap_or_else(|| panic!("{name}: truncation not detected"));
        assert_eq!(d.event, cut as u64, "{name}");
        assert!(d.replayed.is_none(), "{name}: cut side must read None");
        assert_eq!(d.recorded, rec.logs.journal.last().copied(), "{name}");
    }
}

#[test]
fn mid_log_decode_resumes_at_every_chunk_boundary() {
    for (name, _program, rec) in recorded_workloads() {
        let bytes = rec.logs.to_bytes();
        let chunks = rec.logs.chunk_count();
        for chunk in 0..chunks {
            let suffix = ReplayLogs::decode_from_checkpoint(&bytes, chunk)
                .unwrap_or_else(|e| panic!("{name}: chunk {chunk}: {e}"));
            let start = chunk * CHUNK_EVENTS;
            assert_eq!(suffix.chunk, chunk, "{name}");
            assert_eq!(suffix.start_events, start as u64, "{name}");
            assert_eq!(
                suffix.journal,
                rec.logs.journal[start..],
                "{name}: suffix journal mismatch at chunk {chunk}"
            );
            if chunk == 0 {
                assert!(suffix.anchor.is_none(), "{name}: chunk 0 has no anchor");
            } else {
                let anchor = suffix
                    .anchor
                    .unwrap_or_else(|| panic!("{name}: chunk {chunk} missing its anchor"));
                assert_eq!(anchor.events, start as u64, "{name}");
                assert!(
                    rec.logs.checkpoints.contains(&anchor),
                    "{name}: anchor not in the recorded stream"
                );
            }
        }
    }
}

#[test]
fn checkpoint_digests_are_interpreter_independent() {
    // The digest folds schedule-determined state only, so the flat and
    // reference interpreters — different stepping engines — must agree
    // on every checkpoint of the same run.
    let exec = ExecConfig::default();
    for w in all() {
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        let mut logs = Vec::new();
        for mode in [InterpMode::Flat, InterpMode::Reference] {
            let mut sup = chimera_replay::Recorder::with_interval(CKPT_EVERY);
            let cfg = ExecConfig {
                log_sync: true,
                log_weak: true,
                log_input: true,
                timeout_enabled: true,
                ..exec
            };
            let r = execute_supervised_mode(&analysis.instrumented, &cfg, &mut sup, mode);
            assert!(r.outcome.is_exit(), "{}: {:?} did not exit", w.name, mode);
            logs.push(sup.logs);
        }
        assert_eq!(
            logs[0].checkpoints, logs[1].checkpoints,
            "{}: flat and reference VMs disagree on checkpoint digests",
            w.name
        );
        assert_eq!(logs[0].journal, logs[1].journal, "{}: journals differ", w.name);
    }
}
