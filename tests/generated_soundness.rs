//! Generative soundness testing: random racy MiniC programs, run through
//! the full pipeline, must always replay deterministically.
//!
//! This is the reproduction's strongest evidence for the paper's central
//! claim — the guarantee must hold for *arbitrary* programs, not just the
//! nine benchmarks. The generator produces terminating multithreaded
//! programs full of unsynchronized shared accesses (scalar read-modify-
//! writes, array loops, branch-guarded updates, lock-protected sections),
//! and the property is checked for every optimization configuration.

use chimera::{analyze, measure, OptSet, PipelineConfig};
use chimera_minic::compile;
use chimera_runtime::ExecConfig;
use proptest::prelude::*;

/// One statement template for a worker body.
#[derive(Debug, Clone)]
enum Tmpl {
    /// `gN = gN + c;`
    Bump(u8, i8),
    /// `x = gN; gM = x + c;` — a classic lost-update window.
    ReadThenWrite(u8, u8, i8),
    /// `for (i = 0; i < 8; i = i + 1) { arr[i] = arr[i] + gN; }`
    ArrayLoop(u8),
    /// `lock(&m); gN = gN + c; unlock(&m);`
    Locked(u8, i8),
    /// `if (gN > c) { gM = gM - 1; }`
    Guarded(u8, u8, i8),
    /// `arr[gN & 15] = v;` — a data-dependent index (±∞ bounds).
    Scatter(u8, i8),
}

fn render_stmt(t: &Tmpl) -> String {
    match t {
        Tmpl::Bump(g, c) => format!("g{} = g{} + {};", g % 3, g % 3, c),
        Tmpl::ReadThenWrite(a, b, c) => format!(
            "x = g{}; g{} = x + {};",
            a % 3,
            b % 3,
            c
        ),
        Tmpl::ArrayLoop(g) => format!(
            "for (i = 0; i < 8; i = i + 1) {{ arr[i] = arr[i] + g{}; }}",
            g % 3
        ),
        Tmpl::Locked(g, c) => format!(
            "lock(&m); g{} = g{} + {}; unlock(&m);",
            g % 3,
            g % 3,
            c
        ),
        Tmpl::Guarded(a, b, c) => format!(
            "if (g{} > {}) {{ g{} = g{} - 1; }}",
            a % 3,
            c,
            b % 3,
            b % 3
        ),
        Tmpl::Scatter(g, v) => format!("arr[g{} & 15] = {};", g % 3, v),
    }
}

fn render_program(body_a: &[Tmpl], body_b: &[Tmpl], reps: u8, same_fn: bool) -> String {
    let body = |ts: &[Tmpl]| -> String {
        ts.iter()
            .map(|t| format!("        {}\n", render_stmt(t)))
            .collect::<String>()
    };
    let worker_b = if same_fn {
        String::new()
    } else {
        format!(
            "void wb(int v) {{\n    int r; int i; int x;\n    for (r = 0; r < {reps}; r = r + 1) {{\n{}    }}\n}}\n",
            body(body_b)
        )
    };
    let spawn_b = if same_fn { "wa" } else { "wb" };
    format!(
        "int g0; int g1; int g2;\nint arr[16];\nlock_t m;\n\
         void wa(int v) {{\n    int r; int i; int x;\n    for (r = 0; r < {reps}; r = r + 1) {{\n{}    }}\n}}\n\
         {worker_b}\
         int main() {{\n    int t1; int t2; int i; int s;\n    g0 = 5; g1 = 3; g2 = 9;\n\
             t1 = spawn(wa, 1);\n    t2 = spawn({spawn_b}, 2);\n    join(t1);\n    join(t2);\n\
             s = g0 + g1 * 10 + g2 * 100;\n    for (i = 0; i < 16; i = i + 1) {{ s = s + arr[i]; }}\n\
             print(s);\n    return 0;\n}}\n",
        body(body_a)
    )
}

fn tmpl_strategy() -> impl Strategy<Value = Tmpl> {
    prop_oneof![
        (any::<u8>(), -3i8..=3).prop_map(|(g, c)| Tmpl::Bump(g, c)),
        (any::<u8>(), any::<u8>(), -3i8..=3).prop_map(|(a, b, c)| Tmpl::ReadThenWrite(a, b, c)),
        any::<u8>().prop_map(Tmpl::ArrayLoop),
        (any::<u8>(), -3i8..=3).prop_map(|(g, c)| Tmpl::Locked(g, c)),
        (any::<u8>(), any::<u8>(), 0i8..=9).prop_map(|(a, b, c)| Tmpl::Guarded(a, b, c)),
        (any::<u8>(), -5i8..=5).prop_map(|(g, v)| Tmpl::Scatter(g, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        // Scaled up in validation sweeps via PROPTEST_CASES.
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(24),
        ..ProptestConfig::default()
    })]

    /// Any generated racy program, under any optimization set, records and
    /// replays identically across different timing seeds.
    #[test]
    fn generated_programs_replay_deterministically(
        body_a in proptest::collection::vec(tmpl_strategy(), 2..6),
        body_b in proptest::collection::vec(tmpl_strategy(), 2..6),
        reps in 2u8..8,
        same_fn in any::<bool>(),
        opt_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let src = render_program(&body_a, &body_b, reps, same_fn);
        let program = compile(&src).expect("generated source is valid MiniC");
        let opts = [OptSet::naive(), OptSet::func_only(), OptSet::loop_only(), OptSet::all()]
            [opt_idx].clone();
        let cfg = PipelineConfig {
            opts,
            profile_seeds: vec![1, 2],
            exec: ExecConfig::default(),
        };
        let analysis = analyze(&program, &cfg);
        let m = measure(&analysis, &ExecConfig::default(), seed);
        prop_assert!(
            m.recording.result.outcome.is_exit(),
            "recording failed: {:?}\n{src}",
            m.recording.result.outcome
        );
        prop_assert!(m.deterministic, "replay diverged for:\n{src}");
    }

    /// The static detector is *sound* on generated programs: every pair of
    /// dynamic conflicting accesses from different threads must be covered
    /// by the race report (checked indirectly: instrumenting all reported
    /// races yields replay determinism — the assertion above — and
    /// programs whose only shared accesses are lock-protected produce no
    /// false negatives that break replay). Here we additionally check that
    /// fully locked programs are reported race-free.
    #[test]
    fn fully_locked_generated_programs_are_race_free(
        gs in proptest::collection::vec((any::<u8>(), -3i8..=3), 2..5),
        reps in 2u8..6,
    ) {
        let body: Vec<Tmpl> = gs.iter().map(|(g, c)| Tmpl::Locked(*g, *c)).collect();
        let mut src = render_program(&body, &body, reps, true);
        // Also lock the main-thread initializers and summary reads: a
        // lockset detector (rightly) reports main's bare accesses.
        src = src.replace("g0 = 5; g1 = 3; g2 = 9;", "lock(&m); g0 = 5; g1 = 3; g2 = 9; unlock(&m);");
        src = src.replace("s = g0 + g1 * 10 + g2 * 100;", "lock(&m); s = g0 + g1 * 10 + g2 * 100; unlock(&m);");
        let program = compile(&src).expect("valid");
        let races = chimera_relay::detect_races(&program);
        // arr is untouched in this variant; all g accesses are locked.
        prop_assert!(
            races.pairs.is_empty(),
            "lock-protected program reported racy:\n{}\n{src}",
            races.describe(&program)
        );
    }
}
