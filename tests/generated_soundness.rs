//! Generative soundness testing: random racy MiniC programs, run through
//! the full pipeline, must always replay deterministically.
//!
//! This is the reproduction's strongest evidence for the paper's central
//! claim — the guarantee must hold for *arbitrary* programs, not just the
//! nine benchmarks. The generator produces terminating multithreaded
//! programs full of unsynchronized shared accesses (scalar read-modify-
//! writes, array loops, branch-guarded updates, lock-protected sections),
//! and the property is checked for every optimization configuration.
//!
//! Runs under `chimera-testkit`'s property harness: a failing case prints
//! a `CHIMERA_TESTKIT_SEED=<n>` line that replays it exactly, and the
//! historical proptest counterexamples live on below as named
//! `regression_*` tests. Scale the sweep with `CHIMERA_TESTKIT_CASES`.

use chimera::{analyze, measure, OptSet, PipelineConfig};
use chimera_minic::compile;
use chimera_runtime::ExecConfig;
use chimera_testkit::prop::{self, Config, Gen};
use chimera_testkit::prop_assert;

/// One statement template for a worker body.
#[derive(Debug, Clone)]
enum Tmpl {
    /// `gN = gN + c;`
    Bump(u8, i8),
    /// `x = gN; gM = x + c;` — a classic lost-update window.
    ReadThenWrite(u8, u8, i8),
    /// `for (i = 0; i < 8; i = i + 1) { arr[i] = arr[i] + gN; }`
    ArrayLoop(u8),
    /// `lock(&m); gN = gN + c; unlock(&m);`
    Locked(u8, i8),
    /// `if (gN > c) { gM = gM - 1; }`
    Guarded(u8, u8, i8),
    /// `arr[gN & 15] = v;` — a data-dependent index (±∞ bounds).
    Scatter(u8, i8),
}

fn render_stmt(t: &Tmpl) -> String {
    match t {
        Tmpl::Bump(g, c) => format!("g{} = g{} + {};", g % 3, g % 3, c),
        Tmpl::ReadThenWrite(a, b, c) => format!(
            "x = g{}; g{} = x + {};",
            a % 3,
            b % 3,
            c
        ),
        Tmpl::ArrayLoop(g) => format!(
            "for (i = 0; i < 8; i = i + 1) {{ arr[i] = arr[i] + g{}; }}",
            g % 3
        ),
        Tmpl::Locked(g, c) => format!(
            "lock(&m); g{} = g{} + {}; unlock(&m);",
            g % 3,
            g % 3,
            c
        ),
        Tmpl::Guarded(a, b, c) => format!(
            "if (g{} > {}) {{ g{} = g{} - 1; }}",
            a % 3,
            c,
            b % 3,
            b % 3
        ),
        Tmpl::Scatter(g, v) => format!("arr[g{} & 15] = {};", g % 3, v),
    }
}

fn render_program(body_a: &[Tmpl], body_b: &[Tmpl], reps: u8, same_fn: bool) -> String {
    let body = |ts: &[Tmpl]| -> String {
        ts.iter()
            .map(|t| format!("        {}\n", render_stmt(t)))
            .collect::<String>()
    };
    let worker_b = if same_fn {
        String::new()
    } else {
        format!(
            "void wb(int v) {{\n    int r; int i; int x;\n    for (r = 0; r < {reps}; r = r + 1) {{\n{}    }}\n}}\n",
            body(body_b)
        )
    };
    let spawn_b = if same_fn { "wa" } else { "wb" };
    format!(
        "int g0; int g1; int g2;\nint arr[16];\nlock_t m;\n\
         void wa(int v) {{\n    int r; int i; int x;\n    for (r = 0; r < {reps}; r = r + 1) {{\n{}    }}\n}}\n\
         {worker_b}\
         int main() {{\n    int t1; int t2; int i; int s;\n    g0 = 5; g1 = 3; g2 = 9;\n\
             t1 = spawn(wa, 1);\n    t2 = spawn({spawn_b}, 2);\n    join(t1);\n    join(t2);\n\
             s = g0 + g1 * 10 + g2 * 100;\n    for (i = 0; i < 16; i = i + 1) {{ s = s + arr[i]; }}\n\
             print(s);\n    return 0;\n}}\n",
        body(body_a)
    )
}

fn tmpl_gen() -> Gen<Tmpl> {
    prop::one_of(vec![
        Gen::new(|s| Tmpl::Bump(s.int(0u8..=255), s.int(-3i8..=3))),
        Gen::new(|s| Tmpl::ReadThenWrite(s.int(0u8..=255), s.int(0u8..=255), s.int(-3i8..=3))),
        prop::any_u8().map(Tmpl::ArrayLoop),
        Gen::new(|s| Tmpl::Locked(s.int(0u8..=255), s.int(-3i8..=3))),
        Gen::new(|s| Tmpl::Guarded(s.int(0u8..=255), s.int(0u8..=255), s.int(0i8..=9))),
        Gen::new(|s| Tmpl::Scatter(s.int(0u8..=255), s.int(-5i8..=5))),
    ])
}

/// The generated-case tuple: worker bodies, repetition count, whether both
/// threads run the same function, which optimization set, and the timing
/// seed for the measured recording.
#[derive(Debug, Clone)]
struct ReplayCase {
    body_a: Vec<Tmpl>,
    body_b: Vec<Tmpl>,
    reps: u8,
    same_fn: bool,
    opt_idx: usize,
    seed: u64,
}

fn replay_case_gen() -> Gen<ReplayCase> {
    let tmpls = || prop::vec_of(tmpl_gen(), 2..6);
    let (a, b) = (tmpls(), tmpls());
    Gen::new(move |s| ReplayCase {
        body_a: s.draw(&a),
        body_b: s.draw(&b),
        reps: s.int(2u8..8),
        same_fn: s.bool(),
        opt_idx: s.int(0usize..4),
        seed: s.int(0u64..1000),
    })
}

/// Property body, shared by the generated sweep and the named regressions:
/// the program records successfully and replays deterministically.
fn check_replay_deterministic(case: &ReplayCase) -> Result<(), String> {
    let src = render_program(&case.body_a, &case.body_b, case.reps, case.same_fn);
    let program = compile(&src).expect("generated source is valid MiniC");
    let opts = [OptSet::naive(), OptSet::func_only(), OptSet::loop_only(), OptSet::all()]
        [case.opt_idx]
        .clone();
    let cfg = PipelineConfig {
        opts,
        profile_seeds: vec![1, 2],
        exec: ExecConfig::default(),
    };
    let analysis = analyze(&program, &cfg);
    let m = measure(&analysis, &ExecConfig::default(), case.seed);
    prop_assert!(
        m.recording.result.outcome.is_exit(),
        "recording failed: {:?}\n{src}",
        m.recording.result.outcome
    );
    prop_assert!(m.deterministic, "replay diverged for:\n{src}");
    Ok(())
}

/// Property body for the fully-locked variant: the static detector must
/// report such programs race-free.
fn check_locked_race_free(gs: &[(u8, i8)], reps: u8) -> Result<(), String> {
    let body: Vec<Tmpl> = gs.iter().map(|&(g, c)| Tmpl::Locked(g, c)).collect();
    let mut src = render_program(&body, &body, reps, true);
    // Also lock the main-thread initializers and summary reads: a
    // lockset detector (rightly) reports main's bare accesses.
    src = src.replace(
        "g0 = 5; g1 = 3; g2 = 9;",
        "lock(&m); g0 = 5; g1 = 3; g2 = 9; unlock(&m);",
    );
    src = src.replace(
        "s = g0 + g1 * 10 + g2 * 100;",
        "lock(&m); s = g0 + g1 * 10 + g2 * 100; unlock(&m);",
    );
    let program = compile(&src).expect("valid");
    let races = chimera_relay::detect_races(&program);
    // arr is untouched in this variant; all g accesses are locked.
    prop_assert!(
        races.pairs.is_empty(),
        "lock-protected program reported racy:\n{}\n{src}",
        races.describe(&program)
    );
    Ok(())
}

/// The sweep is deliberately smaller than the harness default (each case
/// runs the full analyze/record/replay pipeline); `CHIMERA_TESTKIT_CASES`
/// scales it up in validation sweeps.
fn sweep_config() -> Config {
    Config::from_env().with_cases(24)
}

/// Any generated racy program, under any optimization set, records and
/// replays identically across different timing seeds.
#[test]
fn generated_programs_replay_deterministically() {
    prop::check_config(
        &sweep_config(),
        "generated_programs_replay_deterministically",
        &replay_case_gen(),
        check_replay_deterministic,
    );
}

/// The static detector is *sound* on generated programs: every pair of
/// dynamic conflicting accesses from different threads must be covered
/// by the race report (checked indirectly: instrumenting all reported
/// races yields replay determinism — the assertion above — and
/// programs whose only shared accesses are lock-protected produce no
/// false negatives that break replay). Here we additionally check that
/// fully locked programs are reported race-free.
#[test]
fn fully_locked_generated_programs_are_race_free() {
    let gen = prop::vec_of(
        Gen::new(|s| (s.int(0u8..=255), s.int(-3i8..=3))),
        2..5,
    );
    let gen = prop::pair(gen, prop::ranged(2u8..6));
    prop::check_config(
        &sweep_config(),
        "fully_locked_generated_programs_are_race_free",
        &gen,
        |(gs, reps)| check_locked_race_free(gs, *reps),
    );
}

/// The generator itself is deterministic: the same case seed yields the
/// same program source, and the static race report on it is identical.
/// (This is the property that makes `CHIMERA_TESTKIT_SEED` replay — and
/// the whole hermetic-test story — trustworthy.)
#[test]
fn same_generator_seed_same_program_and_race_report() {
    let gen = replay_case_gen();
    for seed in [0u64, 7, 42, 0xDEADBEEF, u64::MAX] {
        let a = prop::sample_with_seed(&gen, seed);
        let b = prop::sample_with_seed(&gen, seed);
        let src_a = render_program(&a.body_a, &a.body_b, a.reps, a.same_fn);
        let src_b = render_program(&b.body_a, &b.body_b, b.reps, b.same_fn);
        assert_eq!(src_a, src_b, "seed {seed} produced two different programs");
        let pa = compile(&src_a).expect("valid");
        let pb = compile(&src_b).expect("valid");
        let ra = chimera_relay::detect_races(&pa);
        let rb = chimera_relay::detect_races(&pb);
        assert_eq!(
            ra.describe(&pa),
            rb.describe(&pb),
            "seed {seed} produced two different race reports"
        );
    }
}

// --- Named regressions -----------------------------------------------------
//
// Every shrunk counterexample from the retired
// `generated_soundness.proptest-regressions` file, preserved as an explicit
// test so no historical failure is ever lost.

/// proptest regression `0ac7c604…`: shrank to `gs = [(0, 0), (0, 0)], reps = 2`.
#[test]
fn regression_locked_zero_increments_are_race_free() {
    check_locked_race_free(&[(0, 0), (0, 0)], 2).unwrap();
}

/// proptest regression `de091b97…`: shrank to
/// `body_a = [ArrayLoop(4), ArrayLoop(7)], body_b = [ArrayLoop(88), Locked(0, 0)],
///  reps = 2, same_fn = false, opt_idx = 2, seed = 0`.
#[test]
fn regression_array_loops_under_loop_only_opts_replay() {
    check_replay_deterministic(&ReplayCase {
        body_a: vec![Tmpl::ArrayLoop(4), Tmpl::ArrayLoop(7)],
        body_b: vec![Tmpl::ArrayLoop(88), Tmpl::Locked(0, 0)],
        reps: 2,
        same_fn: false,
        opt_idx: 2,
        seed: 0,
    })
    .unwrap();
}

/// proptest regression `c7d47e09…`: shrank to
/// `body_a = [Scatter(114, 0), Bump(0, 0), Guarded(1, 0, 0), Bump(0, 0)],
///  body_b = [Guarded(55, 4, 0), ArrayLoop(73)], reps = 4, same_fn = false,
///  opt_idx = 2, seed = 115`.
#[test]
fn regression_scatter_guard_mix_under_loop_only_opts_replays() {
    check_replay_deterministic(&ReplayCase {
        body_a: vec![
            Tmpl::Scatter(114, 0),
            Tmpl::Bump(0, 0),
            Tmpl::Guarded(1, 0, 0),
            Tmpl::Bump(0, 0),
        ],
        body_b: vec![Tmpl::Guarded(55, 4, 0), Tmpl::ArrayLoop(73)],
        reps: 4,
        same_fn: false,
        opt_idx: 2,
        seed: 115,
    })
    .unwrap();
}
