//! Workspace-level integration tests: the full Chimera pipeline over every
//! benchmark workload.
//!
//! The property under test is the paper's core guarantee: for *any*
//! program (racy or not), the Chimera-instrumented version records an
//! execution whose replay — under different timing — reproduces the
//! recording exactly.

use chimera::{analyze_workload, measure, OptSet};
use chimera_runtime::ExecConfig;
use chimera_workloads::all;

/// Every workload, 2 workers, all optimizations: record then replay under
/// a different seed; outputs and final memory must match.
#[test]
fn all_workloads_replay_deterministically_with_all_opts() {
    let exec = ExecConfig::default();
    for w in all() {
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 3, &exec);
        let m = measure(&analysis, &exec, 7);
        assert!(
            m.recording.result.outcome.is_exit(),
            "{}: recording did not exit: {:?}",
            w.name,
            m.recording.result.outcome
        );
        assert!(m.deterministic, "{}: replay diverged", w.name);
    }
}

/// The same guarantee must hold for the *naive* instrumentation (every
/// race at instruction granularity) — the optimizations must not be what
/// correctness depends on.
#[test]
fn workloads_replay_deterministically_with_naive_opts() {
    let exec = ExecConfig::default();
    for w in all().into_iter().filter(|w| {
        // Keep the slowest naive configurations out of the default test
        // run; the bench harness covers them.
        ["radix", "water", "pfscan"].contains(&w.name)
    }) {
        let analysis = analyze_workload(&w, 2, &OptSet::naive(), 3, &exec);
        let m = measure(&analysis, &exec, 3);
        assert!(m.deterministic, "{}: naive replay diverged", w.name);
    }
}

/// Instrumentation must not change program results: for the deterministic
/// parts of each workload's output (computed values, not timing), the
/// instrumented program agrees with the original when both run race-free
/// schedules. We check the two workloads whose outputs are
/// schedule-independent by construction.
#[test]
fn instrumentation_preserves_results() {
    let exec = ExecConfig::default();
    for name in ["radix", "pbzip2"] {
        let w = chimera_workloads::by_name(name).unwrap();
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        let base = chimera_runtime::execute(&analysis.program, &exec);
        let inst = chimera_runtime::execute(&analysis.instrumented, &exec);
        assert!(base.outcome.is_exit() && inst.outcome.is_exit());
        assert_eq!(
            base.output_of(chimera_runtime::ThreadId(0)),
            inst.output_of(chimera_runtime::ThreadId(0)),
            "{name}: instrumented program computed different results"
        );
    }
}

/// Replay of I/O-bound workloads is faster than recording (the paper's
/// aget/knot/apache observation: recorded input is fed without waiting).
#[test]
fn network_workloads_replay_faster_than_recording() {
    let exec = ExecConfig::default();
    for name in ["aget", "knot"] {
        let w = chimera_workloads::by_name(name).unwrap();
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        let m = measure(&analysis, &exec, 11);
        assert!(m.deterministic, "{name}");
        assert!(
            m.replay.result.makespan < m.recording.result.makespan / 2,
            "{name}: replay {} should be well under recording {}",
            m.replay.result.makespan,
            m.recording.result.makespan
        );
    }
}

/// 2, 4, and 8 workers all work (Figure 8's sweep is meaningful).
#[test]
fn worker_counts_two_four_eight() {
    let exec = ExecConfig::default();
    let w = chimera_workloads::by_name("fft").unwrap();
    for workers in [2, 4, 8] {
        let analysis = analyze_workload(&w, workers, &OptSet::all(), 2, &exec);
        let m = measure(&analysis, &exec, 5);
        assert!(m.deterministic, "fft at {workers} workers diverged");
    }
}

/// Logs survive a trip through their on-disk byte format: record, encode,
/// decode, replay from the decoded logs.
#[test]
fn replay_from_persisted_log_bytes() {
    let exec = ExecConfig::default();
    let w = chimera_workloads::by_name("radix").unwrap();
    let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
    let rec = chimera_replay::record(
        &analysis.instrumented,
        &ExecConfig { seed: 21, ..exec },
    );
    let bytes = rec.logs.to_bytes();
    let decoded = chimera_replay::ReplayLogs::from_bytes(&bytes).expect("decodable");
    assert_eq!(decoded, rec.logs);
    let rep = chimera_replay::replay(
        &analysis.instrumented,
        &decoded,
        &ExecConfig {
            seed: 9999,
            ..exec
        },
    );
    assert!(rep.complete);
    assert!(chimera_replay::verify_determinism(&rec.result, &rep.result).equivalent);
}

/// Heavyweight sweep: every workload at 8 workers with 3 recorded trials.
/// Run explicitly (`cargo test --release -- --ignored`); the default suite
/// covers 2 workers.
#[test]
#[ignore = "slow: full 8-worker sweep; run with --release -- --ignored"]
fn all_workloads_replay_deterministically_at_8_workers() {
    let exec = ExecConfig::default();
    for w in all() {
        let analysis = analyze_workload(&w, 8, &OptSet::all(), 3, &exec);
        for seed in [3u64, 17, 90] {
            let m = measure(&analysis, &exec, seed);
            assert!(
                m.deterministic,
                "{} at 8 workers, seed {seed}: replay diverged",
                w.name
            );
        }
    }
}
