//! Unparse → recompile round trip over the full workload corpus.
//!
//! `chimera_minic::unparse` renders a parsed unit back to MiniC source.
//! If that rendering is faithful, recompiling it must yield a program the
//! *analyses* cannot tell apart from the original: same race pairs, same
//! instrumentation plan. This pins the unparser (and the parser's
//! round-trip stability) against every checked-in workload, at both the
//! evaluation and profiling input scales.

use chimera::{analyze, PipelineConfig};
use chimera_minic::{compile, lexer, parser, unparse};
use chimera_workloads::all;

/// Compile `src` directly and via an unparse round trip.
fn round_trip(name: &str, src: &str) -> (chimera_minic::Program, chimera_minic::Program) {
    let direct = compile(src).unwrap_or_else(|e| panic!("{name}: workload does not compile: {e}"));
    let tokens = lexer::lex(src).unwrap_or_else(|e| panic!("{name}: lex failed: {e}"));
    let unit = parser::parse(&tokens).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
    let rendered = unparse::unit_to_source(&unit);
    let reparsed = compile(&rendered)
        .unwrap_or_else(|e| panic!("{name}: unparse broke the source: {e}\n{rendered}"));
    (direct, reparsed)
}

/// A plan fingerprint: `Plan` deliberately has no `PartialEq` (it holds
/// derived stats), so compare the complete Debug rendering — any drift in
/// lock placement, granularity, or clique structure shows up here.
fn plan_fingerprint(p: &chimera_minic::Program) -> (usize, String) {
    let analysis = analyze(p, &PipelineConfig::default());
    (
        analysis.races.pairs.len(),
        format!("{:?}", analysis.plan),
    )
}

#[test]
fn every_workload_analyzes_identically_after_unparse() {
    for w in all() {
        let params = w.eval_params(2);
        let (direct, reparsed) = round_trip(w.name, &w.source(&params));
        let (races_a, plan_a) = plan_fingerprint(&direct);
        let (races_b, plan_b) = plan_fingerprint(&reparsed);
        assert_eq!(
            races_a, races_b,
            "{}: race-pair count changed across unparse round trip",
            w.name
        );
        assert_eq!(
            plan_a, plan_b,
            "{}: weak-lock plan changed across unparse round trip",
            w.name
        );
    }
}

#[test]
fn profile_scale_sources_also_round_trip() {
    // The profiling inputs exercise different loop bounds and worker
    // counts; the rendered source must stay faithful there too.
    for w in all() {
        let params = w.profile_params(0);
        let (direct, reparsed) = round_trip(w.name, &w.source(&params));
        assert_eq!(
            chimera_minic::pretty::program_to_string(&direct),
            chimera_minic::pretty::program_to_string(&reparsed),
            "{}: IR diverged after unparse round trip at profile scale",
            w.name
        );
    }
}
