//! Differential testing of the two interpreter paths.
//!
//! The runtime ships two stepping implementations: the pre-decoded flat
//! hot loop (production) and the original block-structured clone-per-step
//! loop (reference). Everything the repo measures rests on the claim that
//! they are *indistinguishable* — same `ExecResult`, same event trace,
//! same stats, same block counts — so this suite pins the two paths to
//! byte-identical results across all nine paper workloads (over seeds and
//! thread counts), weak-lock-instrumented programs with forced releases,
//! record/replay round trips, and a generative sweep of racy programs.
//!
//! The flat loop itself is layered — superinstruction fusion, batch
//! commit, and the speculative segment engine with its DRF-certified
//! parallel dispatch (`ExecConfig::parallelism`) — and every layer is in
//! scope here: the jitter-off cases run all of them against the
//! reference interpreter, parallel mode is pinned bit-identical (results
//! *and* replay logs) to serial flat on all nine workloads, and
//! `CHIMERA_SERIAL=1` must force the serial fallback.
//!
//! A failing generated case prints a `CHIMERA_TESTKIT_SEED=<n>` line that
//! replays it exactly; scale the sweep with `CHIMERA_TESTKIT_CASES`.

use chimera::{analyze, PipelineConfig};
use chimera_minic::compile;
use chimera_runtime::{
    execute_mode, ExecConfig, ExecResult, InterpMode, Jitter, NullSupervisor, SchedStrategy,
};
use chimera_testkit::prop::{self, Config, Gen};
use chimera_workloads::{all, Params};

/// Field-wise equality of two results, with a label that identifies the
/// diverging configuration. `ExecResult` deliberately has no `PartialEq`
/// (it would invite meaningless whole-struct comparisons in user code),
/// so the suite spells out every field.
fn assert_identical(flat: &ExecResult, refr: &ExecResult, label: &str) {
    assert_eq!(flat.outcome, refr.outcome, "outcome diverged: {label}");
    assert_eq!(flat.output, refr.output, "output diverged: {label}");
    assert_eq!(
        flat.state_hash, refr.state_hash,
        "final memory diverged: {label}"
    );
    assert_eq!(flat.makespan, refr.makespan, "makespan diverged: {label}");
    assert_eq!(flat.stats, refr.stats, "stats diverged: {label}");
    assert_eq!(
        flat.trace.len(),
        refr.trace.len(),
        "trace length diverged: {label}"
    );
    for (i, (a, b)) in flat.trace.iter().zip(refr.trace.iter()).enumerate() {
        assert_eq!(a, b, "trace event {i} diverged: {label}");
    }
    assert_eq!(
        flat.block_counts, refr.block_counts,
        "block counts diverged: {label}"
    );
}

/// Run both modes on one program/config and require identical results.
fn check_program(p: &chimera_minic::ir::Program, cfg: &ExecConfig, label: &str) {
    let flat = execute_mode(p, cfg, InterpMode::Flat);
    let refr = execute_mode(p, cfg, InterpMode::Reference);
    assert_identical(&flat, &refr, label);
}

/// All nine paper workloads, across seeds and worker counts, with full
/// traces and block counts collected.
#[test]
fn all_workloads_agree_across_seeds_and_threads() {
    for w in all() {
        for workers in [2, 4] {
            let p = w
                .compile(&Params { workers, scale: 1 })
                .expect("workload compiles");
            for seed in [1, 42] {
                let cfg = ExecConfig {
                    seed,
                    collect_trace: true,
                    count_blocks: true,
                    ..ExecConfig::default()
                };
                check_program(
                    &p,
                    &cfg,
                    &format!("{} workers={workers} seed={seed}", w.name),
                );
            }
        }
    }
}

/// The speculative segment engine and its parallel dispatch only engage
/// with jitter off (hot commits draw no RNG): this is the configuration
/// under which the fused + batched + speculative flat VM does everything
/// it can, so it is where the parallel-mode identity claim is sharpest.
fn spec_config(seed: u64) -> ExecConfig {
    ExecConfig {
        seed,
        jitter: Jitter::none(),
        collect_trace: true,
        ..ExecConfig::default()
    }
}

/// DRF-certified parallel mode: on every workload, the parallel flat VM
/// (`parallelism = 4`, speculative segments dispatched over OS threads)
/// must be byte-identical — outcome, output, final memory, virtual time,
/// stats, committed event trace — to serial flat *and* to the reference
/// interpreter. This arbitrates tentpole mechanism (3): parallel commit
/// of certified race-free segments must be invisible.
#[test]
fn parallel_mode_is_bit_identical_on_all_workloads() {
    for w in all() {
        for seed in [1, 42] {
            let base = spec_config(seed);
            let p = w
                .compile(&Params {
                    workers: 4,
                    scale: 1,
                })
                .expect("workload compiles");
            let serial = execute_mode(&p, &base, InterpMode::Flat);
            let par = execute_mode(
                &p,
                &ExecConfig {
                    parallelism: 4,
                    ..base
                },
                InterpMode::Flat,
            );
            let refr = execute_mode(&p, &base, InterpMode::Reference);
            assert_identical(
                &par,
                &serial,
                &format!("{} parallel vs serial flat, seed={seed}", w.name),
            );
            assert_identical(
                &par,
                &refr,
                &format!("{} parallel flat vs reference, seed={seed}", w.name),
            );
        }
    }
}

/// Recording under parallel mode must produce bit-identical replay logs:
/// the committed sync/input/output order is the log, so any reordering the
/// parallel engine allowed would surface here byte-for-byte.
#[test]
fn parallel_mode_replay_logs_are_bit_identical() {
    for w in all() {
        let p = w
            .compile(&Params {
                workers: 4,
                scale: 1,
            })
            .expect("workload compiles");
        let base = ExecConfig {
            seed: 42,
            jitter: Jitter::none(),
            log_sync: true,
            log_input: true,
            ..ExecConfig::default()
        };
        let rec_serial = chimera_replay::record(&p, &base);
        let rec_par = chimera_replay::record(
            &p,
            &ExecConfig {
                parallelism: 4,
                ..base
            },
        );
        assert!(rec_serial.result.outcome.is_exit(), "{}", w.name);
        assert_eq!(
            rec_serial.logs, rec_par.logs,
            "{}: replay logs diverged between serial and parallel recording",
            w.name
        );
        assert_eq!(
            rec_serial.logs.to_bytes(),
            rec_par.logs.to_bytes(),
            "{}: serialized replay logs diverged",
            w.name
        );
        assert_eq!(
            rec_serial.result.state_hash, rec_par.result.state_hash,
            "{}: recorded state hash diverged",
            w.name
        );
    }
}

/// `CHIMERA_SERIAL=1` must be respected by parallel mode: with the
/// variable set, a `parallelism = 4` run falls back to the serial flat
/// engine (no parallel rounds dispatched) while producing the same
/// results. Guarded against an externally-set variable so the positive
/// half never flakes.
#[test]
fn chimera_serial_env_pins_parallel_mode_to_serial() {
    let p = all()[0]
        .compile(&Params {
            workers: 4,
            scale: 1,
        })
        .expect("workload compiles");
    let base = spec_config(42);
    let par_cfg = ExecConfig {
        parallelism: 4,
        ..base
    };
    let serial = execute_mode(&p, &base, InterpMode::Flat);
    if !chimera_runtime::serial_requested() {
        let par = execute_mode(&p, &par_cfg, InterpMode::Flat);
        assert!(
            par.stats.vm.par_rounds > 0,
            "parallel mode never dispatched a parallel round"
        );
        assert_identical(&par, &serial, "parallel vs serial, env unset");
    }
    std::env::set_var("CHIMERA_SERIAL", "1");
    let pinned = execute_mode(&p, &par_cfg, InterpMode::Flat);
    std::env::remove_var("CHIMERA_SERIAL");
    assert_eq!(
        pinned.stats.vm.par_rounds, 0,
        "CHIMERA_SERIAL=1 was ignored by parallel mode"
    );
    assert_identical(&pinned, &serial, "CHIMERA_SERIAL=1 parallel vs serial");
}

const RACY: &str = "int g;
    void w(int v) { int i; int x;
        for (i = 0; i < 120; i = i + 1) { x = g; g = x + v; } }
    int main() { int t; t = spawn(w, 1); w(2); join(t); print(g); return 0; }";

/// A weak-lock-instrumented program under recording costs, with the
/// timeout set low enough to force releases — the protocol's every edge
/// (grant, cancel, reacquire) must behave identically in both loops.
#[test]
fn instrumented_program_with_forced_releases_agrees() {
    let p = compile(RACY).unwrap();
    let a = analyze(&p, &PipelineConfig::default());
    assert!(a.instrumented.weak_locks > 0, "expected instrumentation");
    for (timeout, label) in [(500_000, "calm"), (2_000, "forcing")] {
        for seed in [3, 77] {
            let cfg = ExecConfig {
                seed,
                collect_trace: true,
                log_sync: true,
                log_weak: true,
                log_input: true,
                timeout_enabled: true,
                weak_timeout: timeout,
                ..ExecConfig::default()
            };
            check_program(
                &a.instrumented,
                &cfg,
                &format!("instrumented {label} seed={seed}"),
            );
        }
    }
}

/// Record under one mode, replay under the other (both pairings): the
/// replay supervisor injects forced releases and stalls threads at order
/// points, exercising the flat loop's no-burst fallback.
#[test]
fn record_replay_round_trips_across_modes() {
    let p = compile(RACY).unwrap();
    let a = analyze(&p, &PipelineConfig::default());
    let rec_cfg = ExecConfig {
        seed: 11,
        log_sync: true,
        log_weak: true,
        log_input: true,
        timeout_enabled: true,
        ..ExecConfig::default()
    };
    // record() / replay() go through the default-mode entry points; build
    // the recording per mode via the supervisor directly.
    let rec = chimera_replay::record(&a.instrumented, &rec_cfg);
    assert!(rec.result.outcome.is_exit());
    for mode_label in ["flat", "reference"] {
        let rep = {
            let cfg = ExecConfig {
                seed: 999,
                timeout_enabled: false,
                ..rec_cfg
            };
            let mut sup = chimera_replay::Replayer::new(rec.logs.clone());
            let mode = if mode_label == "flat" {
                InterpMode::Flat
            } else {
                InterpMode::Reference
            };
            chimera_runtime::execute_supervised_mode(&a.instrumented, &cfg, &mut sup, mode)
        };
        assert_eq!(
            rep.output, rec.result.output,
            "replay output diverged from recording under {mode_label}"
        );
        assert_eq!(
            rep.state_hash, rec.result.state_hash,
            "replay memory diverged from recording under {mode_label}"
        );
    }
}

/// Uninstrumented execution through a no-op supervisor must equal plain
/// execution in both modes (the event mask only elides event construction,
/// never semantics).
#[test]
fn null_supervisor_masking_is_invisible() {
    let p = compile(RACY).unwrap();
    let cfg = ExecConfig {
        seed: 5,
        ..ExecConfig::default()
    };
    let plain_flat = execute_mode(&p, &cfg, InterpMode::Flat);
    let mut sup = NullSupervisor;
    let supervised =
        chimera_runtime::execute_supervised_mode(&p, &cfg, &mut sup, InterpMode::Flat);
    assert_eq!(plain_flat.output, supervised.output);
    assert_eq!(plain_flat.state_hash, supervised.state_hash);
    assert_eq!(plain_flat.makespan, supervised.makespan);
    let refr = execute_mode(&p, &cfg, InterpMode::Reference);
    assert_identical(&plain_flat, &refr, "null-supervised racy program");
}

/// The race-detector feed (per-access `Load`/`Store` events plus the HB
/// release edges) must be invisible when masked off *and* when attached:
/// with no subscriber the flat loop pays nothing and both modes stay
/// byte-identical, and attaching the detector changes neither execution
/// nor the recorded trace — `emit_hb` delivers to the supervisor only,
/// never into the trace buffer.
#[test]
fn detector_feed_masked_off_and_attached_leave_modes_identical() {
    let p = compile(RACY).unwrap();
    let cfg = ExecConfig {
        seed: 13,
        collect_trace: true,
        count_blocks: true,
        ..ExecConfig::default()
    };
    // Detached (default mask: no access-event subscriber).
    let flat = execute_mode(&p, &cfg, InterpMode::Flat);
    let refr = execute_mode(&p, &cfg, InterpMode::Reference);
    assert_identical(&flat, &refr, "access events masked off");

    // Attached: the detector subscribes to the full feed in both modes.
    let att_flat = chimera_drd::detect_mode(&p, &cfg, InterpMode::Flat);
    let att_refr = chimera_drd::detect_mode(&p, &cfg, InterpMode::Reference);
    assert_identical(
        &att_flat.result,
        &att_refr.result,
        "detector attached, flat vs reference",
    );
    assert_identical(
        &flat,
        &att_flat.result,
        "detector attached vs detached (feed must not perturb the trace)",
    );
    assert!(
        !att_flat.report.is_race_free(),
        "the racy program must race under the detector"
    );
    assert_eq!(
        att_flat.report.pairs, att_refr.report.pairs,
        "both modes must observe the same racy pairs"
    );
}

// ---------------------------------------------------------------------------
// Generative sweep
// ---------------------------------------------------------------------------

/// One generated statement for a worker body — mixes plain races,
/// lock-protected sections, array loops, condition guards, and output.
#[derive(Debug, Clone)]
enum Stmt {
    Bump(u8, i8),
    Locked(u8, i8),
    ArrayLoop(u8),
    Guarded(u8, u8, i8),
    Print(u8),
    Scatter(u8, i8),
}

fn render_stmt(t: &Stmt) -> String {
    match t {
        Stmt::Bump(g, c) => format!("g{} = g{} + {};", g % 3, g % 3, c),
        Stmt::Locked(g, c) => {
            format!("lock(&m); g{} = g{} + {}; unlock(&m);", g % 3, g % 3, c)
        }
        Stmt::ArrayLoop(g) => format!(
            "for (i = 0; i < 8; i = i + 1) {{ arr[i] = arr[i] + g{}; }}",
            g % 3
        ),
        Stmt::Guarded(a, b, c) => format!(
            "if (g{} > {}) {{ g{} = g{} - 1; }}",
            a % 3,
            c,
            b % 3,
            b % 3
        ),
        Stmt::Print(g) => format!("print(g{});", g % 3),
        Stmt::Scatter(g, v) => format!("arr[g{} & 15] = {};", g % 3, v),
    }
}

#[derive(Debug, Clone)]
struct VmCase {
    body_a: Vec<Stmt>,
    body_b: Vec<Stmt>,
    reps: u8,
    threads: u8,
    seed: u64,
    collect_trace: bool,
    sched: SchedStrategy,
    /// OS worker threads for the flat VM's parallel mode (1 = serial).
    parallelism: u32,
    /// Jitter off lets the speculative segment engine (and with
    /// `parallelism > 1` its parallel dispatch) engage.
    jitter_off: bool,
}

fn render_program(case: &VmCase) -> String {
    let body = |ts: &[Stmt]| -> String {
        ts.iter()
            .map(|t| format!("        {}\n", render_stmt(t)))
            .collect::<String>()
    };
    let reps = case.reps;
    let spawns: String = (0..case.threads)
        .map(|i| {
            let f = if i % 2 == 0 { "wa" } else { "wb" };
            format!("    t{i} = spawn({f}, {i});\n")
        })
        .collect();
    let joins: String = (0..case.threads)
        .map(|i| format!("    join(t{i});\n"))
        .collect();
    let decls: String = (0..case.threads)
        .map(|i| format!("    int t{i};\n"))
        .collect();
    format!(
        "int g0; int g1; int g2;\nint arr[16];\nlock_t m;\n\
         void wa(int v) {{\n    int r; int i; int x;\n    for (r = 0; r < {reps}; r = r + 1) {{\n{}    }}\n}}\n\
         void wb(int v) {{\n    int r; int i; int x;\n    for (r = 0; r < {reps}; r = r + 1) {{\n{}    }}\n}}\n\
         int main() {{\n{decls}    int i; int s;\n    g0 = 5; g1 = 3; g2 = 9;\n\
         {spawns}{joins}\
             s = g0 + g1 * 10 + g2 * 100;\n    for (i = 0; i < 16; i = i + 1) {{ s = s + arr[i]; }}\n\
             print(s);\n    return 0;\n}}\n",
        body(&case.body_a),
        body(&case.body_b),
    )
}

fn stmt_gen() -> Gen<Stmt> {
    prop::one_of(vec![
        Gen::new(|s| Stmt::Bump(s.int(0u8..=255), s.int(-3i8..=3))),
        Gen::new(|s| Stmt::Locked(s.int(0u8..=255), s.int(-3i8..=3))),
        prop::any_u8().map(Stmt::ArrayLoop),
        Gen::new(|s| Stmt::Guarded(s.int(0u8..=255), s.int(0u8..=255), s.int(0i8..=9))),
        prop::any_u8().map(Stmt::Print),
        Gen::new(|s| Stmt::Scatter(s.int(0u8..=255), s.int(-5i8..=5))),
    ])
}

fn case_gen() -> Gen<VmCase> {
    let (a, b) = (
        prop::vec_of(stmt_gen(), 1..6),
        prop::vec_of(stmt_gen(), 1..6),
    );
    Gen::new(move |s| VmCase {
        body_a: s.draw(&a),
        body_b: s.draw(&b),
        reps: s.int(1u8..8),
        threads: s.int(1u8..=4),
        seed: s.int(0u64..10_000),
        collect_trace: s.bool(),
        // The scheduler seam is part of the surface being pinned: a third
        // of cases run under each adversarial strategy with drawn knobs.
        sched: match s.int(0u8..3) {
            0 => SchedStrategy::ClockJitter,
            1 => SchedStrategy::Pct {
                depth: s.int(2u32..5),
                span: s.int(100u64..5_000),
            },
            _ => SchedStrategy::PreemptBound {
                budget: s.int(16u32..512),
                period: s.int(1u64..4),
            },
        },
        parallelism: s.int(1u32..=4),
        jitter_off: s.bool(),
    })
}

fn check_modes_agree(case: &VmCase) -> Result<(), String> {
    let src = render_program(case);
    let p = compile(&src).expect("generated source is valid MiniC");
    let cfg = ExecConfig {
        seed: case.seed,
        collect_trace: case.collect_trace,
        // Block counting disables the speculative segment engine, so only
        // count in the cases that keep it off anyway (jitter on): the
        // jitter-off half of the sweep exercises fused + batched +
        // speculative (and parallel) commits against the reference.
        count_blocks: !case.jitter_off,
        jitter: if case.jitter_off {
            Jitter::none()
        } else {
            Jitter::default()
        },
        parallelism: case.parallelism,
        sched: case.sched,
        ..ExecConfig::default()
    };
    let flat = execute_mode(&p, &cfg, InterpMode::Flat);
    let refr = execute_mode(&p, &cfg, InterpMode::Reference);
    chimera_testkit::prop_assert!(
        flat.outcome == refr.outcome
            && flat.output == refr.output
            && flat.state_hash == refr.state_hash
            && flat.makespan == refr.makespan
            && flat.stats == refr.stats
            && flat.trace == refr.trace
            && flat.block_counts == refr.block_counts,
        "modes diverged (flat {:?} vs reference {:?}) for:\n{src}",
        flat.outcome,
        refr.outcome
    );
    Ok(())
}

/// 64+ generated multithreaded programs execute identically in both modes.
#[test]
fn generated_programs_agree_across_modes() {
    prop::check_config(
        &Config::from_env().with_cases(64),
        "generated_programs_agree_across_modes",
        &case_gen(),
        check_modes_agree,
    );
}
