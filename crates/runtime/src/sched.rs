//! Pluggable scheduling strategies — the schedule-exploration seam.
//!
//! The machine's default scheduler always runs the ready thread with the
//! smallest `(clock, id)` key; its only nondeterminism is seeded cost
//! jitter. That explores a vanishingly thin slice of the schedule space,
//! so replay fidelity and the single-holder invariant were only ever
//! exercised on near-identical interleavings. This module adds a
//! [`SchedStrategy`] seam with deliberately adversarial policies in the
//! spirit of PCT (Burckhardt et al., ASPLOS 2010) and rr's chaos mode:
//!
//! * [`SchedStrategy::ClockJitter`] — the baseline. Keeps the flat hot
//!   loop's burst/ready-queue fast path.
//! * [`SchedStrategy::Pct`] — randomized thread priorities with `depth`
//!   seeded priority-change points: the scheduler always runs the
//!   highest-priority ready thread, and at each change point the running
//!   thread's priority drops below every initial priority.
//! * [`SchedStrategy::PreemptBound`] — a bounded number of forced context
//!   switches, injected exactly at weak-lock acquire/release sites and
//!   shared-access (`Load`/`Store`, which carry their static `AccessId`)
//!   boundaries; between preemptions threads run round-robin sticky.
//!
//! Non-baseline strategies drive both interpreter modes through one
//! shared per-step loop (`Machine::run_strategy`), so a `(strategy,
//! seed)` pair yields bit-identical executions across the flat and
//! reference interpreters by construction — the `vm_differential` suite
//! pins this.
//!
//! Every strategy draws from its own RNG stream (salted with the
//! execution seed), never from the machine's jitter RNG, so attaching a
//! strategy perturbs scheduling *choices* without disturbing the cost
//! model's draw sequence.

use chimera_testkit::rng::Rng;

/// Distinct salts keep each strategy's RNG stream independent of the
/// machine's jitter RNG (seeded from the raw seed) and of each other.
const PCT_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const PREEMPT_SALT: u64 = 0xd1b5_4a32_d192_ed03;

/// Which scheduling policy an execution runs under. All-scalar and
/// `Copy`, so it rides inside [`crate::ExecConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedStrategy {
    /// The clock-ordered baseline: smallest `(clock, id)` ready thread,
    /// nondeterminism from seeded cost jitter only.
    #[default]
    ClockJitter,
    /// PCT-style randomized priorities with seeded change points.
    Pct {
        /// Number of priority-change points plus one (PCT's `d`): `depth`
        /// of the schedule bug the strategy can find with known
        /// probability. `depth - 1` change points are drawn.
        depth: u32,
        /// The step span `[1, span]` over which change points are drawn
        /// (PCT's `k`, an estimate of total steps). `0` means "auto":
        /// harnesses that know a baseline step count (see
        /// `chimera::explore`) substitute it before execution; the raw
        /// scheduler clamps a literal 0 to 1. A span much larger than the
        /// actual run leaves change points unfired and PCT degenerates to
        /// priority-serial execution, so sizing it matters.
        span: u64,
    },
    /// Preemption-bounded exploration targeting weak-lock and
    /// shared-access boundaries.
    PreemptBound {
        /// Maximum forced context switches injected over the run.
        budget: u32,
        /// Average boundaries between preemptions: at each boundary a
        /// seeded draw preempts with probability `1/period` (`0` and `1`
        /// both mean "every boundary").
        period: u64,
    },
}

impl SchedStrategy {
    /// PCT with auto span (resolved from a baseline step count by
    /// harnesses; see `chimera::explore`).
    pub fn pct(depth: u32) -> SchedStrategy {
        SchedStrategy::Pct { depth, span: 0 }
    }

    /// Preemption-bounded defaults: plenty of budget, preempt at roughly
    /// every other boundary.
    pub fn preempt_bound() -> SchedStrategy {
        SchedStrategy::PreemptBound {
            budget: 4096,
            period: 2,
        }
    }

    /// Parse a strategy name as used by `chimera explore --strategy`.
    pub fn parse(name: &str) -> Option<SchedStrategy> {
        match name {
            "jitter" | "baseline" | "clock" => Some(SchedStrategy::ClockJitter),
            "pct" => Some(SchedStrategy::pct(3)),
            "preempt" | "preempt-bound" => Some(SchedStrategy::preempt_bound()),
            _ => None,
        }
    }

    /// True for the clock-ordered baseline — the only policy whose
    /// schedule is a pure function of `(clock, id)` keys. That purity is
    /// what licenses the flat VM's queue, batch-commit, and speculative
    /// segment-round engines (DESIGN.md §13); every other strategy runs
    /// the shared per-step strategy loop.
    pub fn is_baseline(&self) -> bool {
        *self == SchedStrategy::ClockJitter
    }

    /// Short stable name (report keys, bench ids).
    pub fn name(&self) -> &'static str {
        match self {
            SchedStrategy::ClockJitter => "jitter",
            SchedStrategy::Pct { .. } => "pct",
            SchedStrategy::PreemptBound { .. } => "preempt-bound",
        }
    }

    /// Build the runtime scheduler for this policy and seed.
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        match *self {
            SchedStrategy::ClockJitter => Box::new(ClockOrdered),
            SchedStrategy::Pct { depth, span } => Box::new(PctSched::new(seed, depth, span)),
            SchedStrategy::PreemptBound { budget, period } => {
                Box::new(PreemptSched::new(seed, budget, period))
            }
        }
    }
}

/// The pluggable scheduler interface the machine's strategy loop drives.
///
/// Per step the machine calls [`Scheduler::track_threads`] (so the
/// strategy can assign state to newly spawned threads in id order),
/// [`Scheduler::pick`] with the ready set, and — after the step commits
/// or blocks — [`Scheduler::note_step`] with the global step count and
/// whether the stepped thread sat at a weak-lock/shared-access boundary.
/// Implementations must be deterministic functions of their seed and the
/// observed call sequence: both interpreter modes replay the exact same
/// sequence, which is what keeps them bit-identical.
pub trait Scheduler {
    /// Observe that threads `0..n` now exist (called before every pick;
    /// `n` only grows). Assign per-thread state for new ids here.
    fn track_threads(&mut self, n: usize);

    /// Choose the next thread among `ready` (pairs of `(thread id,
    /// clock)` in id order). Returns `None` iff `ready` is empty.
    fn pick(&mut self, ready: &mut dyn Iterator<Item = (u32, u64)>) -> Option<u32>;

    /// Whether [`Scheduler::note_step`] wants boundary classification
    /// (the machine skips the per-step op peek when `false`).
    fn wants_boundaries(&self) -> bool {
        false
    }

    /// Observe a completed step by `tid`; `steps` is the global retired
    /// step count, `boundary` whether the op sat at a weak-lock or
    /// shared-access site.
    fn note_step(&mut self, _tid: u32, _steps: u64, _boundary: bool) {}

    /// Forced scheduling perturbations injected so far (priority changes
    /// or preemptions) — reported via `ExecStats::sched_preemptions`.
    fn preemptions(&self) -> u64 {
        0
    }
}

/// The baseline policy as a [`Scheduler`]: smallest `(clock, id)` wins.
/// The machine routes [`SchedStrategy::ClockJitter`] to its optimized
/// burst/queue loops instead, but this impl keeps the seam total (and is
/// what the strategy loop would run if asked to).
pub struct ClockOrdered;

impl Scheduler for ClockOrdered {
    fn track_threads(&mut self, _n: usize) {}

    fn pick(&mut self, ready: &mut dyn Iterator<Item = (u32, u64)>) -> Option<u32> {
        ready.min_by_key(|&(id, clock)| (clock, id)).map(|(id, _)| id)
    }
}

/// Initial PCT priorities live in a high band so every change-point
/// priority (a small integer) sits below all of them.
const PCT_HIGH_BASE: u64 = 1 << 32;

/// PCT: each thread gets a seeded random priority at spawn; the highest
/// priority ready thread always runs; at each of `depth - 1` seeded step
/// indices the running thread's priority drops into the low band (change
/// point `j` of `d-1` assigns priority `d-1-j`, so later change points
/// push below earlier ones, exactly the PCT construction).
pub struct PctSched {
    rng: Rng,
    prios: Vec<u64>,
    /// Sorted change-point step indices.
    points: Vec<u64>,
    next_point: usize,
    changes: u64,
}

impl PctSched {
    /// Seeded construction: change points are drawn up front from
    /// `[1, span]` so the whole schedule is a function of `(seed, depth,
    /// span)`.
    pub fn new(seed: u64, depth: u32, span: u64) -> PctSched {
        let mut rng = Rng::seed_from_u64(seed ^ PCT_SALT);
        let span = span.max(1);
        let mut points: Vec<u64> = (0..depth.saturating_sub(1))
            .map(|_| rng.gen_range(1..=span))
            .collect();
        points.sort_unstable();
        PctSched {
            rng,
            prios: Vec::new(),
            points,
            next_point: 0,
            changes: 0,
        }
    }
}

impl Scheduler for PctSched {
    fn track_threads(&mut self, n: usize) {
        while self.prios.len() < n {
            self.prios.push(PCT_HIGH_BASE + self.rng.gen_range(0..PCT_HIGH_BASE));
        }
    }

    fn pick(&mut self, ready: &mut dyn Iterator<Item = (u32, u64)>) -> Option<u32> {
        // Highest priority wins; ties (possible after random collisions)
        // break toward the smaller thread id.
        ready
            .max_by_key(|&(id, _)| (self.prios[id as usize], std::cmp::Reverse(id)))
            .map(|(id, _)| id)
    }

    fn note_step(&mut self, tid: u32, steps: u64, _boundary: bool) {
        while self.next_point < self.points.len() && steps >= self.points[self.next_point] {
            let low = (self.points.len() - self.next_point) as u64;
            self.prios[tid as usize] = low;
            self.next_point += 1;
            self.changes += 1;
        }
    }

    fn preemptions(&self) -> u64 {
        self.changes
    }
}

/// Preemption-bounded targeted exploration: one sticky "current" thread
/// runs until it blocks or a seeded preemption fires at a weak-lock or
/// shared-access boundary, at which point scheduling rotates round-robin
/// to the next ready thread. At most `budget` preemptions are injected.
pub struct PreemptSched {
    rng: Rng,
    current: Option<u32>,
    rotate_from: u32,
    budget_left: u32,
    period: u64,
    preempts: u64,
}

impl PreemptSched {
    /// Seeded construction.
    pub fn new(seed: u64, budget: u32, period: u64) -> PreemptSched {
        PreemptSched {
            rng: Rng::seed_from_u64(seed ^ PREEMPT_SALT),
            current: None,
            rotate_from: 0,
            budget_left: budget,
            period,
            preempts: 0,
        }
    }
}

impl Scheduler for PreemptSched {
    fn track_threads(&mut self, _n: usize) {}

    fn pick(&mut self, ready: &mut dyn Iterator<Item = (u32, u64)>) -> Option<u32> {
        // One pass: is the sticky current thread still ready, and which
        // ready ids bracket the rotation point?
        let mut current_ready = false;
        let mut min_ge: Option<u32> = None;
        let mut min_all: Option<u32> = None;
        for (id, _) in ready {
            if Some(id) == self.current {
                current_ready = true;
            }
            if id >= self.rotate_from && min_ge.is_none_or(|m| id < m) {
                min_ge = Some(id);
            }
            if min_all.is_none_or(|m| id < m) {
                min_all = Some(id);
            }
        }
        if current_ready {
            return self.current;
        }
        let next = min_ge.or(min_all);
        self.current = next;
        next
    }

    fn wants_boundaries(&self) -> bool {
        true
    }

    fn note_step(&mut self, tid: u32, _steps: u64, boundary: bool) {
        if !boundary || self.budget_left == 0 {
            return;
        }
        if self.period > 1 && self.rng.gen_range(0..self.period) != 0 {
            return;
        }
        self.budget_left -= 1;
        self.preempts += 1;
        self.rotate_from = tid.wrapping_add(1);
        self.current = None;
    }

    fn preemptions(&self) -> u64 {
        self.preempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pick_of(s: &mut dyn Scheduler, ready: &[(u32, u64)]) -> Option<u32> {
        s.track_threads(ready.iter().map(|&(id, _)| id as usize + 1).max().unwrap_or(0));
        s.pick(&mut ready.iter().copied())
    }

    #[test]
    fn clock_ordered_picks_min_clock_then_id() {
        let mut s = ClockOrdered;
        assert_eq!(pick_of(&mut s, &[(0, 9), (1, 3), (2, 3)]), Some(1));
        assert_eq!(pick_of(&mut s, &[]), None);
    }

    #[test]
    fn pct_is_deterministic_per_seed_and_ignores_clocks() {
        let mut a = PctSched::new(7, 3, 100);
        let mut b = PctSched::new(7, 3, 100);
        for ready in [&[(0u32, 5u64), (1, 1), (2, 99)][..], &[(1, 0), (2, 0)][..]] {
            assert_eq!(pick_of(&mut a, ready), pick_of(&mut b, ready));
        }
        // Clocks are irrelevant: scaling them never changes the pick.
        let mut c = PctSched::new(7, 3, 100);
        let mut d = PctSched::new(7, 3, 100);
        let p1 = pick_of(&mut c, &[(0, 1), (1, 2), (2, 3)]);
        let p2 = pick_of(&mut d, &[(0, 1000), (1, 2000), (2, 3000)]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn pct_change_points_demote_the_running_thread() {
        let mut s = PctSched::new(1, 2, 1); // one change point, at step 1
        s.track_threads(2);
        let first = s.pick(&mut [(0u32, 0u64), (1, 0)].iter().copied()).unwrap();
        s.note_step(first, 1, false);
        assert_eq!(s.preemptions(), 1);
        // The demoted thread now loses to the other one.
        let second = s.pick(&mut [(0u32, 0u64), (1, 0)].iter().copied()).unwrap();
        assert_ne!(first, second);
        // Demoted priority sits in the low band.
        assert!(s.prios[first as usize] < PCT_HIGH_BASE);
    }

    #[test]
    fn pct_seeds_differ() {
        // Across many seeds the initial pick among three threads must not
        // be constant (random priorities actually vary).
        let picks: Vec<u32> = (0..16)
            .map(|seed| {
                let mut s = PctSched::new(seed, 3, 100);
                pick_of(&mut s, &[(0, 0), (1, 0), (2, 0)]).unwrap()
            })
            .collect();
        assert!(picks.iter().any(|&p| p != picks[0]), "{picks:?}");
    }

    #[test]
    fn preempt_bound_rotates_at_boundaries_and_respects_budget() {
        let mut s = PreemptSched::new(0, 2, 1); // budget 2, every boundary
        let ready = [(0u32, 0u64), (1, 0), (2, 0)];
        let first = pick_of(&mut s, &ready).unwrap();
        // Sticky while no boundary fires.
        s.note_step(first, 1, false);
        assert_eq!(pick_of(&mut s, &ready), Some(first));
        // Boundary: rotates to the next id.
        s.note_step(first, 2, true);
        let second = pick_of(&mut s, &ready).unwrap();
        assert_ne!(first, second);
        assert_eq!(s.preemptions(), 1);
        // Second boundary spends the budget; further boundaries are inert.
        s.note_step(second, 3, true);
        let third = pick_of(&mut s, &ready).unwrap();
        s.note_step(third, 4, true);
        s.note_step(third, 5, true);
        assert_eq!(s.preemptions(), 2);
        assert_eq!(pick_of(&mut s, &ready), Some(third));
    }

    #[test]
    fn preempt_rotation_wraps_around() {
        let mut s = PreemptSched::new(0, 8, 1);
        let ready = [(0u32, 0u64), (1, 0)];
        let a = pick_of(&mut s, &ready).unwrap();
        s.note_step(a, 1, true);
        let b = pick_of(&mut s, &ready).unwrap();
        s.note_step(b, 2, true);
        let c = pick_of(&mut s, &ready).unwrap();
        assert_ne!(a, b);
        assert_eq!(a, c, "rotation must wrap past the last id");
    }

    #[test]
    fn strategy_parse_and_names_round_trip() {
        for name in ["jitter", "pct", "preempt-bound"] {
            let s = SchedStrategy::parse(name).unwrap();
            assert_eq!(s.name(), name);
        }
        assert_eq!(
            SchedStrategy::parse("preempt").unwrap().name(),
            "preempt-bound"
        );
        assert!(SchedStrategy::parse("nope").is_none());
        assert_eq!(SchedStrategy::default(), SchedStrategy::ClockJitter);
    }

    #[test]
    fn builders_produce_matching_schedulers() {
        assert_eq!(SchedStrategy::pct(3).name(), "pct");
        let s = SchedStrategy::preempt_bound().build(1);
        assert!(s.wants_boundaries());
        let s = SchedStrategy::pct(3).build(1);
        assert!(!s.wants_boundaries());
    }
}
