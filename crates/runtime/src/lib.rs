//! The Chimera execution substrate: a deterministic-when-seeded,
//! virtual-time multithreaded virtual machine for MiniC IR.
//!
//! The original system modified the Linux kernel and glibc's pthreads to
//! record and replay real executions on an 8-core Xeon. This crate is that
//! substrate's laptop-scale analogue (see DESIGN.md §2): it executes IR
//! with per-thread virtual clocks, pthread-style synchronization, simulated
//! I/O with latency, and Chimera's weak-lock semantics, and exposes a
//! [`event::Supervisor`] hook that the recorder, replayer and profiler plug
//! into.
//!
//! # Quickstart
//!
//! ```
//! use chimera_minic::compile;
//! use chimera_runtime::{execute, ExecConfig};
//!
//! let p = compile(
//!     "int g; lock_t m;
//!      void w(int n) { int i; for (i = 0; i < n; i = i + 1) {
//!          lock(&m); g = g + 1; unlock(&m); } }
//!      int main() { int t; t = spawn(w, 10); w(10); join(t); print(g); return 0; }",
//! )
//! .unwrap();
//! let result = execute(&p, &ExecConfig::default());
//! assert!(result.outcome.is_exit());
//! assert_eq!(result.output_of(chimera_runtime::ThreadId(0)), vec![20]);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod event;
mod flat;
pub mod machine;
pub mod memory;
pub mod parallel;
pub mod probe;
pub mod sched;
pub mod stats;
pub mod sync;
pub mod world;

pub use cost::{CostModel, Jitter};
pub use flat::{fusion_summary, FusionSummary};
pub use parallel::{par_map, par_map_jobs, serial_requested};
pub use event::{
    Event, EventKind, EventMask, NullSupervisor, OrderPoint, Supervisor, SyncKind, ThreadId,
};
pub use machine::{
    execute, execute_mode, execute_supervised, execute_supervised_mode, ExecConfig, ExecResult,
    InterpMode, Outcome,
};
pub use probe::SingleHolderProbe;
pub use sched::{SchedStrategy, Scheduler};
pub use memory::{Memory, RegionKind};
pub use stats::{ExecStats, VmPerf};
pub use world::{IoModel, World};
