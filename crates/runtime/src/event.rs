//! Execution events and the supervisor interface that the record/replay
//! layer (and the profiler) plug into.

use chimera_minic::ir::{AccessId, FuncId, LockGranularity, WeakLockId};

/// Dense thread identifier, assigned in spawn order (main is thread 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// What kind of program synchronization an ordering event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SyncKind {
    /// Mutex acquisition.
    Mutex,
    /// Barrier epoch release.
    Barrier,
    /// Condition-variable wakeup delivery.
    Cond,
    /// Thread join completion.
    Join,
    /// Thread creation.
    Spawn,
}

/// An observable event emitted by the machine, in commit order.
#[allow(missing_docs)] // fields are documented by the variant docs
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A function activation began.
    FuncEnter {
        thread: ThreadId,
        func: FuncId,
        time: u64,
    },
    /// A function activation ended.
    FuncExit {
        thread: ThreadId,
        func: FuncId,
        time: u64,
    },
    /// A program synchronization operation committed. `addr` identifies the
    /// sync object (its cell address); `seq` is the per-object sequence
    /// number — together they encode the happens-before order the recorder
    /// logs.
    Sync {
        thread: ThreadId,
        kind: SyncKind,
        addr: i64,
        seq: u64,
        time: u64,
    },
    /// A weak-lock was acquired (`seq` orders acquisitions per lock).
    WeakAcquire {
        thread: ThreadId,
        lock: WeakLockId,
        granularity: LockGranularity,
        range: Option<(i64, i64)>,
        seq: u64,
        time: u64,
    },
    /// A weak-lock was released normally.
    WeakRelease {
        thread: ThreadId,
        lock: WeakLockId,
        time: u64,
    },
    /// The kernel forcibly preempted `holder` (at retired-instruction count
    /// `icount`) and made it release `lock` so a timed-out waiter can make
    /// progress (paper §2.3). The holder must reacquire before resuming.
    WeakForcedRelease {
        lock: WeakLockId,
        holder: ThreadId,
        icount: u64,
        /// True if the holder was parked in a blocking wait (condvar,
        /// mutex, barrier, join) when preempted. Replay needs this to
        /// disambiguate the preemption point: the same instruction count
        /// occurs both before and inside a blocking wait.
        parked: bool,
        time: u64,
    },
    /// Nondeterministic input was consumed (one `sys_read`/`sys_input`).
    Input {
        thread: ThreadId,
        chan: i64,
        data: Vec<i64>,
        time: u64,
    },
    /// Program output (print / sys_write payload).
    Output { thread: ThreadId, data: Vec<i64> },
    /// A thread was created.
    Spawned {
        parent: ThreadId,
        child: ThreadId,
        func: FuncId,
        time: u64,
    },
    /// A thread ran to completion.
    Exited { thread: ThreadId, time: u64 },
    /// A memory read committed. Only constructed when a supervisor's mask
    /// asks for it (the dynamic race detector does); never part of the
    /// collected trace, so the flat hot path and replay logs are
    /// unaffected when no detector is attached.
    Load {
        thread: ThreadId,
        /// Cell address that was read.
        addr: i64,
        /// Static provenance of the access site.
        access: AccessId,
        time: u64,
    },
    /// A memory write committed (same contract as [`Event::Load`]).
    Store {
        thread: ThreadId,
        /// Cell address that was written.
        addr: i64,
        /// Static provenance of the access site.
        access: AccessId,
        time: u64,
    },
    /// A synchronization object was *released*: mutex unlock, the mutex
    /// release inside `cond_wait`, the signaler's side of a condvar
    /// wakeup, or a barrier arrival. The dual of [`Event::Sync`] (which
    /// marks acquisitions): together they carry the happens-before edges a
    /// vector-clock detector needs. Not recorded for replay — releases are
    /// deterministic given the acquisition order.
    SyncRelease {
        thread: ThreadId,
        kind: SyncKind,
        /// The sync object's cell address.
        addr: i64,
        time: u64,
    },
    /// A thread resumed past a barrier it had been blocked on (consuming a
    /// `barrier_pass`). The matching epoch release is the single
    /// `Sync { kind: Barrier }` the last arriver emitted; this event marks
    /// the acquire side for every waiter without polluting the recorded
    /// sync order.
    BarrierResume {
        thread: ThreadId,
        /// The barrier's cell address.
        addr: i64,
        time: u64,
    },
}

/// The kind of an [`Event`] — one bit position in an [`EventMask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variants mirror the Event variants
pub enum EventKind {
    FuncEnter,
    FuncExit,
    Sync,
    WeakAcquire,
    WeakRelease,
    WeakForcedRelease,
    Input,
    Output,
    Spawned,
    Exited,
    Load,
    Store,
    SyncRelease,
    BarrierResume,
}

impl Event {
    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::FuncEnter { .. } => EventKind::FuncEnter,
            Event::FuncExit { .. } => EventKind::FuncExit,
            Event::Sync { .. } => EventKind::Sync,
            Event::WeakAcquire { .. } => EventKind::WeakAcquire,
            Event::WeakRelease { .. } => EventKind::WeakRelease,
            Event::WeakForcedRelease { .. } => EventKind::WeakForcedRelease,
            Event::Input { .. } => EventKind::Input,
            Event::Output { .. } => EventKind::Output,
            Event::Spawned { .. } => EventKind::Spawned,
            Event::Exited { .. } => EventKind::Exited,
            Event::Load { .. } => EventKind::Load,
            Event::Store { .. } => EventKind::Store,
            Event::SyncRelease { .. } => EventKind::SyncRelease,
            Event::BarrierResume { .. } => EventKind::BarrierResume,
        }
    }
}

/// A set of [`EventKind`]s a supervisor wants delivered.
///
/// The machine queries [`Supervisor::event_mask`] once per execution and
/// skips *constructing* events nobody consumes (unless `collect_trace`
/// keeps the full trace), so a supervisor that only reads sync events
/// never pays for `Vec`-carrying input/output payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventMask(u16);

impl EventMask {
    /// The empty mask: deliver nothing.
    pub const NONE: EventMask = EventMask(0);
    /// Every event kind (the default supervisor contract).
    pub const ALL: EventMask = EventMask(u16::MAX);

    /// A mask of exactly these kinds.
    pub fn of(kinds: &[EventKind]) -> EventMask {
        let mut m = EventMask::NONE;
        for k in kinds {
            m.0 |= 1 << *k as u16;
        }
        m
    }

    /// Is `kind` in the mask?
    #[inline]
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & (1 << kind as u16) != 0
    }

    /// Union of two masks.
    pub fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }
}

/// A point whose global order the replayer must be able to enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OrderPoint {
    /// Acquisition of the program mutex at this address.
    Mutex(i64),
    /// Receipt of a condition-variable wakeup on this address.
    Cond(i64),
    /// Acquisition of this weak-lock.
    Weak(WeakLockId),
    /// Creation of a thread (global spawn order; determines thread ids).
    Spawn,
    /// An output system call (`sys_write`/`print`): the kernel arbitrates
    /// the order of output syscalls, so the recorder logs and the replayer
    /// enforces it.
    Output,
    /// An input system call (`sys_read`/`sys_input`). Ordinary replay
    /// feeds inputs by per-thread sequence number and never gates here;
    /// forensic (bisecting) replay additionally pins each input's global
    /// journal position so checkpoint digests stay comparable.
    Input,
}

/// The supervisor: observes events, gates ordering points, supplies input,
/// and injects forced weak-lock releases.
///
/// The default implementations make a no-op supervisor suitable for plain
/// execution. `chimera-replay` implements recording and replaying
/// supervisors; `chimera-profile` implements an observing one.
pub trait Supervisor {
    /// Which event kinds this supervisor's [`Supervisor::on_event`] actually
    /// consumes. The machine queries this once per execution and never
    /// constructs or delivers events outside the mask (the trace collected
    /// under `collect_trace` is unaffected). The default is
    /// [`EventMask::ALL`], so existing supervisors keep seeing everything.
    fn event_mask(&self) -> EventMask {
        EventMask::ALL
    }

    /// True if this supervisor may ever answer
    /// [`Supervisor::forced_release_at`] with `Some` (the replayer does).
    /// When `false`, the machine may batch consecutive steps of one thread
    /// without polling for injected releases between them.
    fn injects_forced_releases(&self) -> bool {
        false
    }

    /// Called after every committed event in the mask, in commit order.
    fn on_event(&mut self, _ev: &Event) {}

    /// May `thread` commit the next operation at `point` now? Returning
    /// `false` stalls the thread; the machine polls again after other
    /// ordering events commit. A replayer returns `true` only when the
    /// recorded log says it is this thread's turn.
    fn may_proceed(&mut self, _point: OrderPoint, _thread: ThreadId) -> bool {
        true
    }

    /// Supply the data for a nondeterministic input request, or `None` to
    /// let the machine's simulated input source generate it. A replayer
    /// returns the recorded payload.
    fn input_override(
        &mut self,
        _thread: ThreadId,
        _chan: i64,
        _len: usize,
    ) -> Option<Vec<i64>> {
        None
    }

    /// If the recorded execution forcibly released a weak-lock held by
    /// `thread` at retired-instruction count `icount` (and with the same
    /// parked/running state), return it so the machine replays the
    /// preemption at exactly that point.
    fn forced_release_at(
        &mut self,
        _thread: ThreadId,
        _icount: u64,
        _parked: bool,
    ) -> Option<WeakLockId> {
        None
    }

    /// Emit a schedule-digest checkpoint every N replay-ordered events
    /// (0 disables checkpointing, the default). When nonzero, the machine
    /// folds every ordered event — sync commits, outputs, inputs,
    /// weak-lock acquisitions, forced releases — into a running FNV digest
    /// of schedule-determined state and calls
    /// [`Supervisor::on_checkpoint`] at each interval boundary.
    ///
    /// The digest deliberately covers only state that is a function of the
    /// replayed orders (event kind, object, thread, payload words, and at
    /// each boundary the committing thread's live registers): a
    /// full-memory hash taken mid-run would also see *other* threads'
    /// in-flight stores, which legitimately differ between a recording and
    /// a conforming replay under different jitter. Retired-instruction
    /// counts are excluded for the same reason — barrier arrival order is
    /// unordered by design and skews them.
    fn checkpoint_interval(&self) -> u64 {
        0
    }

    /// Called at each checkpoint boundary with the number of ordered
    /// events committed so far and the running schedule digest.
    fn on_checkpoint(&mut self, _events: u64, _state_hash: u64) {}

    /// When `true`, a cond signal/broadcast whose waiters are all gated
    /// off by [`Supervisor::may_proceed`] *blocks the signaler* instead of
    /// dropping the wakeup. Plain execution and per-object replay never
    /// need this (their gates always admit some waiter that is present);
    /// a globally-ordered forensic replay does, because the recorded
    /// recipient may not have reached its global turn yet and the wakeup
    /// must not be lost in the meantime.
    fn defers_cond_signals(&self) -> bool {
        false
    }
}

/// The trivial supervisor: no recording, no enforcement.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSupervisor;

impl Supervisor for NullSupervisor {
    /// Plain execution observes nothing, so the machine skips event
    /// construction entirely (unless a trace is being collected).
    fn event_mask(&self) -> EventMask {
        EventMask::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_supervisor_permits_everything() {
        let mut s = NullSupervisor;
        assert!(s.may_proceed(OrderPoint::Spawn, ThreadId(0)));
        assert!(s.input_override(ThreadId(0), 0, 4).is_none());
        assert!(s.forced_release_at(ThreadId(0), 10, false).is_none());
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(ThreadId(3).to_string(), "T3");
    }

    #[test]
    fn event_mask_membership() {
        let m = EventMask::of(&[EventKind::Sync, EventKind::Output]);
        assert!(m.contains(EventKind::Sync));
        assert!(m.contains(EventKind::Output));
        assert!(!m.contains(EventKind::Input));
        assert!(EventMask::ALL.contains(EventKind::Exited));
        assert!(!EventMask::NONE.contains(EventKind::Exited));
        let u = m.union(EventMask::of(&[EventKind::Input]));
        assert!(u.contains(EventKind::Input) && u.contains(EventKind::Sync));
    }

    #[test]
    fn event_kind_round_trip() {
        let ev = Event::Exited {
            thread: ThreadId(0),
            time: 1,
        };
        assert_eq!(ev.kind(), EventKind::Exited);
        let ev = Event::Output {
            thread: ThreadId(1),
            data: vec![3],
        };
        assert_eq!(ev.kind(), EventKind::Output);
    }

    #[test]
    fn access_event_kinds_round_trip() {
        let ev = Event::Load {
            thread: ThreadId(1),
            addr: 7,
            access: AccessId(3),
            time: 9,
        };
        assert_eq!(ev.kind(), EventKind::Load);
        let ev = Event::SyncRelease {
            thread: ThreadId(0),
            kind: SyncKind::Mutex,
            addr: 4,
            time: 2,
        };
        assert_eq!(ev.kind(), EventKind::SyncRelease);
        // ALL includes the detector-feed kinds; existing explicit masks
        // (recorder, profiler) do not, so they never see them.
        assert!(EventMask::ALL.contains(EventKind::Store));
        assert!(EventMask::ALL.contains(EventKind::BarrierResume));
        let rec = EventMask::of(&[EventKind::Sync, EventKind::Input]);
        assert!(!rec.contains(EventKind::Load));
    }

    #[test]
    fn null_supervisor_masks_everything_out() {
        let s = NullSupervisor;
        assert_eq!(s.event_mask(), EventMask::NONE);
        assert!(!s.injects_forced_releases());
    }
}
