//! The simulated outside world: nondeterministic input channels with I/O
//! latency.
//!
//! The paper's workloads read from files and network sockets. Here a
//! channel is an integer id; reads return pseudo-random data words with a
//! latency model. Channels at or above [`IoModel::net_chan_base`] behave
//! like network sockets (much higher latency) — this is what makes the
//! `aget`/`knot`/`apache` analogues I/O-bound, so their recording overhead
//! hides inside I/O wait exactly as in the paper (§7.3).

use chimera_testkit::rng::Rng;

/// Latency and data model for simulated I/O.
///
/// All-scalar and `Copy` so an [`crate::ExecConfig`] can be shared by
/// reference across parallel trials without deep-cloning per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoModel {
    /// Base cost of a file-channel read, in cycles.
    pub file_base: u64,
    /// Extra cycles per word transferred on file channels.
    pub file_per_word: u64,
    /// Channels >= this id are network channels.
    pub net_chan_base: i64,
    /// Base cost of a network read.
    pub net_base: u64,
    /// Extra cycles per word on network channels.
    pub net_per_word: u64,
    /// Max random extra latency.
    pub jitter: u64,
}

impl Default for IoModel {
    fn default() -> Self {
        IoModel {
            file_base: 300,
            file_per_word: 2,
            net_chan_base: 1000,
            net_base: 20_000,
            net_per_word: 6,
            jitter: 2_000,
        }
    }
}

/// The simulated environment: a seeded generator of input data and I/O
/// latencies.
#[derive(Debug, Clone)]
pub struct World {
    rng: Rng,
    io: IoModel,
}

impl World {
    /// Create a world with its own RNG stream (independent of the
    /// scheduler's jitter stream so input *content* is stable under
    /// scheduling changes for a given read sequence).
    pub fn new(seed: u64, io: IoModel) -> World {
        World {
            rng: Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15),
            io,
        }
    }

    /// Generate `len` input words for `chan`. Word values are small
    /// (byte-like) so logs are compressible, as real input data is.
    pub fn gen_input(&mut self, chan: i64, len: usize) -> Vec<i64> {
        let _ = chan;
        (0..len).map(|_| self.rng.gen_range(0..256)).collect()
    }

    /// Latency for a read of `len` words from `chan`.
    pub fn latency(&mut self, chan: i64, len: usize) -> u64 {
        let (base, per) = if chan >= self.io.net_chan_base {
            (self.io.net_base, self.io.net_per_word)
        } else {
            (self.io.file_base, self.io.file_per_word)
        };
        let jitter = if self.io.jitter > 0 {
            self.rng.gen_range(0..=self.io.jitter)
        } else {
            0
        };
        base + per * len as u64 + jitter
    }

    /// The model in use.
    pub fn io_model(&self) -> &IoModel {
        &self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_data() {
        let mut a = World::new(7, IoModel::default());
        let mut b = World::new(7, IoModel::default());
        assert_eq!(a.gen_input(0, 16), b.gen_input(0, 16));
        assert_eq!(a.latency(0, 16), b.latency(0, 16));
    }

    #[test]
    fn different_seed_different_data() {
        let mut a = World::new(7, IoModel::default());
        let mut b = World::new(8, IoModel::default());
        assert_ne!(a.gen_input(0, 32), b.gen_input(0, 32));
    }

    #[test]
    fn network_channels_cost_more() {
        let io = IoModel {
            jitter: 0,
            ..IoModel::default()
        };
        let mut w = World::new(1, io);
        let file = w.latency(0, 100);
        let net = w.latency(io.net_chan_base, 100);
        assert!(net > 5 * file);
    }

    #[test]
    fn input_words_are_byte_like() {
        let mut w = World::new(3, IoModel::default());
        assert!(w.gen_input(0, 64).iter().all(|&v| (0..256).contains(&v)));
    }
}
