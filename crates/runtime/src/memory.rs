//! Cell-granular memory with region tracking and bounds checking.
//!
//! Addresses are `i64` cell indices into one flat space. Every allocation
//! (global, stack frame, heap block) is a *region*; dereferencing outside a
//! live region traps. This is how the reproduction handles the paper's
//! §3.2 caveat — RELAY's pointer analysis is sound only up to the first
//! buffer overflow, so the machine refuses to run past one.

use chimera_minic::ir::{AllocSiteId, FuncId, GlobalId, Program};
use std::fmt;

/// What a region is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// A global variable.
    Global(GlobalId),
    /// A stack frame's slot area for one activation of `FuncId`.
    Frame(FuncId),
    /// A heap block from `malloc` at this site.
    Heap(AllocSiteId),
}

/// One allocated region.
#[derive(Debug, Clone)]
pub struct Region {
    /// First cell address.
    pub start: i64,
    /// Length in cells.
    pub len: i64,
    /// Classification.
    pub kind: RegionKind,
    /// False once freed (frame popped / `free` called).
    pub alive: bool,
}

/// A memory trap (the machine stops the offending thread and reports it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemTrap {
    /// Offending address.
    pub addr: i64,
    /// Description.
    pub reason: String,
}

impl fmt::Display for MemTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory trap at address {}: {}", self.addr, self.reason)
    }
}

/// `global_map` sentinel: a global region that has been `free`d.
const FREED_GLOBAL: u32 = u32::MAX - 1;
/// `global_map` sentinel: no region at this address (the reserved NULL cell).
const NO_REGION: u32 = u32::MAX;

/// The machine's memory.
#[derive(Debug, Clone)]
pub struct Memory {
    cells: Vec<i64>,
    regions: Vec<Region>,
    /// Base address of each global, indexed by `GlobalId`.
    global_base: Vec<i64>,
    /// Exact region index per address of the static global area (built once
    /// at layout; globals never move). Loops that alternate between two
    /// globals — radix's `keys[j]` / `rank[k]` histogram, say — would
    /// otherwise thrash `last_region` and binary-search on every access.
    /// [`FREED_GLOBAL`] marks a global that was `free`d (keeps the
    /// use-after-free trap exact) and [`NO_REGION`] the reserved NULL cell.
    global_map: Vec<u32>,
    /// While every address in `1..frontier` is a live global cell (the
    /// common case: globals are laid out back-to-back and almost never
    /// freed), this holds `frontier - 1` and a static-area access is one
    /// compare plus one `cells` read — not even the `global_map` load.
    /// Freeing any global drops it to 0, which routes everything through
    /// the exact map. The NULL cell at address 0 is excluded by the
    /// `addr - 1` rotation in `load`/`store`.
    dense_limit: u64,
    /// Index of the last region hit by `region_of` — accesses cluster
    /// heavily per region, so checking it first skips the binary search
    /// on the hot load/store path for dynamic (frame/heap) regions.
    /// Purely a cache: never observable.
    last_region: std::cell::Cell<usize>,
}

impl Memory {
    /// Lay out all globals at the bottom of the address space.
    pub fn new(program: &Program) -> Memory {
        let mut cells = Vec::new();
        let mut regions = Vec::new();
        let mut global_base = Vec::new();
        // Address 0 is reserved so that 0 acts like NULL.
        cells.push(0);
        for (i, g) in program.globals.iter().enumerate() {
            let start = cells.len() as i64;
            global_base.push(start);
            cells.extend_from_slice(&g.init);
            regions.push(Region {
                start,
                len: g.size as i64,
                kind: RegionKind::Global(GlobalId(i as u32)),
                alive: true,
            });
        }
        let mut global_map = vec![NO_REGION; cells.len()];
        for (i, r) in regions.iter().enumerate() {
            for a in r.start..r.start + r.len {
                global_map[a as usize] = i as u32;
            }
        }
        let dense = global_map[1..].iter().all(|&r| r != NO_REGION);
        Memory {
            dense_limit: if dense { (cells.len() - 1) as u64 } else { 0 },
            cells,
            regions,
            global_base,
            global_map,
            last_region: std::cell::Cell::new(0),
        }
    }

    /// Base address of a global.
    pub fn global_base(&self, g: GlobalId) -> i64 {
        self.global_base[g.index()]
    }

    /// All global region base addresses, indexed by `GlobalId`. Static
    /// after program load, which lets the speculative segment executor
    /// resolve global addressing without holding a `Memory` borrow.
    pub fn global_bases(&self) -> &[i64] {
        &self.global_base
    }

    /// First address past the statically laid-out globals. Every address
    /// below this is known at program-load time, which is what lets the
    /// sync tables use dense `Vec` indexing for static sync objects and
    /// spill to a map only for heap-allocated ones.
    pub fn frontier(&self) -> i64 {
        self.cells.len() as i64
    }

    /// Allocate a fresh region (bump allocation; addresses are never
    /// reused, which keeps replay address-stable).
    pub fn alloc(&mut self, len: i64, kind: RegionKind) -> i64 {
        let len = len.max(1);
        let start = self.cells.len() as i64;
        self.cells.resize(self.cells.len() + len as usize, 0);
        self.regions.push(Region {
            start,
            len,
            kind,
            alive: true,
        });
        start
    }

    /// Mark the region starting at `start` dead.
    ///
    /// Returns an error if no live region starts there (double free).
    pub fn dealloc(&mut self, start: i64) -> Result<(), MemTrap> {
        match self
            .regions
            .iter_mut()
            .find(|r| r.start == start && r.alive)
        {
            Some(r) => {
                r.alive = false;
                let (start, len) = (r.start, r.len);
                if (start as u64) < self.global_map.len() as u64 {
                    for a in start..start + len {
                        self.global_map[a as usize] = FREED_GLOBAL;
                    }
                    self.dense_limit = 0;
                }
                Ok(())
            }
            None => Err(MemTrap {
                addr: start,
                reason: "free of a non-allocated or already-freed address".into(),
            }),
        }
    }

    #[inline]
    fn region_of(&self, addr: i64) -> Option<&Region> {
        let hint = self.last_region.get();
        if let Some(r) = self.regions.get(hint) {
            if addr >= r.start && addr < r.start + r.len {
                return Some(r);
            }
        }
        // Regions are sorted by start (bump allocation): binary search.
        let idx = self
            .regions
            .partition_point(|r| r.start <= addr)
            .checked_sub(1)?;
        let r = &self.regions[idx];
        if addr < r.start + r.len {
            self.last_region.set(idx);
            Some(r)
        } else {
            None
        }
    }

    /// Read one cell with bounds checking.
    #[inline]
    pub fn load(&self, addr: i64) -> Result<i64, MemTrap> {
        // Fully-live static area: one compare, one read. The `addr - 1`
        // rotation sends the NULL cell (and negatives) past the limit.
        if (addr as u64).wrapping_sub(1) < self.dense_limit {
            return Ok(self.cells[addr as usize]);
        }
        // Static global area with holes (a global was freed): the map
        // encodes liveness directly, so this path is still one compare and
        // one load — no `Region` deref at all. The `u64` cast folds
        // negative addresses into the dynamic-region path.
        if (addr as u64) < self.global_map.len() as u64 {
            if self.global_map[addr as usize] < FREED_GLOBAL {
                return Ok(self.cells[addr as usize]);
            }
            return Err(MemTrap {
                addr,
                reason: if self.global_map[addr as usize] == FREED_GLOBAL {
                    "use after free".into()
                } else {
                    "load outside any allocated region".into()
                },
            });
        }
        match self.region_of(addr) {
            Some(r) if r.alive => Ok(self.cells[addr as usize]),
            Some(_) => Err(MemTrap {
                addr,
                reason: "use after free".into(),
            }),
            None => Err(MemTrap {
                addr,
                reason: "load outside any allocated region".into(),
            }),
        }
    }

    /// Write one cell with bounds checking.
    #[inline]
    pub fn store(&mut self, addr: i64, val: i64) -> Result<(), MemTrap> {
        if (addr as u64).wrapping_sub(1) < self.dense_limit {
            self.cells[addr as usize] = val;
            return Ok(());
        }
        if (addr as u64) < self.global_map.len() as u64 {
            if self.global_map[addr as usize] < FREED_GLOBAL {
                self.cells[addr as usize] = val;
                return Ok(());
            }
            return Err(MemTrap {
                addr,
                reason: if self.global_map[addr as usize] == FREED_GLOBAL {
                    "store after free".into()
                } else {
                    "store outside any allocated region".into()
                },
            });
        }
        match self.region_of(addr) {
            Some(r) if r.alive => {
                self.cells[addr as usize] = val;
                Ok(())
            }
            Some(_) => Err(MemTrap {
                addr,
                reason: "store after free".into(),
            }),
            None => Err(MemTrap {
                addr,
                reason: "store outside any allocated region".into(),
            }),
        }
    }

    /// Write one cell and return its previous value — the speculative
    /// segment engine's store, so one bounds check yields both the write
    /// and the undo-log entry (see `machine.rs`'s round engine).
    #[inline]
    pub fn swap(&mut self, addr: i64, val: i64) -> Result<i64, MemTrap> {
        if (addr as u64).wrapping_sub(1) < self.dense_limit {
            return Ok(std::mem::replace(&mut self.cells[addr as usize], val));
        }
        if (addr as u64) < self.global_map.len() as u64 {
            if self.global_map[addr as usize] < FREED_GLOBAL {
                return Ok(std::mem::replace(&mut self.cells[addr as usize], val));
            }
            return Err(MemTrap {
                addr,
                reason: if self.global_map[addr as usize] == FREED_GLOBAL {
                    "store after free".into()
                } else {
                    "store outside any allocated region".into()
                },
            });
        }
        match self.region_of(addr) {
            Some(r) if r.alive => Ok(std::mem::replace(&mut self.cells[addr as usize], val)),
            Some(_) => Err(MemTrap {
                addr,
                reason: "store after free".into(),
            }),
            None => Err(MemTrap {
                addr,
                reason: "store outside any allocated region".into(),
            }),
        }
    }

    /// Raw cell write for the round engine's rollback and commit paths:
    /// `addr` was validated live earlier in the same round, and regions
    /// cannot have moved since (allocation is a scheduling point).
    #[inline]
    pub fn write_raw(&mut self, addr: i64, val: i64) {
        self.cells[addr as usize] = val;
    }

    /// A `Sync` read-only view for parallel segment evaluation: the same
    /// address classification as [`Memory::load`]/[`Memory::store`], minus
    /// the `last_region` cache (a `Cell`, which is what makes `&Memory`
    /// itself `!Sync`). Regions cannot move while the view is borrowed.
    pub fn snapshot(&self) -> MemSnap<'_> {
        MemSnap {
            cells: &self.cells,
            regions: &self.regions,
            global_map: &self.global_map,
            dense_limit: self.dense_limit,
        }
    }

    /// Hash of all live cells — used by the determinism verifier to compare
    /// final states.
    pub fn state_hash(&self) -> u64 {
        // FNV-1a over live regions.
        let mut h: u64 = 0xcbf29ce484222325;
        for r in &self.regions {
            if !r.alive {
                continue;
            }
            for a in r.start..r.start + r.len {
                let v = self.cells[a as usize] as u64;
                h ^= v;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// Snapshot of the live cells of all globals, for test assertions.
    pub fn globals_snapshot(&self) -> Vec<i64> {
        let mut out = Vec::new();
        for r in &self.regions {
            if let RegionKind::Global(_) = r.kind {
                out.extend_from_slice(
                    &self.cells[r.start as usize..(r.start + r.len) as usize],
                );
            }
        }
        out
    }

    /// Total number of live regions (diagnostics).
    pub fn live_regions(&self) -> usize {
        self.regions.iter().filter(|r| r.alive).count()
    }
}

/// A borrowed, `Sync`, read-only view of [`Memory`] for parallel segment
/// evaluation (see [`Memory::snapshot`]). Loads classify addresses exactly
/// like [`Memory::load`] — same fast paths, same trap messages — but do a
/// plain binary search instead of going through the `last_region` cache,
/// so many OS threads can read one frozen memory concurrently.
#[derive(Clone, Copy)]
pub struct MemSnap<'a> {
    cells: &'a [i64],
    regions: &'a [Region],
    global_map: &'a [u32],
    dense_limit: u64,
}

impl MemSnap<'_> {
    #[inline]
    fn region_of(&self, addr: i64) -> Option<&Region> {
        let idx = self
            .regions
            .partition_point(|r| r.start <= addr)
            .checked_sub(1)?;
        let r = &self.regions[idx];
        (addr < r.start + r.len).then_some(r)
    }

    /// Read one cell with bounds checking ([`Memory::load`] semantics).
    #[inline]
    pub fn load(&self, addr: i64) -> Result<i64, MemTrap> {
        if (addr as u64).wrapping_sub(1) < self.dense_limit {
            return Ok(self.cells[addr as usize]);
        }
        if (addr as u64) < self.global_map.len() as u64 {
            if self.global_map[addr as usize] < FREED_GLOBAL {
                return Ok(self.cells[addr as usize]);
            }
            return Err(MemTrap {
                addr,
                reason: if self.global_map[addr as usize] == FREED_GLOBAL {
                    "use after free".into()
                } else {
                    "load outside any allocated region".into()
                },
            });
        }
        match self.region_of(addr) {
            Some(r) if r.alive => Ok(self.cells[addr as usize]),
            Some(_) => Err(MemTrap {
                addr,
                reason: "use after free".into(),
            }),
            None => Err(MemTrap {
                addr,
                reason: "load outside any allocated region".into(),
            }),
        }
    }

    /// Would [`Memory::store`] at `addr` succeed? Same classification and
    /// trap messages; the write itself goes to the caller's overlay.
    #[inline]
    pub fn check_writable(&self, addr: i64) -> Result<(), MemTrap> {
        if (addr as u64).wrapping_sub(1) < self.dense_limit {
            return Ok(());
        }
        if (addr as u64) < self.global_map.len() as u64 {
            if self.global_map[addr as usize] < FREED_GLOBAL {
                return Ok(());
            }
            return Err(MemTrap {
                addr,
                reason: if self.global_map[addr as usize] == FREED_GLOBAL {
                    "store after free".into()
                } else {
                    "store outside any allocated region".into()
                },
            });
        }
        match self.region_of(addr) {
            Some(r) if r.alive => Ok(()),
            Some(_) => Err(MemTrap {
                addr,
                reason: "store after free".into(),
            }),
            None => Err(MemTrap {
                addr,
                reason: "store outside any allocated region".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    fn mem() -> Memory {
        let p = compile("int a; int b[3]; int main() { return 0; }").unwrap();
        Memory::new(&p)
    }

    #[test]
    fn globals_laid_out_with_null_guard() {
        let m = mem();
        assert_eq!(m.global_base(GlobalId(0)), 1);
        assert_eq!(m.global_base(GlobalId(1)), 2);
        assert!(m.load(0).is_err(), "address 0 must trap like NULL");
    }

    #[test]
    fn load_store_round_trip() {
        let mut m = mem();
        m.store(2, 42).unwrap();
        assert_eq!(m.load(2).unwrap(), 42);
    }

    #[test]
    fn out_of_bounds_traps() {
        let m = mem();
        assert!(m.load(1000).is_err());
        assert!(m.load(-1).is_err());
    }

    #[test]
    fn buffer_overflow_between_regions_traps() {
        // b has 3 cells at addresses 2..5; address 5 is past the end.
        let mut m = mem();
        assert!(m.store(5, 1).is_err());
    }

    #[test]
    fn heap_alloc_and_free() {
        let mut m = mem();
        let a = m.alloc(4, RegionKind::Heap(AllocSiteId(0)));
        m.store(a + 3, 9).unwrap();
        assert_eq!(m.load(a + 3).unwrap(), 9);
        m.dealloc(a).unwrap();
        assert!(m.load(a).is_err(), "use after free must trap");
        assert!(m.dealloc(a).is_err(), "double free must trap");
    }

    #[test]
    fn global_initializers_visible() {
        let p = compile("int g = 7; int main() { return 0; }").unwrap();
        let m = Memory::new(&p);
        assert_eq!(m.load(m.global_base(GlobalId(0))).unwrap(), 7);
    }

    #[test]
    fn state_hash_changes_with_content() {
        let mut m = mem();
        let h0 = m.state_hash();
        m.store(1, 5).unwrap();
        assert_ne!(h0, m.state_hash());
    }

    mod proptests {
        use super::*;
        use chimera_testkit::prop::{self, Gen};
        use chimera_testkit::{prop_assert, prop_assert_eq};
        use std::collections::HashMap;

        #[derive(Debug, Clone)]
        enum Op {
            Alloc(u8),
            Free(u8),
            Store(u8, i64, i64),
            Load(u8, i64),
        }

        fn op_gen() -> Gen<Op> {
            prop::one_of(vec![
                prop::ranged(1u8..16).map(Op::Alloc),
                prop::any_u8().map(Op::Free),
                Gen::new(|s| {
                    Op::Store(s.int(0u8..=255), s.int(-4i64..20), s.raw_u64() as i64)
                }),
                Gen::new(|s| Op::Load(s.int(0u8..=255), s.int(-4i64..20))),
            ])
        }

        /// The bounds-checked memory agrees with a simple reference
        /// model (a map from live region to its cells) on every
        /// outcome: loads/stores succeed with matching values exactly
        /// when the reference says the access is in a live region.
        #[test]
        fn memory_matches_reference_model() {
            let gen = prop::vec_of(op_gen(), 1..60);
            prop::check("memory_matches_reference_model", &gen, |ops| {
                let ops = ops.clone();
                let program = chimera_minic::compile("int main() { return 0; }").unwrap();
                let mut mem = Memory::new(&program);
                // reference: region index -> (base, len, live, cells)
                let mut regions: Vec<(i64, i64, bool, Vec<i64>)> = Vec::new();
                let mut model: HashMap<i64, i64> = HashMap::new();
                for op in ops {
                    match op {
                        Op::Alloc(len) => {
                            let base = mem.alloc(len as i64, RegionKind::Heap(
                                chimera_minic::ir::AllocSiteId(0),
                            ));
                            regions.push((base, len as i64, true, vec![0; len as usize]));
                            for a in base..base + len as i64 {
                                model.insert(a, 0);
                            }
                        }
                        Op::Free(which) => {
                            let n = regions.len();
                            if n == 0 { continue; }
                            let idx = (which as usize) % n;
                            let (base, len, live, _) = regions[idx].clone();
                            let r = mem.dealloc(base);
                            prop_assert_eq!(r.is_ok(), live, "double free detection");
                            if live {
                                regions[idx].2 = false;
                                for a in base..base + len {
                                    model.remove(&a);
                                }
                            }
                        }
                        Op::Store(which, off, v) => {
                            let n = regions.len();
                            if n == 0 { continue; }
                            let idx = (which as usize) % n;
                            let addr = regions[idx].0 + off;
                            let expected_ok = model.contains_key(&addr);
                            let r = mem.store(addr, v);
                            prop_assert_eq!(r.is_ok(), expected_ok, "store at {}", addr);
                            if expected_ok {
                                model.insert(addr, v);
                            }
                        }
                        Op::Load(which, off) => {
                            let n = regions.len();
                            if n == 0 { continue; }
                            let idx = (which as usize) % n;
                            let addr = regions[idx].0 + off;
                            match model.get(&addr) {
                                Some(v) => prop_assert_eq!(mem.load(addr).ok(), Some(*v)),
                                None => prop_assert!(mem.load(addr).is_err()),
                            }
                        }
                    }
                }
                Ok(())
            });
        }
    }

    #[test]
    fn dead_regions_excluded_from_hash() {
        let mut m = mem();
        let a = m.alloc(2, RegionKind::Heap(AllocSiteId(0)));
        m.store(a, 123).unwrap();
        m.dealloc(a).unwrap();
        let mut m2 = mem();
        let a2 = m2.alloc(2, RegionKind::Heap(AllocSiteId(0)));
        m2.store(a2, 456).unwrap();
        m2.dealloc(a2).unwrap();
        assert_eq!(m.state_hash(), m2.state_hash());
    }
}
