//! Execution statistics — the raw numbers behind Table 2 and Figures 5–8.

use chimera_minic::ir::LockGranularity;
use std::collections::BTreeMap;

/// Counters and timing accumulated over one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired (all kinds).
    pub instrs: u64,
    /// Dynamic memory operations (loads + stores).
    pub mem_ops: u64,
    /// Program synchronization operations committed (lock/unlock, barrier
    /// releases, cond wakeups, spawns, joins).
    pub sync_ops: u64,
    /// System calls executed (`sys_read` / `sys_input` / `sys_write`).
    pub syscalls: u64,
    /// Input words consumed.
    pub input_words: u64,
    /// Weak-lock acquisitions by granularity.
    pub weak_acquires: BTreeMap<LockGranularity, u64>,
    /// Cycles spent blocked waiting on weak-locks, by granularity
    /// (contention cost, Fig. 7).
    pub weak_wait: BTreeMap<LockGranularity, u64>,
    /// Cycles spent on weak-lock log writes, by granularity (logging cost,
    /// Fig. 7).
    pub weak_log_cycles: BTreeMap<LockGranularity, u64>,
    /// Cycles spent blocked on program synchronization.
    pub sync_wait: u64,
    /// Cycles spent waiting for I/O.
    pub io_wait: u64,
    /// Forced weak-lock releases (timeouts), paper §2.3.
    pub forced_releases: u64,
    /// Threads created (including main).
    pub threads: u64,
    /// Scheduling perturbations injected by a non-baseline
    /// [`crate::sched::SchedStrategy`] (PCT priority changes, forced
    /// preemptions); 0 under the clock-ordered baseline.
    pub sched_preemptions: u64,
    /// Execution-strategy observability counters (superinstruction fusion,
    /// batch commit, parallel segments). Excluded from equality — see
    /// [`VmPerf`].
    pub vm: VmPerf,
}

/// How the flat VM executed, mechanically: superinstructions dispatched,
/// batch-commit run shapes, parallel segments committed.
///
/// These counters describe the *execution strategy*, not the program:
/// reference mode, single-step flat, batched flat, and parallel flat all
/// retire the identical instruction stream but count differently here. The
/// byte-identity contract (`tests/vm_differential.rs`) compares whole
/// [`ExecStats`] values across modes, so `VmPerf`'s `PartialEq` is
/// intentionally always-true: strategy observability must never make two
/// semantically identical executions compare unequal.
#[derive(Debug, Clone, Copy, Default)]
pub struct VmPerf {
    /// Fused superinstructions dispatched (each covers two retired ops).
    pub fused_ops: u64,
    /// Hot batch runs entered (one per uninterrupted same-thread run
    /// inside the exact batch loop).
    pub batch_runs: u64,
    /// Ops retired inside exact batch runs (`batched_ops / batch_runs` is
    /// the mean commit-run length).
    pub batched_ops: u64,
    /// Speculative segment rounds committed (each runs every ready thread
    /// ahead to its next scheduling point and certifies the segments
    /// pairwise race-free before keeping them).
    pub spec_rounds: u64,
    /// Certified race-free segments committed from speculative rounds.
    pub spec_segments: u64,
    /// Ops retired inside committed speculative segments.
    pub spec_ops: u64,
    /// Speculative rounds discarded (overlapping read/write sets or a
    /// speculative trap) and rolled back to exact execution.
    pub spec_discards: u64,
    /// Committed rounds whose segments were evaluated on OS worker
    /// threads (`ExecConfig::parallelism > 1`) rather than in-line.
    pub par_rounds: u64,
}

impl PartialEq for VmPerf {
    /// Always equal: see the type-level comment.
    fn eq(&self, _: &VmPerf) -> bool {
        true
    }
}

impl Eq for VmPerf {}

impl ExecStats {
    /// Total weak-lock acquisitions across granularities.
    pub fn total_weak_acquires(&self) -> u64 {
        self.weak_acquires.values().sum()
    }

    /// Weak-lock operations as a fraction of dynamic memory operations
    /// (Fig. 6's y-axis).
    pub fn weak_op_fraction(&self) -> f64 {
        if self.mem_ops == 0 {
            return 0.0;
        }
        self.total_weak_acquires() as f64 / self.mem_ops as f64
    }

    /// Bump a per-granularity counter.
    pub fn bump(map: &mut BTreeMap<LockGranularity, u64>, g: LockGranularity, by: u64) {
        *map.entry(g).or_insert(0) += by;
    }

    /// Retired instructions per wall-clock second for a run that took
    /// `elapsed` — the `interp_scaling` bench's throughput metric.
    pub fn instrs_per_sec(&self, elapsed: std::time::Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.instrs as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_fraction_handles_zero() {
        let s = ExecStats::default();
        assert_eq!(s.weak_op_fraction(), 0.0);
    }

    #[test]
    fn totals_sum_across_granularities() {
        let mut s = ExecStats::default();
        ExecStats::bump(&mut s.weak_acquires, LockGranularity::Loop, 3);
        ExecStats::bump(&mut s.weak_acquires, LockGranularity::Function, 4);
        s.mem_ops = 70;
        assert_eq!(s.total_weak_acquires(), 7);
        assert!((s.weak_op_fraction() - 0.1).abs() < 1e-12);
    }
}
