//! A supervisor probe asserting the weak-lock single-holder invariant.
//!
//! Chimera's replay correctness (paper §2.3) rests on weak-locks never
//! having two *conflicting* holders at once — conflicting meaning the
//! same lock with overlapping (or unranged) guard ranges. The machine is
//! supposed to preserve this through every acquire, release, timeout and
//! forced hand-off; [`SingleHolderProbe`] re-derives the holder set
//! purely from the event stream and records a violation whenever an
//! acquisition lands while a conflicting holder is live. The
//! schedule-exploration harness attaches it under adversarial
//! [`crate::sched::SchedStrategy`] schedules, where hand-off races would
//! surface if the invariant ever broke.

use crate::event::{Event, EventKind, EventMask, Supervisor, ThreadId};
use crate::sync::ranges_conflict;
use chimera_minic::ir::WeakLockId;

/// One live holder: `(lock, thread, guard range)`.
type Holder = (WeakLockId, ThreadId, Option<(i64, i64)>);

/// Tracks weak-lock holders from `WeakAcquire`/`WeakRelease`/
/// `WeakForcedRelease` events and collects invariant violations.
///
/// Tolerates the protocol's benign shapes: a thread may hold one lock
/// several times transiently (nested ranges, LIFO release), and a normal
/// release by a thread that was already forcibly preempted is a no-op.
#[derive(Debug, Default)]
pub struct SingleHolderProbe {
    /// Live holders in acquisition order.
    holders: Vec<Holder>,
    /// Human-readable description of each observed violation.
    pub violations: Vec<String>,
    /// Total effective acquisitions observed.
    pub acquires: u64,
    /// Total forced releases observed.
    pub forced: u64,
}

impl SingleHolderProbe {
    /// No violations observed so far.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

impl Supervisor for SingleHolderProbe {
    fn event_mask(&self) -> EventMask {
        EventMask::of(&[
            EventKind::WeakAcquire,
            EventKind::WeakRelease,
            EventKind::WeakForcedRelease,
        ])
    }

    fn on_event(&mut self, ev: &Event) {
        match *ev {
            Event::WeakAcquire {
                thread,
                lock,
                range,
                seq,
                ..
            } => {
                self.acquires += 1;
                for &(l, t, r) in &self.holders {
                    if l == lock && t != thread && ranges_conflict(r, range) {
                        self.violations.push(format!(
                            "weak-lock {lock:?} acquired by {thread} (range {range:?}, \
                             seq {seq}) while conflicting holder {t} (range {r:?}) is live"
                        ));
                    }
                }
                self.holders.push((lock, thread, range));
            }
            Event::WeakRelease { thread, lock, .. } => {
                // LIFO removal of that thread's entry; a release after a
                // forced preemption finds nothing and is benign.
                if let Some(pos) = self
                    .holders
                    .iter()
                    .rposition(|&(l, t, _)| l == lock && t == thread)
                {
                    self.holders.remove(pos);
                }
            }
            Event::WeakForcedRelease { lock, holder, .. } => {
                self.forced += 1;
                if let Some(pos) = self
                    .holders
                    .iter()
                    .rposition(|&(l, t, _)| l == lock && t == holder)
                {
                    self.holders.remove(pos);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acq(t: u32, lock: u32, range: Option<(i64, i64)>) -> Event {
        Event::WeakAcquire {
            thread: ThreadId(t),
            lock: WeakLockId(lock),
            granularity: chimera_minic::ir::LockGranularity::Function,
            range,
            seq: 0,
            time: 0,
        }
    }

    fn rel(t: u32, lock: u32) -> Event {
        Event::WeakRelease {
            thread: ThreadId(t),
            lock: WeakLockId(lock),
            time: 0,
        }
    }

    #[test]
    fn clean_protocol_has_no_violations() {
        let mut p = SingleHolderProbe::default();
        p.on_event(&acq(0, 0, None));
        p.on_event(&rel(0, 0));
        p.on_event(&acq(1, 0, None));
        p.on_event(&rel(1, 0));
        assert!(p.holds());
        assert_eq!(p.acquires, 2);
    }

    #[test]
    fn conflicting_double_hold_is_a_violation() {
        let mut p = SingleHolderProbe::default();
        p.on_event(&acq(0, 0, None));
        p.on_event(&acq(1, 0, None));
        assert!(!p.holds());
        assert!(p.violations[0].contains("conflicting holder"));
    }

    #[test]
    fn disjoint_ranges_and_distinct_locks_coexist() {
        let mut p = SingleHolderProbe::default();
        p.on_event(&acq(0, 0, Some((0, 9))));
        p.on_event(&acq(1, 0, Some((10, 19))));
        p.on_event(&acq(2, 1, None));
        assert!(p.holds(), "{:?}", p.violations);
    }

    #[test]
    fn forced_release_clears_the_holder() {
        let mut p = SingleHolderProbe::default();
        p.on_event(&acq(0, 0, None));
        p.on_event(&Event::WeakForcedRelease {
            lock: WeakLockId(0),
            holder: ThreadId(0),
            icount: 5,
            parked: true,
            time: 0,
        });
        p.on_event(&acq(1, 0, None));
        assert!(p.holds(), "{:?}", p.violations);
        assert_eq!(p.forced, 1);
        // The preempted thread's own later release is benign.
        p.on_event(&rel(0, 0));
        p.on_event(&rel(1, 0));
        assert!(p.holds());
    }

    #[test]
    fn mask_covers_only_weak_events() {
        let p = SingleHolderProbe::default();
        let m = p.event_mask();
        assert!(m.contains(EventKind::WeakAcquire));
        assert!(m.contains(EventKind::WeakForcedRelease));
        assert!(!m.contains(EventKind::Sync));
        assert!(!m.contains(EventKind::Load));
    }
}
