//! The virtual-time cost model.
//!
//! The original Chimera measured wall-clock overhead on an 8-core Xeon. Our
//! substrate is a virtual machine, so "time" is virtual cycles: every
//! instruction, synchronization operation, log write, and I/O wait advances
//! a thread's clock by a configurable amount. Overheads are then ratios of
//! *makespans* (maximum thread clock at exit), which reproduces the paper's
//! numbers in shape: costs of instrumentation scale with dynamic counts, and
//! lost parallelism shows up as contention wait.

/// Virtual-cycle costs for each event class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Plain ALU / control instruction.
    pub instr: u64,
    /// Memory access (load/store), on top of `instr`.
    pub mem: u64,
    /// Program synchronization operation (lock, unlock, barrier, cond).
    pub sync_op: u64,
    /// Executing one weak-lock acquire or release (the instrumentation
    /// itself, excluding logging).
    pub weak_op: u64,
    /// Evaluating a loop-lock's address-range bounds at runtime.
    pub range_check: u64,
    /// Appending one record to a log (recording mode only).
    pub log_write: u64,
    /// Reading one record from a log (replay mode only).
    pub log_read: u64,
    /// Function call / return bookkeeping.
    pub call: u64,
    /// Creating a thread.
    pub spawn: u64,
    /// Base cost of a system call, excluding I/O latency.
    pub syscall: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            instr: 1,
            mem: 1,
            sync_op: 40,
            weak_op: 30,
            range_check: 8,
            log_write: 60,
            log_read: 6,
            call: 4,
            spawn: 400,
            syscall: 60,
        }
    }
}

/// Random timing jitter, the source of scheduling nondeterminism between
/// runs with different seeds (standing in for cache misses, interrupts, and
/// preemptions on real hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jitter {
    /// Apply jitter to roughly one in `period` instructions (0 disables).
    pub period: u64,
    /// Maximum extra cycles added when jitter fires.
    pub magnitude: u64,
}

impl Default for Jitter {
    fn default() -> Self {
        Jitter {
            period: 64,
            magnitude: 48,
        }
    }
}

impl Jitter {
    /// Jitter disabled entirely.
    pub fn none() -> Jitter {
        Jitter {
            period: 0,
            magnitude: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.instr >= 1);
        assert!(c.sync_op > c.instr);
        assert!(c.log_write > 0);
    }

    #[test]
    fn jitter_none_disables() {
        assert_eq!(Jitter::none().period, 0);
    }
}
