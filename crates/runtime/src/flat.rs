//! Pre-decoded execution representation: the flattened form of a
//! [`Program`] the interpreter's hot loop runs on.
//!
//! Decoding happens once per `Machine` (per run), not once per executed
//! instruction: every basic block's instructions and its terminator are
//! flattened into one contiguous per-function code array of [`FlatOp`]s, so
//! a frame position is a dense `(func, pc)` pair, stepping is a single
//! indexed copy of a `Copy` op (no `Instr`/`Terminator` clones, no
//! per-step block lookups), and `advance` is `pc += 1` — falling off a
//! block's last instruction lands exactly on its flattened terminator.
//!
//! Static operands are pre-resolved at decode time:
//! - jump/branch targets become program counters (block ids are kept
//!   alongside for basic-block execution counting),
//! - `AddrOfLocal` becomes a frame-slot *offset* (taking the address of a
//!   register local is detected at decode time and becomes a trapping op
//!   that reproduces the interpreter's original diagnostic),
//! - call/spawn argument lists are interned into one shared operand pool
//!   ([`ArgRange`]), which is what keeps `FlatOp` itself `Copy`,
//! - each op's cost-model class is resolvable to a static commit cost
//!   ([`static_costs`]) wherever it does not depend on runtime values.
//!
//! The machine keeps the original block-structured stepping path alive as a
//! reference mode; [`FlatFunc::locate`] maps a flat `pc` back to the
//! `(block, ip)` the reference path executes, so both paths share one frame
//! representation and stay byte-for-byte comparable.

use crate::cost::CostModel;
use chimera_minic::ast::{BinOp, UnOp};
use chimera_minic::ir::{
    AccessId, AllocSiteId, BlockId, Callee, FuncId, GlobalId, Instr, LocalId, LockGranularity,
    Operand, Program, Storage, Terminator, WeakLockId,
};

/// A range into [`FlatProgram::args`]: the interned argument operands of
/// one call or spawn site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgRange {
    /// First operand index in the pool.
    pub start: u32,
    /// Number of operands.
    pub len: u32,
}

impl ArgRange {
    /// The pool slice range.
    #[inline]
    pub fn as_range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// One pre-decoded instruction. Unlike [`Instr`], every variant is `Copy`:
/// the hot loop copies the op out of the code array and never clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // fields mirror `Instr`/`Terminator`
pub enum FlatOp {
    Copy { dst: LocalId, src: Operand },
    UnOp { dst: LocalId, op: UnOp, src: Operand },
    BinOp { dst: LocalId, op: BinOp, a: Operand, b: Operand },
    AddrOfGlobal { dst: LocalId, global: GlobalId, offset: Operand },
    /// `AddrOfLocal` with the frame-slot offset pre-resolved.
    AddrOfSlot { dst: LocalId, slot_off: i64, offset: Operand },
    /// `AddrOfLocal` of a register local — a lowering bug, detected at
    /// decode time; executing it traps with the original diagnostic.
    AddrOfRegister { local: LocalId },
    AddrOfFunc { dst: LocalId, func: FuncId },
    PtrAdd { dst: LocalId, base: Operand, offset: Operand },
    Load { dst: LocalId, addr: Operand, access: AccessId },
    Store { addr: Operand, val: Operand, access: AccessId },
    CallDirect { dst: Option<LocalId>, func: FuncId, args: ArgRange },
    CallIndirect { dst: Option<LocalId>, target: Operand, args: ArgRange },
    Lock { addr: Operand },
    Unlock { addr: Operand },
    BarrierInit { addr: Operand, count: Operand },
    BarrierWait { addr: Operand },
    CondWait { cond: Operand, lock: Operand },
    CondSignal { cond: Operand },
    CondBroadcast { cond: Operand },
    SpawnDirect { dst: Option<LocalId>, func: FuncId, args: ArgRange },
    SpawnIndirect { dst: Option<LocalId>, target: Operand, args: ArgRange },
    Join { tid: Operand },
    Malloc { dst: LocalId, size: Operand, site: AllocSiteId },
    Free { addr: Operand },
    SysRead { dst: Option<LocalId>, chan: Operand, buf: Operand, len: Operand },
    SysWrite { chan: Operand, buf: Operand, len: Operand },
    SysInput { dst: LocalId, chan: Operand },
    Print { val: Operand },
    WeakAcquire {
        lock: WeakLockId,
        granularity: LockGranularity,
        range: Option<(Operand, Operand)>,
    },
    WeakRelease { lock: WeakLockId },
    /// Flattened `Terminator::Jump` with the target pre-resolved to a pc.
    Jump { target_pc: u32, target_block: BlockId },
    /// Flattened `Terminator::Branch` with both targets pre-resolved.
    Branch {
        cond: Operand,
        then_pc: u32,
        then_block: BlockId,
        else_pc: u32,
        else_block: BlockId,
    },
    /// Flattened `Terminator::Return`.
    Return { val: Option<Operand> },

    // ---- fused superinstructions ----
    //
    // Built by the post-decode peephole pass ([`fuse_func`]) into the
    // per-function `fused` sidecar arena; they never appear in `code`, so
    // the reference interpreter and the single-step flat path are
    // untouched. Each fused op covers the two plain ops at `[pc, pc+2)`
    // and executes both constituents' exact semantics in one dispatch —
    // including the intermediate register write (checkpoint digests fold
    // top-frame registers, and later code may read it) and one commit per
    // constituent, so clocks, jitter draws, and step counts are
    // bit-identical to unfused stepping. The executor re-checks the
    // scheduling bound between the two commits; a mid-pair yield leaves
    // the thread at `pc + 1`, where the sidecar holds the plain second op.
    //
    // Target blocks are dropped from the fused branch form (they are
    // recoverable as `pc_block[target_pc]`), keeping `FlatOp` compact.
    /// `AddrOfGlobal` + `Load` through the just-computed address.
    FusedGlobalLoad { addr_dst: LocalId, global: GlobalId, offset: Operand, dst: LocalId },
    /// `AddrOfGlobal` + `Store` through the just-computed address.
    FusedGlobalStore { addr_dst: LocalId, global: GlobalId, offset: Operand, val: Operand },
    /// `AddrOfSlot` + `Load` through the just-computed address.
    FusedSlotLoad { addr_dst: LocalId, slot_off: i64, offset: Operand, dst: LocalId },
    /// `AddrOfSlot` + `Store` through the just-computed address.
    FusedSlotStore { addr_dst: LocalId, slot_off: i64, offset: Operand, val: Operand },
    /// `PtrAdd` + `Load` through the just-computed address.
    FusedPtrLoad { addr_dst: LocalId, base: Operand, offset: Operand, dst: LocalId },
    /// `PtrAdd` + `Store` through the just-computed address.
    FusedPtrStore { addr_dst: LocalId, base: Operand, offset: Operand, val: Operand },
    /// `BinOp` (almost always a comparison — the loop-header shape) +
    /// `Branch` on its result.
    FusedCmpBranch {
        dst: LocalId,
        op: BinOp,
        a: Operand,
        b: Operand,
        then_pc: u32,
        else_pc: u32,
    },
    /// `BinOp` + `Copy` of its result (the `i = i + 1` increment shape).
    FusedOpAssign { tmp: LocalId, op: BinOp, a: Operand, b: Operand, dst: LocalId },
}

/// Coarse opcode class used as the key of the decode-time pair-frequency
/// table that drives the fusion pass (see [`FusionTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)] // names mirror the `FlatOp` families
pub enum OpClass {
    Copy,
    UnOp,
    BinOp,
    AddrOfGlobal,
    AddrOfSlot,
    AddrOfFunc,
    PtrAdd,
    Load,
    Store,
    Call,
    Sync,
    Heap,
    Io,
    Weak,
    Jump,
    Branch,
    Return,
    Other,
    Fused,
}

impl OpClass {
    /// Stable lowercase name (used in reports and the fusion-table JSON).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Copy => "copy",
            OpClass::UnOp => "unop",
            OpClass::BinOp => "binop",
            OpClass::AddrOfGlobal => "addr_global",
            OpClass::AddrOfSlot => "addr_slot",
            OpClass::AddrOfFunc => "addr_func",
            OpClass::PtrAdd => "ptr_add",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Call => "call",
            OpClass::Sync => "sync",
            OpClass::Heap => "heap",
            OpClass::Io => "io",
            OpClass::Weak => "weak",
            OpClass::Jump => "jump",
            OpClass::Branch => "branch",
            OpClass::Return => "return",
            OpClass::Other => "other",
            OpClass::Fused => "fused",
        }
    }
}

/// Classify one op for the pair-frequency table.
pub fn op_class(op: &FlatOp) -> OpClass {
    match op {
        FlatOp::Copy { .. } => OpClass::Copy,
        FlatOp::UnOp { .. } => OpClass::UnOp,
        FlatOp::BinOp { .. } => OpClass::BinOp,
        FlatOp::AddrOfGlobal { .. } => OpClass::AddrOfGlobal,
        FlatOp::AddrOfSlot { .. } => OpClass::AddrOfSlot,
        FlatOp::AddrOfFunc { .. } => OpClass::AddrOfFunc,
        FlatOp::PtrAdd { .. } => OpClass::PtrAdd,
        FlatOp::Load { .. } => OpClass::Load,
        FlatOp::Store { .. } => OpClass::Store,
        FlatOp::CallDirect { .. } | FlatOp::CallIndirect { .. } => OpClass::Call,
        FlatOp::Lock { .. }
        | FlatOp::Unlock { .. }
        | FlatOp::BarrierInit { .. }
        | FlatOp::BarrierWait { .. }
        | FlatOp::CondWait { .. }
        | FlatOp::CondSignal { .. }
        | FlatOp::CondBroadcast { .. }
        | FlatOp::SpawnDirect { .. }
        | FlatOp::SpawnIndirect { .. }
        | FlatOp::Join { .. } => OpClass::Sync,
        FlatOp::Malloc { .. } | FlatOp::Free { .. } => OpClass::Heap,
        FlatOp::SysRead { .. }
        | FlatOp::SysWrite { .. }
        | FlatOp::SysInput { .. }
        | FlatOp::Print { .. } => OpClass::Io,
        FlatOp::WeakAcquire { .. } | FlatOp::WeakRelease { .. } => OpClass::Weak,
        FlatOp::Jump { .. } => OpClass::Jump,
        FlatOp::Branch { .. } => OpClass::Branch,
        FlatOp::Return { .. } => OpClass::Return,
        FlatOp::AddrOfRegister { .. } => OpClass::Other,
        FlatOp::FusedGlobalLoad { .. }
        | FlatOp::FusedGlobalStore { .. }
        | FlatOp::FusedSlotLoad { .. }
        | FlatOp::FusedSlotStore { .. }
        | FlatOp::FusedPtrLoad { .. }
        | FlatOp::FusedPtrStore { .. }
        | FlatOp::FusedCmpBranch { .. }
        | FlatOp::FusedOpAssign { .. } => OpClass::Fused,
    }
}

/// The decode-time fusion table: static opcode-pair frequencies over every
/// same-block adjacent pair in the program, plus the per-pattern counts the
/// peephole pass actually fused.
///
/// The pass is *driven* by the frequency side: a candidate pattern is only
/// rewritten into the sidecar when its static class pair occurs in this
/// program at all (zero-count patterns stay disabled, so a program with no
/// matching shape pays nothing for that pattern, and the table documents
/// exactly which superinstructions a given program can execute).
#[derive(Debug, Clone, Default)]
pub struct FusionTable {
    /// Same-block adjacent pair frequencies gathered during decode.
    pub pairs: std::collections::BTreeMap<(OpClass, OpClass), u64>,
    /// Sites rewritten into fused form, keyed by the same class pair.
    pub fused: std::collections::BTreeMap<(OpClass, OpClass), u64>,
}

impl FusionTable {
    /// Total number of fused sites across the program.
    pub fn fused_sites(&self) -> u64 {
        self.fused.values().sum()
    }
}

/// Program-level fusion report: which superinstruction patterns the
/// decode-time pair table enabled, and how many sites each rewrote.
#[derive(Debug, Clone)]
pub struct FusionSummary {
    /// Total fused sites across the program.
    pub fused_sites: u64,
    /// One row per fused class pair: `(first, second, static adjacent
    /// occurrences, sites fused)`, sorted by class pair.
    pub rows: Vec<(&'static str, &'static str, u64, u64)>,
}

/// Flatten `program` and summarize its fusion table. Used by the CLI's
/// `run --json` report; execution flattens independently, so this costs
/// one extra decode (~10µs on the benched workloads).
pub fn fusion_summary(program: &Program) -> FusionSummary {
    let flat = flatten(program);
    let t = &flat.fusion;
    let rows = t
        .fused
        .iter()
        .map(|(&(a, b), &n)| {
            (
                a.name(),
                b.name(),
                t.pairs.get(&(a, b)).copied().unwrap_or(0),
                n,
            )
        })
        .collect();
    FusionSummary {
        fused_sites: t.fused_sites(),
        rows,
    }
}

/// Frame-slot layout of one function: where each `Storage::Slot` local
/// lives relative to the frame base, and the total slot area size.
#[derive(Debug, Clone)]
pub struct FuncLayout {
    /// Offset of each local's slot from the frame base (`None` for
    /// register locals).
    pub slot_offset: Vec<Option<i64>>,
    /// Total slot-area size in cells.
    pub frame_size: i64,
}

/// One function's flattened code.
#[derive(Debug, Clone)]
pub struct FlatFunc {
    /// All blocks' instructions and terminators, concatenated in block
    /// order: block `b` occupies `block_entry[b] ..` with its terminator
    /// as the last op.
    pub code: Vec<FlatOp>,
    /// Superinstruction sidecar, same length as `code`: `fused[pc]` is a
    /// fused variant covering `[pc, pc + 2)` where the peephole pass
    /// matched, otherwise a copy of `code[pc]`. Only the batch hot loop
    /// reads it; every pc remains a valid single-step entry point because
    /// the plain op at `pc + 1` is never removed.
    pub fused: Vec<FlatOp>,
    /// First pc of each block.
    pub block_entry: Vec<u32>,
    /// Owning block of each pc (the inverse of `block_entry`).
    pub pc_block: Vec<u32>,
    /// pc of the function's entry block.
    pub entry_pc: u32,
}

impl FlatFunc {
    /// Map a flat pc back to the block-structured position the reference
    /// interpreter path executes: `(block, instruction index)`. An `ip`
    /// equal to the block's instruction count designates the terminator.
    #[inline]
    pub fn locate(&self, pc: u32) -> (BlockId, usize) {
        let b = self.pc_block[pc as usize];
        (BlockId(b), (pc - self.block_entry[b as usize]) as usize)
    }
}

/// The pre-decoded program: one [`FlatFunc`] per function plus the shared
/// argument pool and frame layouts. Built once per run by [`flatten`].
#[derive(Debug, Clone)]
pub struct FlatProgram {
    /// Flattened functions, indexed by [`FuncId`].
    pub funcs: Vec<FlatFunc>,
    /// Interned call/spawn argument operands ([`ArgRange`] indexes this).
    pub args: Vec<Operand>,
    /// Frame layouts, indexed by [`FuncId`].
    pub layouts: Vec<FuncLayout>,
    /// Whether any weak-lock op (`WeakAcquire`/`WeakRelease`) exists in the
    /// program. An uninstrumented program can never weak-block, so the flat
    /// scheduler skips the per-step timeout machinery entirely even when
    /// `timeout_enabled` is set.
    pub has_weak_ops: bool,
    /// The decode-time pair-frequency table that drove the fusion pass.
    pub fusion: FusionTable,
}

/// Compute every function's frame-slot layout.
pub fn layout_of(program: &Program) -> Vec<FuncLayout> {
    program
        .funcs
        .iter()
        .map(|f| {
            let mut off = 0i64;
            let mut slot_offset = vec![None; f.locals.len()];
            for (i, l) in f.locals.iter().enumerate() {
                if let Storage::Slot { size } = l.storage {
                    slot_offset[i] = Some(off);
                    off += size as i64;
                }
            }
            FuncLayout {
                slot_offset,
                frame_size: off,
            }
        })
        .collect()
}

/// Pre-decode `program` into its flat execution form.
pub fn flatten(program: &Program) -> FlatProgram {
    let layouts = layout_of(program);
    let mut args: Vec<Operand> = Vec::new();
    let mut intern = |ops: &[Operand], args: &mut Vec<Operand>| -> ArgRange {
        let start = args.len() as u32;
        args.extend_from_slice(ops);
        ArgRange {
            start,
            len: ops.len() as u32,
        }
    };
    let mut funcs = program
        .funcs
        .iter()
        .map(|f| {
            // Pass 1: block entry pcs (each block contributes its
            // instructions plus one terminator op).
            let mut block_entry = Vec::with_capacity(f.blocks.len());
            let mut pc = 0u32;
            for b in &f.blocks {
                block_entry.push(pc);
                pc += b.instrs.len() as u32 + 1;
            }
            // Pass 2: decode.
            let mut code = Vec::with_capacity(pc as usize);
            let mut pc_block = Vec::with_capacity(pc as usize);
            for (bi, b) in f.blocks.iter().enumerate() {
                for instr in &b.instrs {
                    code.push(decode_instr(
                        instr,
                        &layouts[f.id.index()],
                        &mut args,
                        &mut intern,
                    ));
                    pc_block.push(bi as u32);
                }
                code.push(decode_term(&b.term, &block_entry));
                pc_block.push(bi as u32);
            }
            FlatFunc {
                code,
                fused: Vec::new(),
                block_entry: block_entry.clone(),
                pc_block,
                entry_pc: block_entry[f.entry.index()],
            }
        })
        .collect::<Vec<FlatFunc>>();
    let has_weak_ops = funcs.iter().any(|f: &FlatFunc| {
        f.code.iter().any(|op| {
            matches!(
                op,
                FlatOp::WeakAcquire { .. } | FlatOp::WeakRelease { .. }
            )
        })
    });
    // Gather the static pair-frequency table over every same-block
    // adjacent pair, then run the frequency-driven peephole pass.
    let mut fusion = FusionTable::default();
    for f in &funcs {
        for pc in 0..f.code.len().saturating_sub(1) {
            if f.pc_block[pc] == f.pc_block[pc + 1] {
                let key = (op_class(&f.code[pc]), op_class(&f.code[pc + 1]));
                *fusion.pairs.entry(key).or_insert(0) += 1;
            }
        }
    }
    for f in &mut funcs {
        f.fused = fuse_func(&f.code, &f.pc_block, &mut fusion);
    }
    FlatProgram {
        funcs,
        args,
        layouts,
        has_weak_ops,
        fusion,
    }
}

/// Rewrite one candidate same-block pair into its fused superinstruction,
/// if a pattern matches. The second op's result must depend on the first
/// through a register the first wrote (the address feeding a load/store,
/// the comparison feeding a branch, the value feeding a copy); execution
/// order inside the fused op is preserved exactly, so reads of the written
/// register by the second constituent see the new value, as in unfused
/// stepping.
fn try_fuse(a: &FlatOp, b: &FlatOp) -> Option<FlatOp> {
    let feeds = |written: LocalId, read: &Operand| *read == Operand::Local(written);
    match (*a, *b) {
        (
            FlatOp::AddrOfGlobal { dst, global, offset },
            FlatOp::Load { dst: ld, addr, .. },
        ) if feeds(dst, &addr) => Some(FlatOp::FusedGlobalLoad {
            addr_dst: dst,
            global,
            offset,
            dst: ld,
        }),
        (
            FlatOp::AddrOfGlobal { dst, global, offset },
            FlatOp::Store { addr, val, .. },
        ) if feeds(dst, &addr) => Some(FlatOp::FusedGlobalStore {
            addr_dst: dst,
            global,
            offset,
            val,
        }),
        (
            FlatOp::AddrOfSlot { dst, slot_off, offset },
            FlatOp::Load { dst: ld, addr, .. },
        ) if feeds(dst, &addr) => Some(FlatOp::FusedSlotLoad {
            addr_dst: dst,
            slot_off,
            offset,
            dst: ld,
        }),
        (
            FlatOp::AddrOfSlot { dst, slot_off, offset },
            FlatOp::Store { addr, val, .. },
        ) if feeds(dst, &addr) => Some(FlatOp::FusedSlotStore {
            addr_dst: dst,
            slot_off,
            offset,
            val,
        }),
        (
            FlatOp::PtrAdd { dst, base, offset },
            FlatOp::Load { dst: ld, addr, .. },
        ) if feeds(dst, &addr) => Some(FlatOp::FusedPtrLoad {
            addr_dst: dst,
            base,
            offset,
            dst: ld,
        }),
        (
            FlatOp::PtrAdd { dst, base, offset },
            FlatOp::Store { addr, val, .. },
        ) if feeds(dst, &addr) => Some(FlatOp::FusedPtrStore {
            addr_dst: dst,
            base,
            offset,
            val,
        }),
        (
            FlatOp::BinOp { dst, op, a, b },
            FlatOp::Branch { cond, then_pc, else_pc, .. },
        ) if feeds(dst, &cond) => Some(FlatOp::FusedCmpBranch {
            dst,
            op,
            a,
            b,
            then_pc,
            else_pc,
        }),
        (FlatOp::BinOp { dst, op, a, b }, FlatOp::Copy { dst: cd, src })
            if feeds(dst, &src) =>
        {
            Some(FlatOp::FusedOpAssign {
                tmp: dst,
                op,
                a,
                b,
                dst: cd,
            })
        }
        _ => None,
    }
}

/// The post-decode peephole pass: build the fused sidecar for one
/// function. Pairs never straddle a block boundary (the second op may be
/// the block's terminator, which shares its block id); jump targets are
/// always block entries, so control flow can only *enter* a fused pair at
/// its first pc. Pairs may overlap greedily — a thread resuming mid-pair
/// at `pc + 1` simply dispatches whatever the sidecar holds there, which
/// has identical semantics either way.
fn fuse_func(code: &[FlatOp], pc_block: &[u32], table: &mut FusionTable) -> Vec<FlatOp> {
    let mut fused = code.to_vec();
    for pc in 0..code.len().saturating_sub(1) {
        if pc_block[pc] != pc_block[pc + 1] {
            continue;
        }
        let key = (op_class(&code[pc]), op_class(&code[pc + 1]));
        // Frequency-driven: a pattern only fires when its static class
        // pair occurs in this program's table (always true here since we
        // are looking at an occurrence — the table keyed check is what a
        // threshold would hook into, and it keeps the per-pattern counts).
        if table.pairs.get(&key).copied().unwrap_or(0) == 0 {
            continue;
        }
        if let Some(op) = try_fuse(&code[pc], &code[pc + 1]) {
            fused[pc] = op;
            *table.fused.entry(key).or_insert(0) += 1;
        }
    }
    fused
}

fn decode_instr(
    instr: &Instr,
    layout: &FuncLayout,
    args: &mut Vec<Operand>,
    intern: &mut impl FnMut(&[Operand], &mut Vec<Operand>) -> ArgRange,
) -> FlatOp {
    match instr {
        Instr::Copy { dst, src } => FlatOp::Copy {
            dst: *dst,
            src: *src,
        },
        Instr::UnOp { dst, op, src } => FlatOp::UnOp {
            dst: *dst,
            op: *op,
            src: *src,
        },
        Instr::BinOp { dst, op, a, b } => FlatOp::BinOp {
            dst: *dst,
            op: *op,
            a: *a,
            b: *b,
        },
        Instr::AddrOfGlobal {
            dst,
            global,
            offset,
        } => FlatOp::AddrOfGlobal {
            dst: *dst,
            global: *global,
            offset: *offset,
        },
        Instr::AddrOfLocal { dst, local, offset } => {
            match layout.slot_offset[local.index()] {
                Some(slot_off) => FlatOp::AddrOfSlot {
                    dst: *dst,
                    slot_off,
                    offset: *offset,
                },
                None => FlatOp::AddrOfRegister { local: *local },
            }
        }
        Instr::AddrOfFunc { dst, func } => FlatOp::AddrOfFunc {
            dst: *dst,
            func: *func,
        },
        Instr::PtrAdd { dst, base, offset } => FlatOp::PtrAdd {
            dst: *dst,
            base: *base,
            offset: *offset,
        },
        Instr::Load { dst, addr, access } => FlatOp::Load {
            dst: *dst,
            addr: *addr,
            access: *access,
        },
        Instr::Store { addr, val, access } => FlatOp::Store {
            addr: *addr,
            val: *val,
            access: *access,
        },
        Instr::Call {
            dst,
            callee,
            args: a,
        } => {
            let range = intern(a, args);
            match callee {
                Callee::Direct(f) => FlatOp::CallDirect {
                    dst: *dst,
                    func: *f,
                    args: range,
                },
                Callee::Indirect(op) => FlatOp::CallIndirect {
                    dst: *dst,
                    target: *op,
                    args: range,
                },
            }
        }
        Instr::Lock { addr } => FlatOp::Lock { addr: *addr },
        Instr::Unlock { addr } => FlatOp::Unlock { addr: *addr },
        Instr::BarrierInit { addr, count } => FlatOp::BarrierInit {
            addr: *addr,
            count: *count,
        },
        Instr::BarrierWait { addr } => FlatOp::BarrierWait { addr: *addr },
        Instr::CondWait { cond, lock } => FlatOp::CondWait {
            cond: *cond,
            lock: *lock,
        },
        Instr::CondSignal { cond } => FlatOp::CondSignal { cond: *cond },
        Instr::CondBroadcast { cond } => FlatOp::CondBroadcast { cond: *cond },
        Instr::Spawn {
            dst,
            callee,
            args: a,
        } => {
            let range = intern(a, args);
            match callee {
                Callee::Direct(f) => FlatOp::SpawnDirect {
                    dst: *dst,
                    func: *f,
                    args: range,
                },
                Callee::Indirect(op) => FlatOp::SpawnIndirect {
                    dst: *dst,
                    target: *op,
                    args: range,
                },
            }
        }
        Instr::Join { tid } => FlatOp::Join { tid: *tid },
        Instr::Malloc { dst, size, site } => FlatOp::Malloc {
            dst: *dst,
            size: *size,
            site: *site,
        },
        Instr::Free { addr } => FlatOp::Free { addr: *addr },
        Instr::SysRead {
            dst,
            chan,
            buf,
            len,
        } => FlatOp::SysRead {
            dst: *dst,
            chan: *chan,
            buf: *buf,
            len: *len,
        },
        Instr::SysWrite { chan, buf, len } => FlatOp::SysWrite {
            chan: *chan,
            buf: *buf,
            len: *len,
        },
        Instr::SysInput { dst, chan } => FlatOp::SysInput {
            dst: *dst,
            chan: *chan,
        },
        Instr::Print { val } => FlatOp::Print { val: *val },
        Instr::WeakAcquire {
            lock,
            granularity,
            range,
        } => FlatOp::WeakAcquire {
            lock: *lock,
            granularity: *granularity,
            range: *range,
        },
        Instr::WeakRelease { lock } => FlatOp::WeakRelease { lock: *lock },
    }
}

fn decode_term(term: &Terminator, block_entry: &[u32]) -> FlatOp {
    match term {
        Terminator::Jump(b) => FlatOp::Jump {
            target_pc: block_entry[b.index()],
            target_block: *b,
        },
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => FlatOp::Branch {
            cond: *cond,
            then_pc: block_entry[then_bb.index()],
            then_block: *then_bb,
            else_pc: block_entry[else_bb.index()],
            else_block: *else_bb,
        },
        Terminator::Return(v) => FlatOp::Return { val: *v },
    }
}

/// Resolve each op's cost-model class to a static commit cost, per pc.
///
/// The value is the virtual-cycle cost charged when the op commits on its
/// ordinary success path, matching the reference interpreter's per-arm
/// arithmetic (including the log-write surcharges recording adds to sync
/// and weak-lock operations). Ops whose commit cost depends on runtime
/// values — I/O latency and lengths, barrier phases, the dynamic weak-lock
/// paths — store 0 here and are costed by their handlers instead.
pub fn static_costs(
    func: &FlatFunc,
    cost: &CostModel,
    log_sync: bool,
    log_weak: bool,
) -> Vec<u64> {
    let log_s = if log_sync { cost.log_write } else { 0 };
    let log_w = if log_weak { cost.log_write } else { 0 };
    func.code
        .iter()
        .map(|op| match op {
            FlatOp::Copy { .. }
            | FlatOp::UnOp { .. }
            | FlatOp::BinOp { .. }
            | FlatOp::AddrOfGlobal { .. }
            | FlatOp::AddrOfSlot { .. }
            | FlatOp::AddrOfFunc { .. }
            | FlatOp::PtrAdd { .. }
            | FlatOp::Jump { .. }
            | FlatOp::Branch { .. } => cost.instr,
            FlatOp::AddrOfRegister { .. } => 0, // always traps
            FlatOp::Load { .. } | FlatOp::Store { .. } => cost.instr + cost.mem,
            FlatOp::CallDirect { .. }
            | FlatOp::CallIndirect { .. }
            | FlatOp::Return { .. }
            | FlatOp::Malloc { .. }
            | FlatOp::Free { .. } => cost.call,
            FlatOp::Lock { .. } => cost.sync_op + log_s,
            FlatOp::Unlock { .. } => cost.sync_op,
            FlatOp::BarrierInit { .. } => cost.sync_op,
            FlatOp::CondSignal { .. } | FlatOp::CondBroadcast { .. } => cost.sync_op + log_s,
            FlatOp::Join { .. } => cost.sync_op + log_s,
            FlatOp::SpawnDirect { .. } | FlatOp::SpawnIndirect { .. } => cost.spawn + log_s,
            FlatOp::Print { .. } => cost.syscall,
            FlatOp::WeakAcquire { range, .. } => {
                let rc = if range.is_some() { cost.range_check } else { 0 };
                cost.weak_op + rc + log_w
            }
            FlatOp::WeakRelease { .. } => cost.weak_op,
            // Dynamic: latency/length-dependent or multi-phase.
            FlatOp::BarrierWait { .. }
            | FlatOp::CondWait { .. }
            | FlatOp::SysRead { .. }
            | FlatOp::SysWrite { .. }
            | FlatOp::SysInput { .. } => 0,
            // Sidecar-only: fused ops never appear in `code` (the batch
            // loop costs each constituent separately).
            FlatOp::FusedGlobalLoad { .. }
            | FlatOp::FusedGlobalStore { .. }
            | FlatOp::FusedSlotLoad { .. }
            | FlatOp::FusedSlotStore { .. }
            | FlatOp::FusedPtrLoad { .. }
            | FlatOp::FusedPtrStore { .. }
            | FlatOp::FusedCmpBranch { .. }
            | FlatOp::FusedOpAssign { .. } => 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    fn flat_of(src: &str) -> (Program, FlatProgram) {
        let p = compile(src).unwrap();
        let f = flatten(&p);
        (p, f)
    }

    #[test]
    fn layout_and_code_cover_every_block() {
        let (p, flat) = flat_of(
            "int g;
             int add(int a, int b) { return a + b; }
             int main() { int i; int s;
                for (i = 0; i < 4; i = i + 1) { s = add(s, i); }
                g = s; print(s); return 0; }",
        );
        assert_eq!(flat.funcs.len(), p.funcs.len());
        for (f, ff) in p.funcs.iter().zip(&flat.funcs) {
            let expected: usize = f.blocks.iter().map(|b| b.instrs.len() + 1).sum();
            assert_eq!(ff.code.len(), expected);
            assert_eq!(ff.pc_block.len(), expected);
            assert_eq!(ff.block_entry.len(), f.blocks.len());
            assert_eq!(ff.entry_pc, ff.block_entry[f.entry.index()]);
            // Every pc maps back to a (block, ip) consistent with the
            // block-structured program; block-final pcs are terminators.
            for pc in 0..ff.code.len() as u32 {
                let (b, ip) = ff.locate(pc);
                let block = f.block(b);
                assert!(ip <= block.instrs.len(), "pc {pc} past terminator");
                if ip == block.instrs.len() {
                    assert!(matches!(
                        ff.code[pc as usize],
                        FlatOp::Jump { .. } | FlatOp::Branch { .. } | FlatOp::Return { .. }
                    ));
                }
            }
        }
    }

    #[test]
    fn branch_targets_resolve_to_block_entries() {
        let (p, flat) = flat_of(
            "int main() { int i; i = 0;
                while (i < 3) { i = i + 1; }
                return i; }",
        );
        let main = &flat.funcs[p.main().index()];
        for op in &main.code {
            match *op {
                FlatOp::Jump {
                    target_pc,
                    target_block,
                } => {
                    assert_eq!(target_pc, main.block_entry[target_block.index()]);
                }
                FlatOp::Branch {
                    then_pc,
                    then_block,
                    else_pc,
                    else_block,
                    ..
                } => {
                    assert_eq!(then_pc, main.block_entry[then_block.index()]);
                    assert_eq!(else_pc, main.block_entry[else_block.index()]);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn call_args_interned_into_pool() {
        let (p, flat) = flat_of(
            "int add3(int a, int b, int c) { return a + b + c; }
             int main() { return add3(1, 2, 3); }",
        );
        let main = &flat.funcs[p.main().index()];
        let call = main
            .code
            .iter()
            .find_map(|op| match op {
                FlatOp::CallDirect { args, .. } => Some(*args),
                _ => None,
            })
            .expect("main calls add3");
        assert_eq!(call.len, 3);
        let pool = &flat.args[call.as_range()];
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn addr_of_local_resolves_slot_offsets() {
        let (p, flat) = flat_of(
            "int main() { int a[4]; int b[2]; a[0] = 1; b[1] = 2; return a[0] + b[1]; }",
        );
        let main_id = p.main().index();
        let layout = &flat.layouts[main_id];
        assert_eq!(layout.frame_size, 6);
        let offsets: Vec<i64> = flat.funcs[main_id]
            .code
            .iter()
            .filter_map(|op| match op {
                FlatOp::AddrOfSlot { slot_off, .. } => Some(*slot_off),
                _ => None,
            })
            .collect();
        assert!(!offsets.is_empty());
        assert!(offsets.iter().all(|o| *o == 0 || *o == 4), "{offsets:?}");
    }

    #[test]
    fn static_costs_match_cost_model() {
        let (p, flat) = flat_of(
            "int g; lock_t m;
             int main() { lock(&m); g = g + 1; unlock(&m); print(g); return 0; }",
        );
        let cost = CostModel::default();
        let main = &flat.funcs[p.main().index()];
        let plain = static_costs(main, &cost, false, false);
        let logged = static_costs(main, &cost, true, true);
        for (pc, op) in main.code.iter().enumerate() {
            match op {
                FlatOp::Load { .. } | FlatOp::Store { .. } => {
                    assert_eq!(plain[pc], cost.instr + cost.mem);
                }
                FlatOp::Lock { .. } => {
                    assert_eq!(plain[pc], cost.sync_op);
                    assert_eq!(logged[pc], cost.sync_op + cost.log_write);
                }
                FlatOp::Unlock { .. } => {
                    assert_eq!(plain[pc], cost.sync_op);
                    assert_eq!(logged[pc], cost.sync_op, "unlock is never logged");
                }
                FlatOp::Print { .. } => assert_eq!(plain[pc], cost.syscall),
                _ => {}
            }
        }
    }

    #[test]
    fn fusion_summary_agrees_with_decode() {
        // Global loads/stores and compare-branches: the classic fusible
        // patterns. The summary must agree with what decode actually did.
        let src = "int g; int h;
             int main() { int i;
                for (i = 0; i < 10; i = i + 1) { g = g + 1; h = h + g; }
                print(g + h); return 0; }";
        let (p, flat) = flat_of(src);
        let summary = fusion_summary(&p);
        assert!(summary.fused_sites > 0, "expected fusible sites");
        // Fused ops never appear in `code`; they live in the sidecar.
        let fused_in_sidecar: u64 = flat
            .funcs
            .iter()
            .flat_map(|f| &f.fused)
            .filter(|op| op_class(op) == OpClass::Fused)
            .count() as u64;
        assert_eq!(
            summary.fused_sites, fused_in_sidecar,
            "summary disagrees with the decoded sidecar"
        );
        let row_total: u64 = summary.rows.iter().map(|(_, _, _, f)| f).sum();
        assert_eq!(summary.fused_sites, row_total, "rows must sum to the total");
        for (first, second, pairs, fused) in &summary.rows {
            assert!(fused <= pairs, "{first}+{second}: fused {fused} > static {pairs}");
            assert!(*fused > 0, "{first}+{second}: zero-count row exported");
        }
        assert!(
            summary
                .rows
                .iter()
                .any(|(a, b, _, _)| *a == "addr_global" && (*b == "load" || *b == "store")),
            "global access fusion missing from {:?}",
            summary.rows
        );
    }
}
