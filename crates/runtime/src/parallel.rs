//! Deterministic scoped parallelism for embarrassingly parallel outer
//! loops (profile runs over seeds, measurement trials).
//!
//! [`par_map`] fans work out over `std::thread::scope` workers pulling
//! indices from a shared atomic counter, then reassembles results **in
//! input order** — so callers that fold the output sequentially get
//! bit-identical results to a serial loop, regardless of OS scheduling.
//! Setting `CHIMERA_SERIAL=1` (any non-empty value other than `0`) forces
//! the serial path, as an escape hatch for debugging and for environments
//! where spawning threads is undesirable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Has the user asked for serial execution via `CHIMERA_SERIAL`?
pub fn serial_requested() -> bool {
    std::env::var_os("CHIMERA_SERIAL").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Apply `f` to every item, in parallel, returning results in input order.
///
/// Spawns at most `available_parallelism` scoped workers; falls back to a
/// plain serial loop for zero or one item, when only one worker is
/// available, or when [`serial_requested`] is set. Panics in `f` propagate
/// to the caller (the scope joins every worker first).
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_jobs(items, 0, f)
}

/// [`par_map`] with an explicit worker budget.
///
/// `jobs == 0` auto-sizes to `available_parallelism` (the [`par_map`]
/// behavior); `jobs == 1` is the serial loop; any larger value spawns
/// exactly `min(jobs, items.len())` scoped workers even when the host
/// advertises fewer cores — an explicit request wins, which is what lets
/// an orchestrator oversubscribe I/O-ish work or pin a reproducible
/// worker count. `CHIMERA_SERIAL=1` still forces the serial path no
/// matter what `jobs` says.
pub fn par_map_jobs<T: Sync, U: Send>(
    items: &[T],
    jobs: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    let workers = if jobs == 0 {
        thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        jobs
    }
    .min(n);
    if n <= 1 || workers <= 1 || serial_requested() {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, U)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (f, next) = (&f, &next);
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, u) in per_worker.into_iter().flatten() {
        slots[i] = Some(u);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_jobs_budget_is_respected_and_order_preserving() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let items: Vec<usize> = (0..50).collect();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        // jobs=3 must spawn real workers even on a single-core host; the
        // output stays input-ordered regardless of which worker ran what.
        let out = par_map_jobs(&items, 3, |&i| {
            seen.lock().unwrap().insert(std::thread::current().id());
            i + 1
        });
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
        // The thread-count assertion is best-effort (workers race for
        // indices), but with 50 items at least one spawned worker runs.
        assert!(!seen.lock().unwrap().is_empty());
        assert_eq!(par_map_jobs(&items, 1, |&i| i), items);
    }

    #[test]
    fn matches_serial_map_on_stateful_work() {
        // Work whose cost varies wildly by index, so workers finish out of
        // order — the output must still be index-ordered.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&i| {
            let mut acc = i;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        });
        let serial: Vec<u64> = items
            .iter()
            .map(|&i| {
                let mut acc = i;
                for _ in 0..(i % 7) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
            .collect();
        assert_eq!(out, serial);
    }
}
