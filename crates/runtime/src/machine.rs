//! The virtual machine: a deterministic-when-seeded, virtual-time
//! multithreaded interpreter for MiniC IR.
//!
//! # Execution model
//!
//! Every thread has a local virtual clock. The scheduler always runs the
//! *ready thread with the smallest clock* (ties by thread id), which
//! simulates one core per thread — matching the paper's testbed, where 4–8
//! worker threads ran on an 8-core Xeon. Blocking (mutexes, barriers,
//! condvars, joins, weak-locks) transfers virtual time: a woken thread's
//! clock becomes `max(its clock, waker's clock)`, so serialization shows up
//! as makespan growth, i.e. lost parallelism — exactly the contention cost
//! Figure 7 of the paper decomposes.
//!
//! Scheduling nondeterminism comes from seeded cost jitter and I/O latency
//! (see [`crate::cost::Jitter`], [`crate::world::World`]): different seeds
//! order racing accesses differently, which is what makes record/replay
//! nontrivial.
//!
//! # Weak-locks
//!
//! [`Instr::WeakAcquire`]/[`Instr::WeakRelease`] get Chimera's semantics
//! (§2.3): single conflicting holder at a time, optional guarded address
//! ranges for loop-locks, and a timeout that forcibly preempts a holder
//! that is blocked while a waiter starves — preserving the single-holder
//! invariant that deterministic replay needs, without ever deadlocking the
//! program.

use crate::cost::{CostModel, Jitter};
use crate::event::{
    Event, EventKind, EventMask, NullSupervisor, OrderPoint, Supervisor, SyncKind, ThreadId,
};
use crate::flat::{flatten, static_costs, ArgRange, FlatFunc, FlatOp, FlatProgram};
use crate::memory::{MemSnap, Memory, RegionKind};
use crate::parallel::{par_map, serial_requested};
use crate::sched::SchedStrategy;
use crate::stats::ExecStats;
use crate::sync::{BlockReason, SyncTables, WeakHolder};
use crate::world::{IoModel, World};
use chimera_minic::ast::{BinOp, UnOp};
use chimera_minic::ir::{
    BlockId, Callee, FuncId, Instr, LocalId, LockGranularity, Operand, Program, Terminator,
    WeakLockId,
};
use chimera_testkit::rng::Rng;
use std::sync::OnceLock;

/// Function-pointer values are encoded as `FUNC_PTR_BASE + FuncId`.
pub const FUNC_PTR_BASE: i64 = 1 << 40;

/// Everything configurable about one execution.
///
/// All-scalar and `Copy`: executions borrow the config they are given and
/// parallel trials share one instance instead of deep-cloning per run.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Seed for jitter and simulated input.
    pub seed: u64,
    /// Virtual-cycle costs.
    pub cost: CostModel,
    /// Timing jitter (scheduling nondeterminism).
    pub jitter: Jitter,
    /// I/O latency model.
    pub io: IoModel,
    /// Abort after this many retired instructions.
    pub max_steps: u64,
    /// Weak-lock starvation threshold in cycles before forced release.
    pub weak_timeout: u64,
    /// True while weak-lock timeouts may fire (recording); replay injects
    /// forced releases through the supervisor instead.
    pub timeout_enabled: bool,
    /// Charge log-write cost for program sync operations (recording).
    pub log_sync: bool,
    /// Charge log-write cost for weak-lock operations (recording).
    pub log_weak: bool,
    /// Charge log-write cost for inputs (recording).
    pub log_input: bool,
    /// Weak-lock acquires never block (used to isolate contention cost for
    /// the Fig. 7 breakdown).
    pub weak_always_succeed: bool,
    /// Keep the full event trace in the result.
    pub collect_trace: bool,
    /// Count basic-block executions (used by the profiler for loop-body
    /// size estimates, paper §5.3).
    pub count_blocks: bool,
    /// Scheduling strategy (the schedule-exploration seam, see
    /// [`crate::sched`]). The clock-ordered default keeps the flat hot
    /// loop's burst/ready-queue fast path; adversarial strategies run
    /// both interpreter modes through one shared per-step loop.
    pub sched: SchedStrategy,
    /// OS worker threads for the DRF-certified parallel flat mode: `<= 1`
    /// is serial; larger values let the flat scheduler dispatch
    /// speculative hot segments of distinct threads across OS threads via
    /// [`crate::parallel::par_map`], committing only rounds whose
    /// read/write sets are pairwise disjoint (everything else re-runs
    /// serially), so results stay bit-identical to serial flat. Only
    /// engages when every batch-legality condition holds and jitter is
    /// off; `CHIMERA_SERIAL=1` forces serial.
    pub parallelism: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            seed: 0,
            cost: CostModel::default(),
            jitter: Jitter::default(),
            io: IoModel::default(),
            max_steps: 200_000_000,
            weak_timeout: 500_000,
            timeout_enabled: true,
            log_sync: false,
            log_weak: false,
            log_input: false,
            weak_always_succeed: false,
            collect_trace: false,
            count_blocks: false,
            sched: SchedStrategy::ClockJitter,
            parallelism: 1,
        }
    }
}

/// How an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All threads ran to completion; payload is `main`'s return value.
    Exited(i64),
    /// A thread trapped (memory error, division by zero, ...).
    Trap {
        /// Offending thread.
        thread: ThreadId,
        /// Description.
        message: String,
    },
    /// No thread can make progress.
    Deadlock {
        /// Blocked threads with their reasons.
        blocked: Vec<(ThreadId, String)>,
    },
    /// `max_steps` exceeded.
    StepLimit,
}

impl Outcome {
    /// True for a clean exit.
    pub fn is_exit(&self) -> bool {
        matches!(self, Outcome::Exited(_))
    }
}

/// The result of one execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// How it ended.
    pub outcome: Outcome,
    /// Program output as `(thread, value)` pairs in commit order.
    pub output: Vec<(ThreadId, i64)>,
    /// Hash of final live memory.
    pub state_hash: u64,
    /// Maximum thread clock at exit — total virtual runtime.
    pub makespan: u64,
    /// Counters.
    pub stats: ExecStats,
    /// Full event trace (empty unless `collect_trace`).
    pub trace: Vec<Event>,
    /// Per-function, per-block execution counts (empty unless
    /// `count_blocks`).
    pub block_counts: Vec<Vec<u64>>,
}

impl ExecResult {
    /// Output values of one thread, in order.
    pub fn output_of(&self, t: ThreadId) -> Vec<i64> {
        self.output
            .iter()
            .filter(|(th, _)| *th == t)
            .map(|(_, v)| *v)
            .collect()
    }
}

/// Which stepping implementation the machine runs.
///
/// Both modes produce byte-identical [`ExecResult`]s and traces (pinned by
/// the `vm_differential` suite); they differ only in speed. `Flat` is the
/// production path; `Reference` keeps the original block-structured,
/// clone-per-step loop alive as the guard-rail baseline and as the slow
/// side of the `interp_scaling` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMode {
    /// Pre-decoded hot loop: `(func, pc)` frames over flattened per-function
    /// code arrays, dense sync tables, scratch-buffer reuse, and burst
    /// scheduling of the running thread (see DESIGN.md "VM internals").
    #[default]
    Flat,
    /// The original interpreter: per-step `Instr`/`Terminator` clones,
    /// spill-only (`BTreeMap`) sync tables, a full scheduler scan per step.
    Reference,
}

/// The process-wide default mode: `Flat`, unless `CHIMERA_VM_REFERENCE` is
/// set to a non-empty value other than `0` (read once, then cached).
fn default_mode() -> InterpMode {
    static MODE: OnceLock<InterpMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("CHIMERA_VM_REFERENCE") {
        Ok(v) if !v.is_empty() && v != "0" => InterpMode::Reference,
        _ => InterpMode::Flat,
    })
}

/// Run `program` under the null supervisor (plain execution).
pub fn execute(program: &Program, config: &ExecConfig) -> ExecResult {
    execute_supervised(program, config, &mut NullSupervisor)
}

/// Run `program` with a supervisor observing events and gating order
/// points — the entry point used by the recorder, the replayer, and the
/// profiler. Uses the flat interpreter unless overridden via the
/// `CHIMERA_VM_REFERENCE` environment variable.
pub fn execute_supervised(
    program: &Program,
    config: &ExecConfig,
    sup: &mut dyn Supervisor,
) -> ExecResult {
    execute_supervised_mode(program, config, sup, default_mode())
}

/// [`execute`] with an explicit interpreter mode.
pub fn execute_mode(program: &Program, config: &ExecConfig, mode: InterpMode) -> ExecResult {
    execute_supervised_mode(program, config, &mut NullSupervisor, mode)
}

/// [`execute_supervised`] with an explicit interpreter mode.
pub fn execute_supervised_mode(
    program: &Program,
    config: &ExecConfig,
    sup: &mut dyn Supervisor,
    mode: InterpMode,
) -> ExecResult {
    Machine::new(program, config, mode).run(sup)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeldWeak {
    lock: WeakLockId,
    range: Option<(i64, i64)>,
    gran: LockGranularity,
}

/// One activation. The position is a dense `(func, pc)` pair into the
/// flattened code (both interpreter modes share this representation; the
/// reference path maps `pc` back to `(block, ip)` via
/// [`crate::flat::FlatFunc::locate`]).
#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    pc: u32,
    regs: Vec<i64>,
    frame_base: Option<i64>,
    ret_dst: Option<LocalId>,
    held_weak: Vec<HeldWeak>,
}

impl Frame {
    /// Operand read against this frame's registers. The flat hot loop
    /// resolves all of an op's operands through one borrow of the current
    /// frame rather than re-walking `threads[tid].frames.last()` per
    /// operand (see `Machine::val` for the per-call equivalent).
    #[inline]
    fn get(&self, op: Operand) -> i64 {
        match op {
            Operand::Const(c) => c,
            Operand::Local(l) => self.regs[l.index()],
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TState {
    Ready,
    Blocked(BlockReason),
    Done,
}

#[derive(Debug, Clone)]
struct Thr {
    id: ThreadId,
    clock: u64,
    icount: u64,
    frames: Vec<Frame>,
    state: TState,
    block_start: u64,
    barrier_pass: bool,
    /// 0 = not in cond protocol; 2 = woken, must reacquire mutex.
    cond_phase: u8,
    pending_reacquire: Vec<HeldWeak>,
    /// Locks handed to this thread by forced handoffs that its pending
    /// acquire(s) have not yet consumed. A set: several handoffs can land
    /// before the thread runs again.
    weak_granted: Vec<WeakLockId>,
    input_seq: u64,
}

/// Shift the front ready-queue key right to its sorted position after the
/// front thread's clock advanced (the queue is tiny — one entry per ready
/// thread — so a linear shift beats anything clever).
#[inline]
fn reposition_front(queue: &mut [(u64, u32)], k: (u64, u32)) {
    let mut i = 0;
    while i + 1 < queue.len() && queue[i + 1] < k {
        queue[i] = queue[i + 1];
        i += 1;
    }
    queue[i] = k;
}

/// Hot-op budget for one speculative segment (per thread, per round). A
/// fused pair may straddle the cap, so round step-budget accounting
/// reserves `SEG_CAP + 2` steps per segment.
const SEG_CAP: u64 = 2048;

/// Round read/write sets are tracked at cell granularity (`1 <<
/// PAGE_SHIFT` cells per tracking page). Coarser pages would shrink the
/// stamp arrays, but the benched workloads interleave per-thread data at
/// cell distance (radix's 16-cell `rank` slices, ocean's `residual[id]`),
/// so anything coarser than a cell false-shares and discards rounds that
/// are genuinely race-free. Stamping is one compare per access (plus two
/// writes on first touch), which the saved scheduling work amortizes.
const PAGE_SHIFT: u32 = 0;

/// Backoff bounds for the round engine: a failed or trivial round puts
/// attempts on cooldown for `penalty` outer-loop iterations and doubles
/// the penalty up to the cap; a productive commit resets it. Keeps the
/// engine quiet through sync-heavy phases where rounds cannot pay off.
const SPEC_PENALTY_MIN: u64 = 16;
const SPEC_PENALTY_MAX: u64 = 65_536;

/// Memory-access seam of the speculative segment executor
/// ([`run_segment`]): serial rounds run segments directly against
/// [`Memory`] with an undo log; parallel rounds run them against a frozen
/// [`MemSnap`] with a private write overlay. Trap details are
/// deliberately dropped — any speculative trap discards the whole round,
/// and the exact engine then reproduces the trap at its canonical point
/// with the precise message.
trait SegMem {
    fn load(&mut self, addr: i64) -> Result<i64, ()>;
    fn store(&mut self, addr: i64, val: i64) -> Result<(), ()>;
}

/// Serial segment memory: writes go straight to [`Memory`] with the old
/// value pushed onto the round's undo log; read/write pages are stamped
/// into the owning thread's epoch arrays (first touch per round also
/// records the page in the touched list, which is what validation and
/// rollback iterate).
struct DirectSeg<'a> {
    mem: &'a mut Memory,
    undo: &'a mut Vec<(i64, i64)>,
    epoch: u32,
    read_epoch: &'a mut [u32],
    write_epoch: &'a mut [u32],
    touched_read: &'a mut Vec<u32>,
    touched_write: &'a mut Vec<u32>,
}

impl SegMem for DirectSeg<'_> {
    #[inline]
    fn load(&mut self, addr: i64) -> Result<i64, ()> {
        let v = self.mem.load(addr).map_err(drop)?;
        // A successful access proves `1 <= addr < frontier`, so the page
        // index is in range for the stamp arrays sized at round start.
        let page = (addr as u64 >> PAGE_SHIFT) as usize;
        if self.read_epoch[page] != self.epoch {
            self.read_epoch[page] = self.epoch;
            self.touched_read.push(page as u32);
        }
        Ok(v)
    }

    #[inline]
    fn store(&mut self, addr: i64, val: i64) -> Result<(), ()> {
        let old = self.mem.swap(addr, val).map_err(drop)?;
        self.undo.push((addr, old));
        let page = (addr as u64 >> PAGE_SHIFT) as usize;
        if self.write_epoch[page] != self.epoch {
            self.write_epoch[page] = self.epoch;
            self.touched_write.push(page as u32);
        }
        Ok(())
    }
}

/// Parallel segment memory: reads prefer the segment's own overlay, then
/// the frozen snapshot; writes never leave the overlay. Touched pages are
/// pushed eagerly (duplicates and all) and sorted/deduplicated once after
/// the segment. Reads satisfied by the overlay are *not* recorded: a
/// value the segment wrote itself carries no cross-thread dependency, and
/// any other thread touching that page already conflicts with the
/// recorded write.
struct OverlaySeg<'a> {
    snap: MemSnap<'a>,
    writes: std::collections::HashMap<i64, i64>,
    read_pages: Vec<u32>,
    write_pages: Vec<u32>,
}

impl SegMem for OverlaySeg<'_> {
    #[inline]
    fn load(&mut self, addr: i64) -> Result<i64, ()> {
        if let Some(&v) = self.writes.get(&addr) {
            return Ok(v);
        }
        let v = self.snap.load(addr).map_err(drop)?;
        self.read_pages.push((addr as u64 >> PAGE_SHIFT) as u32);
        Ok(v)
    }

    #[inline]
    fn store(&mut self, addr: i64, val: i64) -> Result<(), ()> {
        self.snap.check_writable(addr).map_err(drop)?;
        self.writes.insert(addr, val);
        self.write_pages.push((addr as u64 >> PAGE_SHIFT) as u32);
        Ok(())
    }
}

/// Why a speculative segment stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum SegEnd {
    /// Reached a non-batchable op (sync, call, return, heap, I/O, weak).
    #[default]
    Cold,
    /// Retired [`SEG_CAP`] ops without reaching a scheduling point.
    Cap,
    /// Crossed the round's cold-op bound.
    Bound,
    /// A constituent trapped; the round must be discarded so the exact
    /// engine reproduces the trap at its canonical point.
    Trap,
}

/// One segment's accounting, returned by [`run_segment`].
#[derive(Debug, Clone, Copy, Default)]
struct SegRun {
    /// Ops retired (each counts one step and one instruction).
    ops: u64,
    /// Fused superinstructions dispatched.
    fused: u64,
    /// Loads + stores retired.
    mem_ops: u64,
    /// The thread clock immediately before the last retired op — the
    /// op's scheduler key, which round legality compares against the
    /// earliest cold-op key (meaningless when `ops == 0`).
    last_pre: u64,
    end: SegEnd,
}

/// Immutable inputs of one segment run.
struct SegCtx<'a> {
    func: &'a FlatFunc,
    fcosts: &'a [u64],
    /// Global region base addresses ([`Memory::global_bases`], static).
    globals: &'a [i64],
    id: u32,
    /// Earliest scheduler key of a ready thread already sitting at a cold
    /// op when the round began: no segment op's key may reach it, because
    /// that cold op's memory footprint is not validated against segments.
    bound: Option<(u64, u32)>,
}

/// Execute one speculative hot segment: retire thread-local ops from the
/// fused sidecar arena until a cold op, the cap, the round bound, or a
/// trap. Only legal with jitter off — commits draw no RNG, so per-thread
/// clocks and icounts are independent of cross-thread interleaving, which
/// is what lets the round engine reorder conflict-free segments without
/// observable effect. Fused pairs re-check the bound between constituents
/// (a mid-pair stop rests at `pc + 1`, where the sidecar holds the plain
/// second op); the cap is only checked between whole ops.
fn run_segment<M: SegMem>(
    ctx: &SegCtx<'_>,
    frame: &mut Frame,
    clock: &mut u64,
    icount: &mut u64,
    mem: &mut M,
) -> SegRun {
    let mut run = SegRun::default();
    // The bound is only re-checked after each commit, so a thread whose
    // starting key already reaches it must not retire anything.
    if let Some(b) = ctx.bound {
        if (*clock, ctx.id) >= b {
            run.end = SegEnd::Bound;
            return run;
        }
    }
    macro_rules! commit {
        ($cost:expr) => {{
            run.ops += 1;
            run.last_pre = *clock;
            *icount += 1;
            *clock += $cost;
        }};
    }
    macro_rules! bound_check {
        () => {{
            if let Some(b) = ctx.bound {
                if (*clock, ctx.id) >= b {
                    run.end = SegEnd::Bound;
                    break;
                }
            }
        }};
    }
    loop {
        let pc = frame.pc as usize;
        match ctx.func.fused[pc] {
            FlatOp::Copy { dst, src } => {
                frame.regs[dst.index()] = frame.get(src);
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::UnOp { dst, op: uop, src } => {
                let v = frame.get(src);
                frame.regs[dst.index()] = match uop {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                };
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::BinOp { dst, op: bop, a, b } => {
                let Some(r) = eval_binop(bop, frame.get(a), frame.get(b)) else {
                    run.end = SegEnd::Trap;
                    break;
                };
                frame.regs[dst.index()] = r;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::AddrOfGlobal {
                dst,
                global,
                offset,
            } => {
                frame.regs[dst.index()] = ctx.globals[global.index()] + frame.get(offset);
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::AddrOfSlot {
                dst,
                slot_off,
                offset,
            } => {
                let Some(base) = frame.frame_base else {
                    run.end = SegEnd::Trap;
                    break;
                };
                frame.regs[dst.index()] = base + slot_off + frame.get(offset);
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::AddrOfFunc { dst, func } => {
                frame.regs[dst.index()] = FUNC_PTR_BASE + func.0 as i64;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::PtrAdd { dst, base, offset } => {
                frame.regs[dst.index()] = frame.get(base).wrapping_add(frame.get(offset));
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::Load { dst, addr, .. } => match mem.load(frame.get(addr)) {
                Ok(v) => {
                    frame.regs[dst.index()] = v;
                    frame.pc += 1;
                    run.mem_ops += 1;
                    commit!(ctx.fcosts[pc]);
                }
                Err(()) => {
                    run.end = SegEnd::Trap;
                    break;
                }
            },
            FlatOp::Store { addr, val, .. } => {
                match mem.store(frame.get(addr), frame.get(val)) {
                    Ok(()) => {
                        frame.pc += 1;
                        run.mem_ops += 1;
                        commit!(ctx.fcosts[pc]);
                    }
                    Err(()) => {
                        run.end = SegEnd::Trap;
                        break;
                    }
                }
            }
            FlatOp::Jump { target_pc, .. } => {
                frame.pc = target_pc;
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::Branch {
                cond,
                then_pc,
                else_pc,
                ..
            } => {
                frame.pc = if frame.get(cond) != 0 { then_pc } else { else_pc };
                commit!(ctx.fcosts[pc]);
            }
            FlatOp::FusedGlobalLoad {
                addr_dst,
                global,
                offset,
                dst,
            } => {
                let a = ctx.globals[global.index()] + frame.get(offset);
                frame.regs[addr_dst.index()] = a;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
                bound_check!();
                match mem.load(a) {
                    Ok(v) => {
                        frame.regs[dst.index()] = v;
                        frame.pc += 1;
                        run.mem_ops += 1;
                        commit!(ctx.fcosts[pc + 1]);
                        run.fused += 1;
                    }
                    Err(()) => {
                        run.end = SegEnd::Trap;
                        break;
                    }
                }
            }
            FlatOp::FusedGlobalStore {
                addr_dst,
                global,
                offset,
                val,
            } => {
                let a = ctx.globals[global.index()] + frame.get(offset);
                frame.regs[addr_dst.index()] = a;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
                bound_check!();
                let v = frame.get(val);
                match mem.store(a, v) {
                    Ok(()) => {
                        frame.pc += 1;
                        run.mem_ops += 1;
                        commit!(ctx.fcosts[pc + 1]);
                        run.fused += 1;
                    }
                    Err(()) => {
                        run.end = SegEnd::Trap;
                        break;
                    }
                }
            }
            FlatOp::FusedSlotLoad {
                addr_dst,
                slot_off,
                offset,
                dst,
            } => {
                let Some(base) = frame.frame_base else {
                    run.end = SegEnd::Trap;
                    break;
                };
                let a = base + slot_off + frame.get(offset);
                frame.regs[addr_dst.index()] = a;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
                bound_check!();
                match mem.load(a) {
                    Ok(v) => {
                        frame.regs[dst.index()] = v;
                        frame.pc += 1;
                        run.mem_ops += 1;
                        commit!(ctx.fcosts[pc + 1]);
                        run.fused += 1;
                    }
                    Err(()) => {
                        run.end = SegEnd::Trap;
                        break;
                    }
                }
            }
            FlatOp::FusedSlotStore {
                addr_dst,
                slot_off,
                offset,
                val,
            } => {
                let Some(base) = frame.frame_base else {
                    run.end = SegEnd::Trap;
                    break;
                };
                let a = base + slot_off + frame.get(offset);
                frame.regs[addr_dst.index()] = a;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
                bound_check!();
                let v = frame.get(val);
                match mem.store(a, v) {
                    Ok(()) => {
                        frame.pc += 1;
                        run.mem_ops += 1;
                        commit!(ctx.fcosts[pc + 1]);
                        run.fused += 1;
                    }
                    Err(()) => {
                        run.end = SegEnd::Trap;
                        break;
                    }
                }
            }
            FlatOp::FusedPtrLoad {
                addr_dst,
                base,
                offset,
                dst,
            } => {
                let a = frame.get(base).wrapping_add(frame.get(offset));
                frame.regs[addr_dst.index()] = a;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
                bound_check!();
                match mem.load(a) {
                    Ok(v) => {
                        frame.regs[dst.index()] = v;
                        frame.pc += 1;
                        run.mem_ops += 1;
                        commit!(ctx.fcosts[pc + 1]);
                        run.fused += 1;
                    }
                    Err(()) => {
                        run.end = SegEnd::Trap;
                        break;
                    }
                }
            }
            FlatOp::FusedPtrStore {
                addr_dst,
                base,
                offset,
                val,
            } => {
                let a = frame.get(base).wrapping_add(frame.get(offset));
                frame.regs[addr_dst.index()] = a;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
                bound_check!();
                let v = frame.get(val);
                match mem.store(a, v) {
                    Ok(()) => {
                        frame.pc += 1;
                        run.mem_ops += 1;
                        commit!(ctx.fcosts[pc + 1]);
                        run.fused += 1;
                    }
                    Err(()) => {
                        run.end = SegEnd::Trap;
                        break;
                    }
                }
            }
            FlatOp::FusedCmpBranch {
                dst,
                op: bop,
                a,
                b,
                then_pc,
                else_pc,
            } => {
                let Some(r) = eval_binop(bop, frame.get(a), frame.get(b)) else {
                    run.end = SegEnd::Trap;
                    break;
                };
                frame.regs[dst.index()] = r;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
                bound_check!();
                frame.pc = if r != 0 { then_pc } else { else_pc };
                commit!(ctx.fcosts[pc + 1]);
                run.fused += 1;
            }
            FlatOp::FusedOpAssign {
                tmp,
                op: bop,
                a,
                b,
                dst,
            } => {
                let Some(r) = eval_binop(bop, frame.get(a), frame.get(b)) else {
                    run.end = SegEnd::Trap;
                    break;
                };
                frame.regs[tmp.index()] = r;
                frame.pc += 1;
                commit!(ctx.fcosts[pc]);
                bound_check!();
                frame.regs[dst.index()] = r;
                frame.pc += 1;
                commit!(ctx.fcosts[pc + 1]);
                run.fused += 1;
            }
            // Call/Return, sync, heap, I/O and weak ops end the segment.
            _ => {
                run.end = SegEnd::Cold;
                break;
            }
        }
        bound_check!();
        if run.ops >= SEG_CAP {
            run.end = SegEnd::Cap;
            break;
        }
    }
    run
}

/// `BinOp` evaluation shared by the speculative executor; `None` means
/// the op traps (division or remainder by zero).
#[inline]
fn eval_binop(bop: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match bop {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinOp::Shl => x.wrapping_shl((y & 63) as u32),
        BinOp::Shr => x.wrapping_shr((y & 63) as u32),
        BinOp::BitAnd => x & y,
        BinOp::BitOr => x | y,
        BinOp::BitXor => x ^ y,
        BinOp::Lt => (x < y) as i64,
        BinOp::Le => (x <= y) as i64,
        BinOp::Gt => (x > y) as i64,
        BinOp::Ge => (x >= y) as i64,
        BinOp::Eq => (x == y) as i64,
        BinOp::Ne => (x != y) as i64,
        BinOp::LogAnd => ((x != 0) && (y != 0)) as i64,
        BinOp::LogOr => ((x != 0) || (y != 0)) as i64,
    })
}

/// Per-execution state of the speculative segment-round engine: page
/// epoch stamps and touched-page lists per thread slot, the round-global
/// undo log, reusable per-segment snapshots, and the deterministic
/// backoff that keeps round attempts away from phases where they cannot
/// pay off.
#[derive(Default)]
struct SpecState {
    /// Current round number; a page stamp equal to `epoch` marks a page
    /// as touched this round (stamp arrays are never cleared).
    epoch: u32,
    /// Per thread-slot, per-page stamps (lazily sized each round).
    read_epoch: Vec<Vec<u32>>,
    write_epoch: Vec<Vec<u32>>,
    /// Pages each thread slot touched this round (cleared per segment).
    touched_read: Vec<Vec<u32>>,
    touched_write: Vec<Vec<u32>>,
    /// Round-global store log `(addr, old value)`; per-segment ranges are
    /// delimited by [`SegSnap::undo_start`].
    undo: Vec<(i64, i64)>,
    /// Cached copy of [`Memory::global_bases`] (static after load); owned
    /// here so segment contexts can hold it alongside `&mut Memory`.
    globals: Vec<i64>,
    /// Reusable per-segment snapshots and results (one per participant).
    snaps: Vec<SegSnap>,
    /// Outer-loop iterations to wait before the next round attempt.
    cooldown: u64,
    /// Cooldown charged by the next failed or trivial round (doubles up
    /// to a cap, resets on a productive commit).
    penalty: u64,
}

/// One participating thread's rollback snapshot and segment result.
#[derive(Default)]
struct SegSnap {
    tix: usize,
    pc: u32,
    clock: u64,
    icount: u64,
    regs: Vec<i64>,
    undo_start: usize,
    run: SegRun,
}

/// Do two sorted, deduplicated page lists share an element?
fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Can the segment executor retire this sidecar op? (Mirrors the arms of
/// [`run_segment`]; used to locate the round's cold-op bound.)
fn op_is_hot(op: &FlatOp) -> bool {
    matches!(
        op,
        FlatOp::Copy { .. }
            | FlatOp::UnOp { .. }
            | FlatOp::BinOp { .. }
            | FlatOp::AddrOfGlobal { .. }
            | FlatOp::AddrOfSlot { .. }
            | FlatOp::AddrOfFunc { .. }
            | FlatOp::PtrAdd { .. }
            | FlatOp::Load { .. }
            | FlatOp::Store { .. }
            | FlatOp::Jump { .. }
            | FlatOp::Branch { .. }
            | FlatOp::FusedGlobalLoad { .. }
            | FlatOp::FusedGlobalStore { .. }
            | FlatOp::FusedSlotLoad { .. }
            | FlatOp::FusedSlotStore { .. }
            | FlatOp::FusedPtrLoad { .. }
            | FlatOp::FusedPtrStore { .. }
            | FlatOp::FusedCmpBranch { .. }
            | FlatOp::FusedOpAssign { .. }
    )
}

/// Refresh every ready-queue key from its thread's clock and restore sort
/// order (a committed round advances many clocks at once).
fn refresh_queue_keys(queue: &mut [(u64, u32)], threads: &[Thr]) {
    for k in queue.iter_mut() {
        k.0 = threads[k.1 as usize].clock;
    }
    queue.sort_unstable();
}

struct Machine<'p> {
    program: &'p Program,
    config: &'p ExecConfig,
    /// Hoisted copy of `config.cost` (it is `Copy` and read on every step).
    cost: CostModel,
    mode: InterpMode,
    /// The pre-decoded program (both modes position frames by flat pc).
    flat: FlatProgram,
    /// Per-function, per-pc static commit costs (flat mode only).
    costs: Vec<Vec<u64>>,
    mem: Memory,
    sync: SyncTables,
    threads: Vec<Thr>,
    world: World,
    rng: Rng,
    stats: ExecStats,
    output: Vec<(ThreadId, i64)>,
    trace: Vec<Event>,
    steps: u64,
    finished: Option<Outcome>,
    main_ret: i64,
    block_counts: Vec<Vec<u64>>,
    /// Event kinds the supervisor consumes (set once per run).
    mask: EventMask,
    /// Set whenever a wakeup/spawn may have changed which thread the
    /// scheduler would pick; ends the flat mode's current burst.
    sched_dirty: bool,
    /// Scratch for call/spawn argument marshalling (reused across calls).
    argv: Vec<i64>,
    /// Scratch for `sys_write` payload staging (reused across syscalls).
    io_buf: Vec<i64>,
    /// Checkpoint every N replay-ordered events (0 = off; set once per run
    /// from [`Supervisor::checkpoint_interval`]).
    ckpt_interval: u64,
    /// Replay-ordered events committed so far (counted only when
    /// checkpointing is on).
    ordered_events: u64,
    /// Running FNV-1a digest of schedule-determined state (see
    /// [`Machine::fold_ordered`]).
    ckpt_digest: u64,
    /// Speculative segment-round engine state (flat queue mode only).
    spec: SpecState,
}

/// One FNV-1a fold of a 64-bit word (the checkpoint digest step).
#[inline]
fn fold64(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

enum StepEnd {
    /// Instruction committed; charge this cost.
    Commit(u64),
    /// Thread blocked (no ip advance, no cost).
    Block(BlockReason),
    /// Fatal.
    Trap(String),
}

impl<'p> Machine<'p> {
    fn new(program: &'p Program, config: &'p ExecConfig, mode: InterpMode) -> Machine<'p> {
        let flat = flatten(program);
        let costs = match mode {
            InterpMode::Flat => flat
                .funcs
                .iter()
                .map(|f| static_costs(f, &config.cost, config.log_sync, config.log_weak))
                .collect(),
            InterpMode::Reference => Vec::new(),
        };
        let mem = Memory::new(program);
        // Dense sync tables: globals (where sync objects live) occupy the
        // bottom of the address space, so the frontier right after layout
        // bounds the dense region. The reference mode keeps the original
        // spill-only (`BTreeMap`) tables.
        let sync = match mode {
            InterpMode::Flat => SyncTables::with_dense_limits(mem.frontier(), program.weak_locks),
            InterpMode::Reference => SyncTables::default(),
        };
        let world = World::new(config.seed, config.io);
        let rng = Rng::seed_from_u64(config.seed);
        let mut m = Machine {
            program,
            config,
            cost: config.cost,
            mode,
            flat,
            costs,
            mem,
            sync,
            threads: Vec::new(),
            world,
            rng,
            stats: ExecStats::default(),
            output: Vec::new(),
            trace: Vec::new(),
            steps: 0,
            finished: None,
            main_ret: 0,
            block_counts: program
                .funcs
                .iter()
                .map(|f| vec![0u64; f.blocks.len()])
                .collect(),
            mask: EventMask::ALL,
            sched_dirty: false,
            argv: Vec::new(),
            io_buf: Vec::new(),
            ckpt_interval: 0,
            ordered_events: 0,
            ckpt_digest: 0xcbf2_9ce4_8422_2325,
            spec: SpecState {
                penalty: SPEC_PENALTY_MIN,
                ..SpecState::default()
            },
        };
        let main = program.main();
        m.spawn_thread(main, &[], 0);
        m
    }

    fn spawn_thread(&mut self, func: FuncId, args: &[i64], clock: u64) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        let frame = self.make_frame(func, args, None);
        self.threads.push(Thr {
            id,
            clock,
            icount: 0,
            frames: vec![frame],
            state: TState::Ready,
            block_start: 0,
            barrier_pass: false,
            cond_phase: 0,
            pending_reacquire: Vec::new(),
            weak_granted: Vec::new(),
            input_seq: 0,
        });
        self.stats.threads += 1;
        self.sched_dirty = true;
        id
    }

    fn make_frame(&mut self, func: FuncId, args: &[i64], ret_dst: Option<LocalId>) -> Frame {
        let f = &self.program.funcs[func.index()];
        let layout = &self.flat.layouts[func.index()];
        let mut regs = vec![0i64; f.locals.len()];
        for (i, &p) in f.params.iter().enumerate() {
            regs[p.index()] = args.get(i).copied().unwrap_or(0);
        }
        let frame_base = if layout.frame_size > 0 {
            Some(self.mem.alloc(layout.frame_size, RegionKind::Frame(func)))
        } else {
            None
        };
        self.count_block(func, f.entry);
        Frame {
            func,
            pc: self.flat.funcs[func.index()].entry_pc,
            regs,
            frame_base,
            ret_dst,
            held_weak: Vec::new(),
        }
    }

    /// Deliver `ev` to the supervisor (if it is in the mask) and to the
    /// trace (if one is being collected). Construction of allocating
    /// events is additionally gated by [`Machine::wants`] on the flat path.
    fn emit(&mut self, sup: &mut dyn Supervisor, ev: Event) {
        let boundary = self.ckpt_interval != 0 && self.fold_ordered(&ev);
        if self.mask.contains(ev.kind()) {
            sup.on_event(&ev);
        }
        if self.config.collect_trace {
            self.trace.push(ev);
        }
        if boundary {
            sup.on_checkpoint(self.ordered_events, self.ckpt_digest);
        }
    }

    /// Fold a replay-ordered event into the running checkpoint digest;
    /// returns true when this event lands on a checkpoint boundary.
    ///
    /// Only *schedule-determined* state goes in: the event's kind, object,
    /// committing thread, payload words, and the committing thread's own
    /// retired-instruction count — plus, at boundaries, that thread's live
    /// registers. For a DRF (or weak-lock-instrumented) program these are
    /// functions of the enforced order and recorded inputs, so a
    /// conforming replay reproduces the digest exactly. Clocks, jitter, or
    /// a full-memory hash would not survive mid-run comparison: threads
    /// *between* their own sync points legitimately sit at different
    /// instructions under different schedules.
    fn fold_ordered(&mut self, ev: &Event) -> bool {
        let (tag, thread, obj): (u64, u32, u64) = match ev {
            Event::Sync { thread, kind, addr, .. } => match kind {
                SyncKind::Mutex => (1, thread.0, *addr as u64),
                SyncKind::Cond => (2, thread.0, *addr as u64),
                SyncKind::Spawn => (3, thread.0, 0),
                // Barrier releases and joins are deterministic given the
                // rest of the order; they are not replay-ordered.
                SyncKind::Barrier | SyncKind::Join => return false,
            },
            Event::Output { thread, .. } => (4, thread.0, 0),
            Event::Input { thread, .. } => (5, thread.0, 0),
            Event::WeakAcquire { thread, lock, .. } => (6, thread.0, lock.0 as u64),
            Event::WeakForcedRelease { lock, holder, .. } => (7, holder.0, lock.0 as u64),
            _ => return false,
        };
        let mut h = self.ckpt_digest;
        h = fold64(h, tag);
        h = fold64(h, thread as u64);
        h = fold64(h, obj);
        // Deliberately NOT folded: the committing thread's retired
        // instruction count. Barrier releases retire the wait instruction
        // once extra on whichever thread arrives last — unordered by
        // design — so icount is not a function of the replayed orders.
        match ev {
            Event::Output { data, .. } | Event::Input { data, .. } => {
                h = fold64(h, data.len() as u64);
                for &w in data {
                    h = fold64(h, w as u64);
                }
            }
            Event::WeakForcedRelease { icount, parked, .. } => {
                h = fold64(h, *icount);
                h = fold64(h, *parked as u64);
            }
            _ => {}
        }
        self.ordered_events += 1;
        let boundary = self.ordered_events.is_multiple_of(self.ckpt_interval);
        if boundary {
            // The committing thread sits at its own ordered event, so its
            // top frame's registers are schedule-determined here.
            if let Some(fr) = self.threads[thread as usize].frames.last() {
                h = fold64(h, fr.regs.len() as u64);
                for &r in &fr.regs {
                    h = fold64(h, r as u64);
                }
            }
        }
        self.ckpt_digest = h;
        boundary
    }

    /// Would an event of kind `k` be observed by anyone? When false, the
    /// flat path skips building the event (and any payload clone) entirely.
    /// Checkpointing forces construction of the replay-ordered kinds so
    /// every one of them reaches the digest fold.
    #[inline]
    fn wants(&self, k: EventKind) -> bool {
        self.config.collect_trace
            || self.mask.contains(k)
            || (self.ckpt_interval != 0
                && matches!(
                    k,
                    EventKind::Sync
                        | EventKind::Output
                        | EventKind::Input
                        | EventKind::WeakAcquire
                        | EventKind::WeakForcedRelease
                ))
    }

    /// Does the attached supervisor consume detector-feed events of kind
    /// `k` (`Load`/`Store`/`SyncRelease`/`BarrierResume`)? Unlike
    /// [`Machine::wants`], `collect_trace` does not force these on: they
    /// exist to feed a happens-before detector, and keeping them out of
    /// the trace preserves the byte-identical trace contract the
    /// differential and replay suites pin.
    #[inline]
    fn wants_hb(&self, k: EventKind) -> bool {
        self.mask.contains(k)
    }

    /// Deliver a detector-feed event. Never pushed into the collected
    /// trace (see [`Machine::wants_hb`]); callers check `wants_hb` first
    /// so the hot path pays one mask test and zero construction when no
    /// detector is attached.
    #[inline]
    fn emit_hb(&mut self, sup: &mut dyn Supervisor, ev: Event) {
        debug_assert!(self.mask.contains(ev.kind()));
        sup.on_event(&ev);
    }

    fn run(mut self, sup: &mut dyn Supervisor) -> ExecResult {
        self.mask = sup.event_mask();
        self.ckpt_interval = sup.checkpoint_interval();
        if self.config.collect_trace {
            self.trace.reserve(1024);
        }
        // Non-baseline strategies drive both modes through one shared
        // per-step loop, so a (strategy, seed) pair is bit-identical
        // across interpreters by construction (and none of the flat
        // fast paths — queue, batch, segment rounds — ever engage).
        if !self.config.sched.is_baseline() {
            return self.run_strategy(sup);
        }
        match self.mode {
            InterpMode::Reference => self.run_reference(sup),
            InterpMode::Flat => self.run_flat(sup),
        }
    }

    /// The strategy scheduling loop (see [`crate::sched`]): per step the
    /// pluggable scheduler picks among ready threads, the mode-specific
    /// stepper executes one op, and the scheduler observes the retired
    /// step (with a boundary classification read from the pre-decoded
    /// code, which both modes share). Everything else — injected
    /// releases, timeout scans, deadlock resolution — mirrors
    /// [`Machine::run_reference`] exactly.
    ///
    /// Strategies draw from their own salted RNG stream, so the jitter
    /// draws in [`Machine::commit_ok`] are untouched; the only difference
    /// from the baseline loops is *which* ready thread runs.
    fn run_strategy(mut self, sup: &mut dyn Supervisor) -> ExecResult {
        let injects = sup.injects_forced_releases();
        let mut sched = self.config.sched.build(self.config.seed);
        let wants_boundaries = sched.wants_boundaries();
        let outcome = loop {
            if let Some(outcome) = self.finished.take() {
                break outcome;
            }
            if injects {
                self.apply_injected_releases(sup);
            }
            sched.track_threads(self.threads.len());
            let chosen = {
                let mut ready = self
                    .threads
                    .iter()
                    .filter(|t| t.state == TState::Ready)
                    .map(|t| (t.id.0, t.clock));
                sched.pick(&mut ready)
            };
            let Some(tid0) = chosen else {
                if self.threads.iter().all(|t| t.state == TState::Done) {
                    break Outcome::Exited(self.main_ret);
                }
                if self.config.timeout_enabled && self.try_force_any(sup) {
                    continue;
                }
                break Outcome::Deadlock {
                    blocked: self.blocked_summary(),
                };
            };
            let tid = ThreadId(tid0);

            if self.config.timeout_enabled {
                let now = self.threads[tid.index()].clock;
                if self.try_force_timed_out(sup, now) {
                    continue;
                }
            }

            let boundary = wants_boundaries && self.at_boundary(tid);
            match self.mode {
                InterpMode::Flat => {
                    self.step_flat(sup, tid);
                }
                InterpMode::Reference => self.step_reference(sup, tid),
            }
            self.steps += 1;
            if self.steps > self.config.max_steps {
                break Outcome::StepLimit;
            }
            sched.note_step(tid.0, self.steps, boundary);
        };
        self.stats.sched_preemptions = sched.preemptions();
        self.finish(outcome)
    }

    /// Does `tid`'s next op sit at a weak-lock acquire/release site or a
    /// shared-access site (`Load`/`Store`, which carry their static
    /// `AccessId`)? Classified from the pre-decoded code both interpreter
    /// modes share, so it is mode-independent; a pending forced
    /// reacquire counts as an acquire boundary (the step will execute the
    /// reacquire protocol instead of the op at `pc`).
    fn at_boundary(&self, tid: ThreadId) -> bool {
        let t = &self.threads[tid.index()];
        if !t.pending_reacquire.is_empty() {
            return true;
        }
        let Some(frame) = t.frames.last() else {
            return false;
        };
        matches!(
            self.flat.funcs[frame.func.index()].code[frame.pc as usize],
            FlatOp::Load { .. }
                | FlatOp::Store { .. }
                | FlatOp::WeakAcquire { .. }
                | FlatOp::WeakRelease { .. }
        )
    }

    /// The original scheduling loop: per step, poll every thread for
    /// injected releases, scan all threads for the minimum clock, scan for
    /// timed-out weak waiters, then execute one cloned instruction.
    fn run_reference(mut self, sup: &mut dyn Supervisor) -> ExecResult {
        loop {
            if let Some(outcome) = self.finished.take() {
                return self.finish(outcome);
            }
            // Supervisor-injected forced releases (replay of §2.3 events).
            self.apply_injected_releases(sup);

            // Pick the ready thread with the smallest clock.
            let chosen = self
                .threads
                .iter()
                .filter(|t| t.state == TState::Ready)
                .min_by_key(|t| (t.clock, t.id))
                .map(|t| t.id);

            let Some(tid) = chosen else {
                if self.threads.iter().all(|t| t.state == TState::Done) {
                    let ret = self.main_ret;
                    return self.finish(Outcome::Exited(ret));
                }
                // Nothing ready: a weak-lock waiter justifies a forced
                // release (the holder is itself blocked — §2.3's deadlock
                // scenario).
                if self.config.timeout_enabled && self.try_force_any(sup) {
                    continue;
                }
                return self.finish_deadlock();
            };

            // Starvation check against the global "now".
            if self.config.timeout_enabled {
                let now = self.threads[tid.index()].clock;
                if self.try_force_timed_out(sup, now) {
                    continue;
                }
            }

            self.step_reference(sup, tid);
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return self.finish(Outcome::StepLimit);
            }
        }
    }

    /// The flat scheduling loop. One scan finds both the minimum-clock
    /// ready thread and the runner-up key, then the chosen thread runs a
    /// *burst*: it keeps stepping with no rescan for as long as the
    /// scheduling decision provably cannot change — it stays ready, its
    /// key stays below the runner-up's, no wakeup/spawn touched another
    /// thread (`sched_dirty`), no weak-lock waiter could time out, and the
    /// supervisor never injects forced releases. Each of those conditions
    /// is exactly what the per-step rescan of the reference loop exists to
    /// notice, so bursts are semantics-preserving by construction.
    fn run_flat(mut self, sup: &mut dyn Supervisor) -> ExecResult {
        let injects = sup.injects_forced_releases();
        // With no supervisor injection and no weak-lock timeouts, scheduling
        // only changes at blocks/wakes/spawns — all of which set
        // `sched_dirty`. That lets the hot path run off a small sorted
        // ready-queue of (clock, id) keys instead of rescanning every `Thr`
        // per step: rebuild on dirty, reposition just the stepped thread's
        // key otherwise. The front of the queue is always the scan's
        // minimum, so the schedule is bit-identical to the reference scan.
        let queue_mode =
            !(injects || (self.config.timeout_enabled && self.flat.has_weak_ops));
        // Batch commit (DESIGN.md §13): when the supervisor also masks out
        // per-op Load/Store happens-before events, runs of thread-local hot
        // ops have *no* per-op obligations beyond cost/clock/step
        // accounting, so the queue schedule can be driven from a tight
        // inner loop over the fused sidecar arena instead of the
        // step-dispatch path.
        let batch_ok = queue_mode
            && !self.wants_hb(EventKind::Load)
            && !self.wants_hb(EventKind::Store);
        let mut queue: Vec<(u64, u32)> = Vec::new();
        loop {
            if let Some(outcome) = self.finished.take() {
                return self.finish(outcome);
            }
            if injects {
                self.apply_injected_releases(sup);
            }

            // One scan: best ready key, runner-up ready key, weak-blocked
            // presence, all-done.
            let mut best: Option<(u64, u32)> = None;
            let mut second: Option<(u64, u32)> = None;
            let mut any_weak_blocked = false;
            let mut all_done = true;
            for t in &self.threads {
                match &t.state {
                    TState::Ready => {
                        all_done = false;
                        let k = (t.clock, t.id.0);
                        match best {
                            Some(b) if k >= b => {
                                if second.is_none_or(|s| k < s) {
                                    second = Some(k);
                                }
                            }
                            _ => {
                                second = best;
                                best = Some(k);
                            }
                        }
                    }
                    TState::Done => {}
                    TState::Blocked(r) => {
                        all_done = false;
                        if matches!(r, BlockReason::Weak(..)) {
                            any_weak_blocked = true;
                        }
                    }
                }
            }

            let Some((_, tid0)) = best else {
                if all_done {
                    let ret = self.main_ret;
                    return self.finish(Outcome::Exited(ret));
                }
                if self.config.timeout_enabled && self.try_force_any(sup) {
                    continue;
                }
                return self.finish_deadlock();
            };
            let tid = ThreadId(tid0);

            if self.config.timeout_enabled {
                let now = self.threads[tid.index()].clock;
                if self.try_force_timed_out(sup, now) {
                    continue;
                }
            }

            if queue_mode {
                queue.clear();
                for t in &self.threads {
                    if t.state == TState::Ready {
                        queue.push((t.clock, t.id.0));
                    }
                }
                queue.sort_unstable();
                self.sched_dirty = false;
                if batch_ok {
                    if let Some(outcome) = self.run_queue_hot(sup, &mut queue) {
                        return self.finish(outcome);
                    }
                    continue;
                }
                while let Some(&(_, id)) = queue.first() {
                    let next = self.step_flat(sup, ThreadId(id));
                    self.steps += 1;
                    if self.steps > self.config.max_steps {
                        return self.finish(Outcome::StepLimit);
                    }
                    if self.finished.is_some() || self.sched_dirty {
                        break;
                    }
                    let Some(clock) = next else {
                        // Blocked (a `Done` transition marks the scheduler
                        // dirty and breaks above): drop it from the queue.
                        queue.remove(0);
                        continue;
                    };
                    // Only the stepped thread's clock moved: shift its key
                    // right to its new sorted position (the queue is tiny —
                    // one entry per ready thread).
                    reposition_front(&mut queue, (clock, id));
                }
                continue;
            }

            // With a weak-lock waiter present and timeouts armed, the
            // chosen thread's advancing clock can expire the waiter at any
            // step, so the timeout scan must run per step: no burst.
            let can_burst = !(injects || (self.config.timeout_enabled && any_weak_blocked));
            self.sched_dirty = false;
            loop {
                let next = self.step_flat(sup, tid);
                self.steps += 1;
                if self.steps > self.config.max_steps {
                    return self.finish(Outcome::StepLimit);
                }
                if !can_burst || self.finished.is_some() || self.sched_dirty {
                    break;
                }
                let Some(clock) = next else {
                    break;
                };
                if let Some(s) = second {
                    if (clock, tid.0) >= s {
                        break;
                    }
                }
            }
        }
    }

    /// The batch-commit engine: drives the queue-mode schedule from a
    /// tight cross-thread loop that dispatches the fused sidecar arena
    /// and accumulates cost/clock/step accounting in locals, written back
    /// once on exit.
    ///
    /// Legality (DESIGN.md §13): queue mode already excludes supervisor
    /// injection and weak-lock timeouts, and the caller additionally
    /// requires that per-op `Load`/`Store` happens-before events are
    /// masked out. Every op dispatched inline here is thread-local and
    /// non-blocking (sync, I/O, calls, heap, weak ops and returns fall
    /// out to [`Self::step_flat`]), so a retiring hot op's only
    /// obligations are the commit itself — identical RNG draws included —
    /// the step budget, and the scheduling bound against the runner-up
    /// queue key. `pending_reacquire` is provably empty in queue mode
    /// (forced releases require injection or timeouts), event emission
    /// and checkpoint folds are inert, and block counts are maintained
    /// inline. The observable execution is therefore bit-identical to
    /// single-step dispatch; only the [`VmPerf`] strategy counters
    /// differ.
    ///
    /// Returns `Some(outcome)` when the run ends the execution (step
    /// limit); `None` hands control back to the scheduler loop (queue
    /// empty, `finished` set, or `sched_dirty` after a cold op).
    fn run_queue_hot(
        &mut self,
        sup: &mut dyn Supervisor,
        queue: &mut Vec<(u64, u32)>,
    ) -> Option<Outcome> {
        enum RunEnd {
            /// Next op is not batchable: single-step it at the dispatcher.
            Cold,
            /// The thread's clock crossed the runner-up key; payload is
            /// the new clock for the queue reposition.
            Yield(u64),
            /// A constituent trapped.
            Trap(String),
            /// Step budget exhausted (the op at the limit has committed).
            Limit,
        }

        let jit_period = self.config.jitter.period;
        let jit_magnitude = self.config.jitter.magnitude;
        let count_blocks = self.config.count_blocks;
        let max_steps = self.config.max_steps;
        let mut steps = self.steps;
        let mut instrs = 0u64;
        let mut mem_ops = 0u64;
        let mut fused_ops = 0u64;
        let mut batch_runs = 0u64;
        let mut batched_ops = 0u64;
        // Speculative rounds additionally require jitter off (hot commits
        // must draw no RNG, or run-ahead would reorder the stream) and
        // block counting off (hot control flow must stay write-free
        // outside thread-local state).
        let rounds_ok = jit_period == 0 && !count_blocks;

        let result = loop {
            if rounds_ok && queue.len() >= 2 {
                if self.spec.cooldown > 0 {
                    self.spec.cooldown -= 1;
                } else if self.try_round(queue, &mut steps) {
                    continue;
                }
            }
            let Some(&(_, id)) = queue.first() else {
                break None;
            };
            let tix = id as usize;
            debug_assert!(
                self.threads[tix].pending_reacquire.is_empty(),
                "queue mode excludes forced releases"
            );
            let run_start = batched_ops;
            // One uninterrupted same-thread run. Disjoint field borrows:
            // the thread's frame/clock/icount mutably, everything else
            // (`flat`, `costs`, `mem`, `rng`, `block_counts`) through
            // separate fields of `self`.
            let end = {
                let Thr {
                    frames,
                    clock,
                    icount,
                    ..
                } = &mut self.threads[tix];
                let frame = frames.last_mut().expect("live thread has frames");
                let fidx = frame.func.index();
                let func = &self.flat.funcs[fidx];
                let fcosts = &self.costs[fidx];
                let bound = queue.get(1).copied();

                // One constituent's commit: identical arithmetic and RNG
                // draw order to `commit_ok`, against the hoisted locals.
                macro_rules! commit {
                    ($cost:expr) => {{
                        instrs += 1;
                        let mut total = $cost;
                        if jit_period > 0 && self.rng.gen_range(0..jit_period) == 0 {
                            total += self.rng.gen_range(0..=jit_magnitude);
                        }
                        *icount += 1;
                        *clock += total;
                        steps += 1;
                        batched_ops += 1;
                    }};
                }
                // Post-commit scheduling checks, also applied *between*
                // the two constituents of a fused op (a mid-pair yield
                // resumes at `pc + 1`, where the sidecar holds the plain
                // second op).
                macro_rules! recheck {
                    () => {{
                        if steps > max_steps {
                            break RunEnd::Limit;
                        }
                        if let Some(b) = bound {
                            if (*clock, id) >= b {
                                break RunEnd::Yield(*clock);
                            }
                        }
                    }};
                }
                macro_rules! binop_eval {
                    ($bop:expr, $x:expr, $y:expr) => {{
                        let (x, y) = ($x, $y);
                        match $bop {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::Div => {
                                if y == 0 {
                                    break RunEnd::Trap("division by zero".into());
                                }
                                x.wrapping_div(y)
                            }
                            BinOp::Rem => {
                                if y == 0 {
                                    break RunEnd::Trap("remainder by zero".into());
                                }
                                x.wrapping_rem(y)
                            }
                            BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                            BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                            BinOp::BitAnd => x & y,
                            BinOp::BitOr => x | y,
                            BinOp::BitXor => x ^ y,
                            BinOp::Lt => (x < y) as i64,
                            BinOp::Le => (x <= y) as i64,
                            BinOp::Gt => (x > y) as i64,
                            BinOp::Ge => (x >= y) as i64,
                            BinOp::Eq => (x == y) as i64,
                            BinOp::Ne => (x != y) as i64,
                            BinOp::LogAnd => ((x != 0) && (y != 0)) as i64,
                            BinOp::LogOr => ((x != 0) || (y != 0)) as i64,
                        }
                    }};
                }

                loop {
                    let pc = frame.pc as usize;
                    match func.fused[pc] {
                        FlatOp::Copy { dst, src } => {
                            frame.regs[dst.index()] = frame.get(src);
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                        }
                        FlatOp::UnOp { dst, op: uop, src } => {
                            let v = frame.get(src);
                            frame.regs[dst.index()] = match uop {
                                UnOp::Neg => v.wrapping_neg(),
                                UnOp::Not => (v == 0) as i64,
                            };
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                        }
                        FlatOp::BinOp { dst, op: bop, a, b } => {
                            let r = binop_eval!(bop, frame.get(a), frame.get(b));
                            frame.regs[dst.index()] = r;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                        }
                        FlatOp::AddrOfGlobal {
                            dst,
                            global,
                            offset,
                        } => {
                            let base = self.mem.global_base(global);
                            frame.regs[dst.index()] = base + frame.get(offset);
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                        }
                        FlatOp::AddrOfSlot {
                            dst,
                            slot_off,
                            offset,
                        } => {
                            let Some(base) = frame.frame_base else {
                                break RunEnd::Trap("frame has no slot area".into());
                            };
                            frame.regs[dst.index()] = base + slot_off + frame.get(offset);
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                        }
                        FlatOp::AddrOfFunc { dst, func } => {
                            frame.regs[dst.index()] = FUNC_PTR_BASE + func.0 as i64;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                        }
                        FlatOp::PtrAdd { dst, base, offset } => {
                            frame.regs[dst.index()] =
                                frame.get(base).wrapping_add(frame.get(offset));
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                        }
                        FlatOp::Load { dst, addr, .. } => {
                            let a = frame.get(addr);
                            match self.mem.load(a) {
                                Ok(v) => {
                                    frame.regs[dst.index()] = v;
                                    frame.pc += 1;
                                    mem_ops += 1;
                                    commit!(fcosts[pc]);
                                }
                                Err(t) => break RunEnd::Trap(t.to_string()),
                            }
                        }
                        FlatOp::Store { addr, val, .. } => {
                            let a = frame.get(addr);
                            let v = frame.get(val);
                            match self.mem.store(a, v) {
                                Ok(()) => {
                                    frame.pc += 1;
                                    mem_ops += 1;
                                    commit!(fcosts[pc]);
                                }
                                Err(t) => break RunEnd::Trap(t.to_string()),
                            }
                        }
                        FlatOp::Jump {
                            target_pc,
                            target_block,
                        } => {
                            frame.pc = target_pc;
                            if count_blocks {
                                self.block_counts[fidx][target_block.index()] += 1;
                            }
                            commit!(fcosts[pc]);
                        }
                        FlatOp::Branch {
                            cond,
                            then_pc,
                            then_block,
                            else_pc,
                            else_block,
                        } => {
                            let (t, b) = if frame.get(cond) != 0 {
                                (then_pc, then_block)
                            } else {
                                (else_pc, else_block)
                            };
                            frame.pc = t;
                            if count_blocks {
                                self.block_counts[fidx][b.index()] += 1;
                            }
                            commit!(fcosts[pc]);
                        }

                        // ---- fused superinstructions: two constituents,
                        // two commits, bound re-checked between them ----
                        FlatOp::FusedGlobalLoad {
                            addr_dst,
                            global,
                            offset,
                            dst,
                        } => {
                            let a = self.mem.global_base(global) + frame.get(offset);
                            frame.regs[addr_dst.index()] = a;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                            recheck!();
                            match self.mem.load(a) {
                                Ok(v) => {
                                    frame.regs[dst.index()] = v;
                                    frame.pc += 1;
                                    mem_ops += 1;
                                    commit!(fcosts[pc + 1]);
                                    fused_ops += 1;
                                }
                                Err(t) => break RunEnd::Trap(t.to_string()),
                            }
                        }
                        FlatOp::FusedGlobalStore {
                            addr_dst,
                            global,
                            offset,
                            val,
                        } => {
                            let a = self.mem.global_base(global) + frame.get(offset);
                            frame.regs[addr_dst.index()] = a;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                            recheck!();
                            let v = frame.get(val);
                            match self.mem.store(a, v) {
                                Ok(()) => {
                                    frame.pc += 1;
                                    mem_ops += 1;
                                    commit!(fcosts[pc + 1]);
                                    fused_ops += 1;
                                }
                                Err(t) => break RunEnd::Trap(t.to_string()),
                            }
                        }
                        FlatOp::FusedSlotLoad {
                            addr_dst,
                            slot_off,
                            offset,
                            dst,
                        } => {
                            let Some(base) = frame.frame_base else {
                                break RunEnd::Trap("frame has no slot area".into());
                            };
                            let a = base + slot_off + frame.get(offset);
                            frame.regs[addr_dst.index()] = a;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                            recheck!();
                            match self.mem.load(a) {
                                Ok(v) => {
                                    frame.regs[dst.index()] = v;
                                    frame.pc += 1;
                                    mem_ops += 1;
                                    commit!(fcosts[pc + 1]);
                                    fused_ops += 1;
                                }
                                Err(t) => break RunEnd::Trap(t.to_string()),
                            }
                        }
                        FlatOp::FusedSlotStore {
                            addr_dst,
                            slot_off,
                            offset,
                            val,
                        } => {
                            let Some(base) = frame.frame_base else {
                                break RunEnd::Trap("frame has no slot area".into());
                            };
                            let a = base + slot_off + frame.get(offset);
                            frame.regs[addr_dst.index()] = a;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                            recheck!();
                            let v = frame.get(val);
                            match self.mem.store(a, v) {
                                Ok(()) => {
                                    frame.pc += 1;
                                    mem_ops += 1;
                                    commit!(fcosts[pc + 1]);
                                    fused_ops += 1;
                                }
                                Err(t) => break RunEnd::Trap(t.to_string()),
                            }
                        }
                        FlatOp::FusedPtrLoad {
                            addr_dst,
                            base,
                            offset,
                            dst,
                        } => {
                            let a = frame.get(base).wrapping_add(frame.get(offset));
                            frame.regs[addr_dst.index()] = a;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                            recheck!();
                            match self.mem.load(a) {
                                Ok(v) => {
                                    frame.regs[dst.index()] = v;
                                    frame.pc += 1;
                                    mem_ops += 1;
                                    commit!(fcosts[pc + 1]);
                                    fused_ops += 1;
                                }
                                Err(t) => break RunEnd::Trap(t.to_string()),
                            }
                        }
                        FlatOp::FusedPtrStore {
                            addr_dst,
                            base,
                            offset,
                            val,
                        } => {
                            let a = frame.get(base).wrapping_add(frame.get(offset));
                            frame.regs[addr_dst.index()] = a;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                            recheck!();
                            let v = frame.get(val);
                            match self.mem.store(a, v) {
                                Ok(()) => {
                                    frame.pc += 1;
                                    mem_ops += 1;
                                    commit!(fcosts[pc + 1]);
                                    fused_ops += 1;
                                }
                                Err(t) => break RunEnd::Trap(t.to_string()),
                            }
                        }
                        FlatOp::FusedCmpBranch {
                            dst,
                            op: bop,
                            a,
                            b,
                            then_pc,
                            else_pc,
                        } => {
                            let r = binop_eval!(bop, frame.get(a), frame.get(b));
                            frame.regs[dst.index()] = r;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                            recheck!();
                            let t = if r != 0 { then_pc } else { else_pc };
                            frame.pc = t;
                            if count_blocks {
                                // Target blocks are dropped from the fused
                                // form; recover via the pc→block map.
                                self.block_counts[fidx][func.pc_block[t as usize] as usize] += 1;
                            }
                            commit!(fcosts[pc + 1]);
                            fused_ops += 1;
                        }
                        FlatOp::FusedOpAssign {
                            tmp,
                            op: bop,
                            a,
                            b,
                            dst,
                        } => {
                            let r = binop_eval!(bop, frame.get(a), frame.get(b));
                            frame.regs[tmp.index()] = r;
                            frame.pc += 1;
                            commit!(fcosts[pc]);
                            recheck!();
                            frame.regs[dst.index()] = r;
                            frame.pc += 1;
                            commit!(fcosts[pc + 1]);
                            fused_ops += 1;
                        }

                        // Call, Return, sync, heap, I/O, weak ops: not
                        // batchable — hand back to the step dispatcher.
                        _ => break RunEnd::Cold,
                    }
                    recheck!();
                }
            };
            if batched_ops > run_start {
                batch_runs += 1;
            }
            match end {
                RunEnd::Cold => {
                    // Single-step the cold op through the ordinary path —
                    // byte-identical dispatch, including `StepEnd`
                    // accounting and event emission.
                    let next = self.step_flat(sup, ThreadId(id));
                    steps += 1;
                    if steps > max_steps {
                        break Some(Outcome::StepLimit);
                    }
                    if self.finished.is_some() || self.sched_dirty {
                        break None;
                    }
                    match next {
                        None => {
                            // Blocked (a `Done` transition marks the
                            // scheduler dirty and breaks above).
                            queue.remove(0);
                        }
                        Some(clock) => reposition_front(queue, (clock, id)),
                    }
                }
                RunEnd::Yield(clock) => reposition_front(queue, (clock, id)),
                RunEnd::Trap(message) => {
                    self.trap(ThreadId(id), message);
                    break None;
                }
                RunEnd::Limit => break Some(Outcome::StepLimit),
            }
        };

        self.steps = steps;
        self.stats.instrs += instrs;
        self.stats.mem_ops += mem_ops;
        self.stats.vm.fused_ops += fused_ops;
        self.stats.vm.batch_runs += batch_runs;
        self.stats.vm.batched_ops += batched_ops;
        result
    }

    /// Attempt one speculative segment round: run every ready thread
    /// ahead through hot ops to its next scheduling point, certify the
    /// segments pairwise race-free on page-granular read/write sets, and
    /// keep only ops that canonically precede everything the round did
    /// not execute. Only called with jitter off (commits draw no RNG),
    /// block counting off, and the batch gate up (hot ops emit no
    /// events) — the combination that makes reordering conflict-free
    /// segments unobservable.
    ///
    /// Returns `true` when the round committed ops (queue keys have been
    /// refreshed); `false` leaves the machine bit-exactly as before the
    /// call, apart from backoff bookkeeping.
    fn try_round(&mut self, queue: &mut [(u64, u32)], steps: &mut u64) -> bool {
        let n = queue.len() as u64;
        // Reserve the worst case up front so committed segments need no
        // per-op budget checks (a fused pair may straddle the cap).
        if steps.saturating_add(n * (SEG_CAP + 2)) > self.config.max_steps {
            self.spec.cooldown = self.spec.penalty;
            return false;
        }
        self.prepare_round(queue);
        // Earliest key among ready threads already sitting at a cold op:
        // segments must stop strictly before it (the queue is sorted, so
        // the first cold thread has the minimal cold key).
        let bound0 = queue.iter().copied().find(|&(_, id)| {
            let f = self.threads[id as usize]
                .frames
                .last()
                .expect("live thread has frames");
            !op_is_hot(&self.flat.funcs[f.func.index()].fused[f.pc as usize])
        });
        let parallel = self.config.parallelism > 1 && !serial_requested();
        let committed = if parallel {
            self.round_par(queue, bound0)
        } else {
            self.round_direct(queue, bound0)
        };
        let total = match committed {
            Some(total) => total,
            None => {
                self.stats.vm.spec_discards += 1;
                self.spec.cooldown = self.spec.penalty;
                self.spec.penalty = (self.spec.penalty * 2).min(SPEC_PENALTY_MAX);
                return false;
            }
        };
        if total >= 4 * n {
            self.spec.penalty = SPEC_PENALTY_MIN;
            self.spec.cooldown = 0;
        } else {
            // Legal but trivial (per-op thread alternation): keep what
            // committed, then back off — the exact batch engine handles
            // this phase with less overhead.
            self.spec.cooldown = self.spec.penalty;
            self.spec.penalty = (self.spec.penalty * 2).min(SPEC_PENALTY_MAX);
        }
        if total == 0 {
            return false;
        }
        *steps += total;
        self.stats.vm.spec_rounds += 1;
        if parallel {
            self.stats.vm.par_rounds += 1;
        }
        refresh_queue_keys(queue, &self.threads);
        true
    }

    /// Size the per-thread page-stamp arrays for the current address
    /// frontier and open a new round epoch.
    fn prepare_round(&mut self, queue: &[(u64, u32)]) {
        let spec = &mut self.spec;
        if spec.globals.len() != self.mem.global_bases().len() {
            spec.globals = self.mem.global_bases().to_vec();
        }
        let pages = (self.mem.frontier() as u64 >> PAGE_SHIFT) as usize + 1;
        let slots = self.threads.len();
        if spec.read_epoch.len() < slots {
            spec.read_epoch.resize_with(slots, Vec::new);
            spec.write_epoch.resize_with(slots, Vec::new);
            spec.touched_read.resize_with(slots, Vec::new);
            spec.touched_write.resize_with(slots, Vec::new);
        }
        spec.epoch = spec.epoch.wrapping_add(1);
        if spec.epoch == 0 {
            // Stamp wrap-around (one bump per round): clear every stamp
            // so stale ones can never alias the restarted epoch.
            for v in spec
                .read_epoch
                .iter_mut()
                .chain(spec.write_epoch.iter_mut())
            {
                v.iter_mut().for_each(|s| *s = 0);
            }
            spec.epoch = 1;
        }
        for &(_, id) in queue {
            let tix = id as usize;
            spec.read_epoch[tix].resize(pages, 0);
            spec.write_epoch[tix].resize(pages, 0);
        }
    }

    /// Put one thread back to its pre-round snapshot (registers, pc,
    /// clock, instruction count). Hot ops touch nothing else in `Thr`.
    fn restore_thread(&mut self, snap: &SegSnap) {
        let Thr {
            frames,
            clock,
            icount,
            ..
        } = &mut self.threads[snap.tix];
        let frame = frames.last_mut().expect("live thread has frames");
        frame.pc = snap.pc;
        frame.regs.copy_from_slice(&snap.regs);
        *clock = snap.clock;
        *icount = snap.icount;
    }

    /// Evaluate one round in-line: segments run directly against memory
    /// with an undo log and per-thread page-epoch stamps. Returns the
    /// total ops committed, or `None` if the round was discarded — any
    /// speculative trap or cross-segment page overlap — and rolled back.
    fn round_direct(
        &mut self,
        queue: &[(u64, u32)],
        bound0: Option<(u64, u32)>,
    ) -> Option<u64> {
        let epoch = self.spec.epoch;
        // Moved out of `self.spec` so the segment executor can borrow the
        // remaining `self` fields disjointly.
        let mut snaps = std::mem::take(&mut self.spec.snaps);
        let mut undo = std::mem::take(&mut self.spec.undo);
        let globals = std::mem::take(&mut self.spec.globals);
        snaps.resize_with(queue.len(), SegSnap::default);
        let mut trapped = false;
        for (i, &(_, id)) in queue.iter().enumerate() {
            let tix = id as usize;
            self.spec.touched_read[tix].clear();
            self.spec.touched_write[tix].clear();
            let snap = &mut snaps[i];
            let Thr {
                frames,
                clock,
                icount,
                ..
            } = &mut self.threads[tix];
            let frame = frames.last_mut().expect("live thread has frames");
            snap.tix = tix;
            snap.pc = frame.pc;
            snap.clock = *clock;
            snap.icount = *icount;
            snap.regs.clear();
            snap.regs.extend_from_slice(&frame.regs);
            snap.undo_start = undo.len();
            let fidx = frame.func.index();
            let ctx = SegCtx {
                func: &self.flat.funcs[fidx],
                fcosts: &self.costs[fidx],
                globals: &globals,
                id,
                bound: bound0,
            };
            let mut seg = DirectSeg {
                mem: &mut self.mem,
                undo: &mut undo,
                epoch,
                read_epoch: &mut self.spec.read_epoch[tix],
                write_epoch: &mut self.spec.write_epoch[tix],
                touched_read: &mut self.spec.touched_read[tix],
                touched_write: &mut self.spec.touched_write[tix],
            };
            snap.run = run_segment(&ctx, frame, clock, icount, &mut seg);
            trapped |= snap.run.end == SegEnd::Trap;
        }
        // Certification: a speculative trap (possibly an artifact of
        // reading another segment's half-done state) or any overlap of
        // one segment's writes with another's reads or writes discards
        // the round whole.
        let mut conflict = trapped;
        if !conflict {
            'pairs: for &(_, wid) in queue {
                for &p in &self.spec.touched_write[wid as usize] {
                    for &(_, oid) in queue {
                        if oid != wid
                            && (self.spec.read_epoch[oid as usize][p as usize] == epoch
                                || self.spec.write_epoch[oid as usize][p as usize] == epoch)
                        {
                            conflict = true;
                            break 'pairs;
                        }
                    }
                }
            }
        }
        if conflict {
            for &(addr, old) in undo.iter().rev() {
                self.mem.write_raw(addr, old);
            }
            for snap in &snaps {
                self.restore_thread(snap);
            }
            undo.clear();
            self.spec.snaps = snaps;
            self.spec.undo = undo;
            self.spec.globals = globals;
            return None;
        }
        // Cold-op ordering: a speculative op is committable only if it
        // canonically precedes every op the round did NOT execute, i.e.
        // its pre-op key is below K — the earliest next-op key over all
        // round threads after their segments. Segments that overran K
        // are rolled back whole, which is legal precisely because the
        // round certified conflict-free: nothing read their writes, and
        // their own re-execution reads nothing the kept segments wrote.
        let k = queue
            .iter()
            .map(|&(_, id)| (self.threads[id as usize].clock, id))
            .min()
            .expect("round has participants");
        let mut total = 0u64;
        let mut kept = 0u64;
        let (mut fused, mut mem_ops) = (0u64, 0u64);
        for (i, snap) in snaps.iter().enumerate() {
            if snap.run.ops == 0 {
                continue;
            }
            if (snap.run.last_pre, queue[i].1) >= k {
                let end = snaps.get(i + 1).map_or(undo.len(), |s| s.undo_start);
                for &(addr, old) in undo[snap.undo_start..end].iter().rev() {
                    self.mem.write_raw(addr, old);
                }
                self.restore_thread(snap);
                continue;
            }
            total += snap.run.ops;
            kept += 1;
            fused += snap.run.fused;
            mem_ops += snap.run.mem_ops;
        }
        self.stats.instrs += total;
        self.stats.mem_ops += mem_ops;
        self.stats.vm.fused_ops += fused;
        self.stats.vm.spec_ops += total;
        self.stats.vm.spec_segments += kept;
        undo.clear();
        self.spec.snaps = snaps;
        self.spec.undo = undo;
        self.spec.globals = globals;
        Some(total)
    }

    /// Evaluate one round on OS worker threads: every segment runs
    /// against a frozen memory snapshot with a private write overlay, so
    /// workers share nothing mutable. The verdict and committed state
    /// are identical to [`Self::round_direct`] on the same pre-round
    /// state: in a certified round no segment observed another's writes,
    /// so direct and overlay evaluation retire identical ops — and a
    /// cross-segment read of a written page is itself a detected
    /// conflict, discarding the round in both modes before any value
    /// divergence can matter.
    fn round_par(&mut self, queue: &[(u64, u32)], bound0: Option<(u64, u32)>) -> Option<u64> {
        struct SegJob {
            tix: usize,
            frame: Frame,
            clock: u64,
            icount: u64,
        }
        struct SegOut {
            tix: usize,
            frame: Frame,
            clock: u64,
            icount: u64,
            run: SegRun,
            writes: std::collections::HashMap<i64, i64>,
            read_pages: Vec<u32>,
            write_pages: Vec<u32>,
        }
        let jobs: Vec<SegJob> = queue
            .iter()
            .map(|&(_, id)| {
                let t = &self.threads[id as usize];
                SegJob {
                    tix: id as usize,
                    frame: t.frames.last().expect("live thread has frames").clone(),
                    clock: t.clock,
                    icount: t.icount,
                }
            })
            .collect();
        let snap = self.mem.snapshot();
        let flat = &self.flat;
        let costs = &self.costs;
        let globals = &self.spec.globals;
        let outs: Vec<SegOut> = par_map(&jobs, |job| {
            let mut frame = job.frame.clone();
            let (mut clock, mut icount) = (job.clock, job.icount);
            let fidx = frame.func.index();
            let ctx = SegCtx {
                func: &flat.funcs[fidx],
                fcosts: &costs[fidx],
                globals,
                id: job.tix as u32,
                bound: bound0,
            };
            let mut seg = OverlaySeg {
                snap,
                writes: std::collections::HashMap::new(),
                read_pages: Vec::new(),
                write_pages: Vec::new(),
            };
            let run = run_segment(&ctx, &mut frame, &mut clock, &mut icount, &mut seg);
            seg.read_pages.sort_unstable();
            seg.read_pages.dedup();
            seg.write_pages.sort_unstable();
            seg.write_pages.dedup();
            SegOut {
                tix: job.tix,
                frame,
                clock,
                icount,
                run,
                writes: seg.writes,
                read_pages: seg.read_pages,
                write_pages: seg.write_pages,
            }
        });
        if outs.iter().any(|o| o.run.end == SegEnd::Trap) {
            return None;
        }
        for i in 0..outs.len() {
            for j in (i + 1)..outs.len() {
                if sorted_intersects(&outs[i].write_pages, &outs[j].read_pages)
                    || sorted_intersects(&outs[j].write_pages, &outs[i].read_pages)
                    || sorted_intersects(&outs[i].write_pages, &outs[j].write_pages)
                {
                    return None;
                }
            }
        }
        let k = outs
            .iter()
            .map(|o| (o.clock, o.tix as u32))
            .min()
            .expect("round has participants");
        let mut total = 0u64;
        let mut kept = 0u64;
        let (mut fused, mut mem_ops) = (0u64, 0u64);
        for out in outs {
            // Segments past K (or empty) are simply dropped — nothing
            // was applied to shared state yet.
            if out.run.ops == 0 || (out.run.last_pre, out.tix as u32) >= k {
                continue;
            }
            total += out.run.ops;
            kept += 1;
            fused += out.run.fused;
            mem_ops += out.run.mem_ops;
            for (addr, val) in out.writes {
                // Distinct addresses, so the map's iteration order is
                // immaterial; addresses were validated against the
                // snapshot and no heap op ran since.
                self.mem.write_raw(addr, val);
            }
            let t = &mut self.threads[out.tix];
            *t.frames.last_mut().expect("live thread has frames") = out.frame;
            t.clock = out.clock;
            t.icount = out.icount;
        }
        self.stats.instrs += total;
        self.stats.mem_ops += mem_ops;
        self.stats.vm.fused_ops += fused;
        self.stats.vm.spec_ops += total;
        self.stats.vm.spec_segments += kept;
        Some(total)
    }

    fn finish_deadlock(self) -> ExecResult {
        let blocked = self.blocked_summary();
        self.finish(Outcome::Deadlock { blocked })
    }

    fn blocked_summary(&self) -> Vec<(ThreadId, String)> {
        self.threads
            .iter()
            .filter(|t| t.state != TState::Done)
            .map(|t| {
                let why = match &t.state {
                    TState::Blocked(r) => format!("{r} (icount {})", t.icount),
                    _ => "unknown".to_string(),
                };
                (t.id, why)
            })
            .collect()
    }

    fn finish(mut self, outcome: Outcome) -> ExecResult {
        let makespan = self.threads.iter().map(|t| t.clock).max().unwrap_or(0);
        let state_hash = self.mem.state_hash();
        ExecResult {
            outcome,
            output: std::mem::take(&mut self.output),
            state_hash,
            makespan,
            stats: std::mem::take(&mut self.stats),
            trace: std::mem::take(&mut self.trace),
            block_counts: std::mem::take(&mut self.block_counts),
        }
    }

    fn count_block(&mut self, func: FuncId, block: BlockId) {
        if self.config.count_blocks {
            self.block_counts[func.index()][block.index()] += 1;
        }
    }

    // ---- forced weak-lock release (§2.3) ----

    fn apply_injected_releases(&mut self, sup: &mut dyn Supervisor) {
        for i in 0..self.threads.len() {
            if self.threads[i].state == TState::Done {
                continue;
            }
            let (id, icount) = (self.threads[i].id, self.threads[i].icount);
            let parked = Self::is_parked(&self.threads[i].state);
            if let Some(lock) = sup.forced_release_at(id, icount, parked) {
                self.force_release(sup, lock, id);
            }
        }
    }

    /// Is a thread parked inside a blocking operation whose *entry* had
    /// side effects (cond_wait released its mutex; barrier_wait joined the
    /// arrival set)? Only those states are distinguishable preemption
    /// points: all other blocks (mutex, join, weak-lock, replay order
    /// stalls) sit at an instruction boundary with nothing in flight, so a
    /// forced release before or during them is observationally identical.
    fn is_parked(state: &TState) -> bool {
        matches!(
            state,
            TState::Blocked(
                BlockReason::Barrier(_)
                    | BlockReason::Cond(_)
                    | BlockReason::CondReacquire(_)
            )
        )
    }

    fn try_force_any(&mut self, sup: &mut dyn Supervisor) -> bool {
        let waiter = self.threads.iter().find_map(|t| match &t.state {
            TState::Blocked(BlockReason::Weak(l, r, g)) => {
                Some((t.id, t.block_start, *l, *r, *g))
            }
            _ => None,
        });
        let Some((w, block_start, lock, range, gran)) = waiter else {
            return false;
        };
        // Even when the whole system is blocked, the stall lasts until the
        // waiter's timeout actually expires — that wait is real time.
        let expiry = block_start + self.config.weak_timeout;
        let wix = w.index();
        self.threads[wix].clock = self.threads[wix].clock.max(expiry);
        self.force_grant(sup, lock, w, range, gran);
        true
    }

    fn try_force_timed_out(&mut self, sup: &mut dyn Supervisor, now: u64) -> bool {
        let timeout = self.config.weak_timeout;
        let waiter = self.threads.iter().find_map(|t| match &t.state {
            TState::Blocked(BlockReason::Weak(l, r, g))
                if now.saturating_sub(t.block_start) > timeout =>
            {
                Some((t.id, *l, *r, *g))
            }
            _ => None,
        });
        let Some((w, lock, range, gran)) = waiter else {
            return false;
        };
        self.force_grant(sup, lock, w, range, gran);
        true
    }

    /// Resolve a starved weak-lock waiter (§2.3): preempt every
    /// conflicting holder (forcing it to release and later reacquire) and
    /// hand the lock directly to the waiter, so the stalled thread is
    /// guaranteed to proceed before any preempted holder gets back in.
    fn force_grant(
        &mut self,
        sup: &mut dyn Supervisor,
        lock: WeakLockId,
        waiter: ThreadId,
        range: Option<(i64, i64)>,
        gran: LockGranularity,
    ) {
        // Preempt all conflicting holders.
        loop {
            let conflict = self
                .sync
                .weak
                .get(lock)
                .and_then(|s| s.conflict_with(range))
                .filter(|h| h.thread != waiter);
            match conflict {
                Some(h) => self.force_release(sup, lock, h.thread),
                None => break,
            }
        }
        // Grant to the waiter. The acquisition is not *recorded* yet: the
        // WeakAcquire event is emitted when the waiter consumes the grant
        // (resumes execution holding the lock). Grants that get forced
        // away before consumption cancel silently and never enter the
        // logs — only effective acquisitions order data.
        let state = self.sync.weak.ensure(lock);
        if !self.config.weak_always_succeed {
            state.holders.push(WeakHolder {
                thread: waiter,
                range,
            });
        }
        let wix = waiter.index();
        self.threads[wix]
            .frames
            .last_mut()
            .expect("live thread has frames")
            .held_weak
            .push(HeldWeak { lock, range, gran });
        self.threads[wix].weak_granted.push(lock);
        let at = self.threads[wix].clock;
        self.wake_thread(waiter, at, WaitKind::Weak(gran));
        self.wake_order_stalled();
        let _ = sup;
    }

    /// Preempt `holder` and make it release `lock`; it must reacquire
    /// before resuming. Preserves the single-holder invariant.
    ///
    /// If the holding is an *unconsumed grant* (a forced handoff the
    /// grantee never got to act on), it is cancelled silently: the grantee
    /// executed nothing under the lock, so the event has no observable
    /// effect and must not pollute the replay logs.
    fn force_release(&mut self, sup: &mut dyn Supervisor, lock: WeakLockId, holder: ThreadId) {
        let hidx = holder.index();
        // Find and remove the held entry in the holder's frames (innermost
        // first).
        let mut removed: Option<HeldWeak> = None;
        for f in self.threads[hidx].frames.iter_mut().rev() {
            if let Some(pos) = f.held_weak.iter().rposition(|h| h.lock == lock) {
                removed = Some(f.held_weak.remove(pos));
                break;
            }
        }
        let Some(entry) = removed else {
            return; // already released (benign race with normal release)
        };
        if let Some(state) = self.sync.weak.get_mut(lock) {
            state.release(holder);
        }
        let time = self.threads[hidx].clock;
        if let Some(pos) = self.threads[hidx]
            .weak_granted
            .iter()
            .position(|l| *l == lock)
        {
            // Unconsumed grant: cancel. The grantee's original acquire
            // attempt is still pending/blocked and will retry normally.
            self.threads[hidx].weak_granted.remove(pos);
            self.wake_weak_waiters(lock, time);
            self.wake_order_stalled();
            return;
        }
        self.threads[hidx].pending_reacquire.push(entry);
        self.stats.forced_releases += 1;
        let icount = self.threads[hidx].icount;
        let parked = Self::is_parked(&self.threads[hidx].state);
        self.emit(
            sup,
            Event::WeakForcedRelease {
                lock,
                holder,
                icount,
                parked,
                time,
            },
        );
        self.wake_weak_waiters(lock, time);
        self.wake_order_stalled();
    }

    // ---- wakeups ----

    fn wake_thread(&mut self, tid: ThreadId, at: u64, wait_kind: WaitKind) {
        let t = &mut self.threads[tid.index()];
        let old = t.clock;
        t.clock = t.clock.max(at);
        let waited = t.clock - old;
        match wait_kind {
            WaitKind::Sync => self.stats.sync_wait += waited,
            WaitKind::Weak(g) => ExecStats::bump(&mut self.stats.weak_wait, g, waited),
        }
        t.state = TState::Ready;
        self.sched_dirty = true;
    }

    // The wake scans walk threads by index (thread ids are their indices)
    // so no candidate `Vec` is ever collected; `wake_thread` only mutates
    // the woken thread, so the scan order matches the old collect-then-wake
    // behavior exactly.

    fn wake_mutex_waiters(&mut self, addr: i64, at: u64) {
        for i in 0..self.threads.len() {
            if matches!(
                &self.threads[i].state,
                TState::Blocked(BlockReason::Mutex(a) | BlockReason::CondReacquire(a)) if *a == addr
            ) {
                self.wake_thread(ThreadId(i as u32), at, WaitKind::Sync);
            }
        }
    }

    fn wake_weak_waiters(&mut self, lock: WeakLockId, at: u64) {
        for i in 0..self.threads.len() {
            let g = match &self.threads[i].state {
                TState::Blocked(BlockReason::Weak(l, _, g)) if *l == lock => *g,
                _ => continue,
            };
            self.wake_thread(ThreadId(i as u32), at, WaitKind::Weak(g));
        }
    }

    fn wake_order_stalled(&mut self) {
        for t in self.threads.iter_mut() {
            if matches!(t.state, TState::Blocked(BlockReason::OrderTurn)) {
                t.state = TState::Ready;
                self.sched_dirty = true;
            }
        }
    }

    // ---- the interpreter ----

    /// Pending reacquires after a forced release come first. Returns true
    /// if this step was consumed by the reacquire protocol.
    #[inline]
    fn try_pending_reacquire(&mut self, sup: &mut dyn Supervisor, tid: ThreadId) -> bool {
        let tix = tid.index();
        let Some(&entry) = self.threads[tix].pending_reacquire.last() else {
            return false;
        };
        if let Some(pos) = self.threads[tix]
            .weak_granted
            .iter()
            .position(|l| *l == entry.lock)
        {
            // A forced handoff already made us the holder: consume the
            // grant, which is the moment the acquisition becomes real.
            self.threads[tix].weak_granted.remove(pos);
            self.threads[tix].pending_reacquire.pop();
            self.commit_granted_acquire(sup, tid, entry.lock, entry.range, entry.gran);
            return true;
        }
        match self.try_weak_acquire(sup, tid, entry.lock, entry.range, entry.gran, true) {
            WeakTry::Acquired => {
                self.threads[tix].pending_reacquire.pop();
            }
            WeakTry::Blocked(reason) => self.block(tid, reason),
            WeakTry::Stalled => self.block(tid, BlockReason::OrderTurn),
        }
        true
    }

    /// One reference-mode step: locate the frame's flat pc in the
    /// block-structured program, clone the instruction or terminator (the
    /// original per-step cost), and execute it.
    fn step_reference(&mut self, sup: &mut dyn Supervisor, tid: ThreadId) {
        if self.try_pending_reacquire(sup, tid) {
            return;
        }
        let program = self.program;
        let frame = self
            .threads[tid.index()]
            .frames
            .last()
            .expect("live thread has frames");
        let (block_id, ip) = self.flat.funcs[frame.func.index()].locate(frame.pc);
        let block = program.funcs[frame.func.index()].block(block_id);

        let end = if ip < block.instrs.len() {
            let instr = block.instrs[ip].clone();
            self.exec_instr(sup, tid, &instr)
        } else {
            let term = block.term.clone();
            self.exec_term(sup, tid, &term)
        };
        let _ = self.commit_step(tid, end);
    }

    /// One flat-mode step: copy the pre-decoded op out of the code array
    /// (no clone — `FlatOp` is `Copy`) and execute it.
    ///
    /// Returns the thread's advanced clock if it is still `Ready` after the
    /// step, `None` otherwise — the scheduler's ready-queue repositions the
    /// stepped thread from this without re-reading the `Thr`.
    ///
    /// The straight-line data ops and intra-function control flow are
    /// executed inline here and commit through [`Self::commit_ok`]
    /// directly: no `StepEnd` is built or re-matched on the hot path. One
    /// mutable borrow of the current frame serves the decode and every hot
    /// arm (operand reads, the register write, the pc bump), while
    /// `self.flat`, `self.costs`, `self.mem`, `self.stats`, and
    /// `self.block_counts` are disjoint fields that coexist with the
    /// borrow. Everything that can block, spawn, trap on sync state, or
    /// touch the event sink goes through [`Self::exec_flat_cold`] and the
    /// usual `StepEnd` accounting.
    #[inline]
    fn step_flat(&mut self, sup: &mut dyn Supervisor, tid: ThreadId) -> Option<u64> {
        // `pending_reacquire` is only ever pushed by forced releases of a
        // held weak lock, so without weak ops in the program the check can
        // never fire — one flag load short-circuits a per-step walk of the
        // thread's state.
        if self.flat.has_weak_ops && self.try_pending_reacquire(sup, tid) {
            let t = &self.threads[tid.index()];
            return (t.state == TState::Ready).then_some(t.clock);
        }
        let tix = tid.index();
        let frame = self.threads[tix]
            .frames
            .last_mut()
            .expect("live thread has frames");
        let (fidx, pc) = (frame.func.index(), frame.pc as usize);
        let op = self.flat.funcs[fidx].code[pc];
        let scost = self.costs[fidx][pc];
        match op {
            FlatOp::Copy { dst, src } => {
                let v = frame.get(src);
                frame.regs[dst.index()] = v;
                frame.pc += 1;
                self.commit_ok(tix, scost)
            }
            FlatOp::UnOp { dst, op: uop, src } => {
                let v = frame.get(src);
                let r = match uop {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                };
                frame.regs[dst.index()] = r;
                frame.pc += 1;
                self.commit_ok(tix, scost)
            }
            FlatOp::BinOp { dst, op: bop, a, b } => {
                let (x, y) = (frame.get(a), frame.get(b));
                let r = match bop {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return self.trap(tid, "division by zero".into());
                        }
                        x.wrapping_div(y)
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return self.trap(tid, "remainder by zero".into());
                        }
                        x.wrapping_rem(y)
                    }
                    BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                    BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                    BinOp::BitAnd => x & y,
                    BinOp::BitOr => x | y,
                    BinOp::BitXor => x ^ y,
                    BinOp::Lt => (x < y) as i64,
                    BinOp::Le => (x <= y) as i64,
                    BinOp::Gt => (x > y) as i64,
                    BinOp::Ge => (x >= y) as i64,
                    BinOp::Eq => (x == y) as i64,
                    BinOp::Ne => (x != y) as i64,
                    BinOp::LogAnd => ((x != 0) && (y != 0)) as i64,
                    BinOp::LogOr => ((x != 0) || (y != 0)) as i64,
                };
                frame.regs[dst.index()] = r;
                frame.pc += 1;
                self.commit_ok(tix, scost)
            }
            FlatOp::AddrOfGlobal {
                dst,
                global,
                offset,
            } => {
                let base = self.mem.global_base(global);
                let off = frame.get(offset);
                frame.regs[dst.index()] = base + off;
                frame.pc += 1;
                self.commit_ok(tix, scost)
            }
            FlatOp::AddrOfSlot {
                dst,
                slot_off,
                offset,
            } => {
                let Some(base) = frame.frame_base else {
                    return self.trap(tid, "frame has no slot area".into());
                };
                let off = frame.get(offset);
                frame.regs[dst.index()] = base + slot_off + off;
                frame.pc += 1;
                self.commit_ok(tix, scost)
            }
            FlatOp::AddrOfFunc { dst, func } => {
                frame.regs[dst.index()] = FUNC_PTR_BASE + func.0 as i64;
                frame.pc += 1;
                self.commit_ok(tix, scost)
            }
            FlatOp::PtrAdd { dst, base, offset } => {
                let v = frame.get(base).wrapping_add(frame.get(offset));
                frame.regs[dst.index()] = v;
                frame.pc += 1;
                self.commit_ok(tix, scost)
            }
            FlatOp::Load { dst, addr, access } => {
                let a = frame.get(addr);
                match self.mem.load(a) {
                    Ok(v) => {
                        frame.regs[dst.index()] = v;
                        frame.pc += 1;
                        self.stats.mem_ops += 1;
                        if self.wants_hb(EventKind::Load) {
                            let time = self.threads[tix].clock;
                            self.emit_hb(
                                sup,
                                Event::Load {
                                    thread: tid,
                                    addr: a,
                                    access,
                                    time,
                                },
                            );
                        }
                        self.commit_ok(tix, scost)
                    }
                    Err(t) => self.trap(tid, t.to_string()),
                }
            }
            FlatOp::Store { addr, val, access } => {
                let a = frame.get(addr);
                let v = frame.get(val);
                match self.mem.store(a, v) {
                    Ok(()) => {
                        frame.pc += 1;
                        self.stats.mem_ops += 1;
                        if self.wants_hb(EventKind::Store) {
                            let time = self.threads[tix].clock;
                            self.emit_hb(
                                sup,
                                Event::Store {
                                    thread: tid,
                                    addr: a,
                                    access,
                                    time,
                                },
                            );
                        }
                        self.commit_ok(tix, scost)
                    }
                    Err(t) => self.trap(tid, t.to_string()),
                }
            }
            FlatOp::Jump {
                target_pc,
                target_block,
            } => {
                let func = frame.func;
                frame.pc = target_pc;
                if self.config.count_blocks {
                    self.block_counts[func.index()][target_block.index()] += 1;
                }
                self.commit_ok(tix, scost)
            }
            FlatOp::Branch {
                cond,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let v = frame.get(cond);
                let (pc, b) = if v != 0 {
                    (then_pc, then_block)
                } else {
                    (else_pc, else_block)
                };
                let func = frame.func;
                frame.pc = pc;
                if self.config.count_blocks {
                    self.block_counts[func.index()][b.index()] += 1;
                }
                self.commit_ok(tix, scost)
            }
            op => {
                let end = self.exec_flat_cold(sup, tid, op, scost);
                self.commit_step(tid, end)
            }
        }
    }

    /// Account for a finished step — identical in both modes, so the
    /// jitter RNG draws in the same sequence. Returns the thread's new
    /// clock for a committed step, `None` for a block or trap.
    #[inline]
    fn commit_step(&mut self, tid: ThreadId, end: StepEnd) -> Option<u64> {
        match end {
            StepEnd::Commit(cost) => self.commit_ok(tid.index(), cost),
            StepEnd::Block(reason) => {
                self.block(tid, reason);
                None
            }
            StepEnd::Trap(message) => self.trap(tid, message),
        }
    }

    /// The commit half of [`Self::commit_step`], shared by the flat hot
    /// arms (which bypass `StepEnd` entirely) and the `StepEnd::Commit`
    /// arm — one implementation, so the jitter RNG draws in the same
    /// sequence on every path.
    #[inline(always)]
    fn commit_ok(&mut self, tix: usize, cost: u64) -> Option<u64> {
        self.stats.instrs += 1;
        let mut total = cost;
        if self.config.jitter.period > 0 && self.rng.gen_range(0..self.config.jitter.period) == 0 {
            total += self.rng.gen_range(0..=self.config.jitter.magnitude);
        }
        let t = &mut self.threads[tix];
        t.icount += 1;
        t.clock += total;
        Some(t.clock)
    }

    /// The trap half of [`Self::commit_step`]: ends the run. Out of line —
    /// a trap happens at most once per execution.
    #[cold]
    fn trap(&mut self, tid: ThreadId, message: String) -> Option<u64> {
        self.finished = Some(Outcome::Trap {
            thread: tid,
            message,
        });
        None
    }

    fn block(&mut self, tid: ThreadId, reason: BlockReason) {
        let t = &mut self.threads[tid.index()];
        t.block_start = t.clock;
        t.state = TState::Blocked(reason);
    }

    fn val(&self, tid: ThreadId, op: Operand) -> i64 {
        match op {
            Operand::Const(c) => c,
            Operand::Local(l) => {
                self.threads[tid.index()]
                    .frames
                    .last()
                    .expect("live thread has frames")
                    .regs[l.index()]
            }
        }
    }

    fn set(&mut self, tid: ThreadId, l: LocalId, v: i64) {
        let frame = self.threads[tid.index()]
            .frames
            .last_mut()
            .expect("live thread has frames");
        frame.regs[l.index()] = v;
    }

    /// In flattened code a block's terminator is its last op, so advancing
    /// one pc covers both "next instruction" and "fall into terminator".
    fn advance_pc(&mut self, tid: ThreadId) {
        let frame = self.threads[tid.index()]
            .frames
            .last_mut()
            .expect("live thread has frames");
        frame.pc += 1;
    }

    /// Redirect the current frame to the start of `block`.
    fn goto_block(&mut self, tid: ThreadId, block: BlockId) {
        let frame = self.threads[tid.index()].frames.last_mut().unwrap();
        let func = frame.func;
        frame.pc = self.flat.funcs[func.index()].block_entry[block.index()];
        self.count_block(func, block);
    }

    fn exec_term(&mut self, sup: &mut dyn Supervisor, tid: ThreadId, term: &Terminator) -> StepEnd {
        let c = self.cost.instr;
        match term {
            Terminator::Jump(b) => {
                self.goto_block(tid, *b);
                StepEnd::Commit(c)
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let v = self.val(tid, *cond);
                let target = if v != 0 { *then_bb } else { *else_bb };
                self.goto_block(tid, target);
                StepEnd::Commit(c)
            }
            Terminator::Return(v) => self.do_return(sup, tid, v.map(|op| self.val(tid, op))),
        }
    }

    fn do_return(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        value: Option<i64>,
    ) -> StepEnd {
        let tix = tid.index();
        let time = self.threads[tix].clock;
        let frame = self.threads[tix].frames.pop().expect("returning frame");
        // Safety net: release any weak-locks the instrumenter's epilogue
        // missed (e.g. early return paths); emits normal release events so
        // logs stay balanced.
        for held in frame.held_weak.iter().rev() {
            if let Some(state) = self.sync.weak.get_mut(held.lock) {
                state.release(tid);
            }
            self.emit(
                sup,
                Event::WeakRelease {
                    thread: tid,
                    lock: held.lock,
                    time,
                },
            );
            self.wake_weak_waiters(held.lock, time);
        }
        if let Some(base) = frame.frame_base {
            if let Err(t) = self.mem.dealloc(base) {
                return StepEnd::Trap(t.to_string());
            }
        }
        self.emit(
            sup,
            Event::FuncExit {
                thread: tid,
                func: frame.func,
                time,
            },
        );
        if self.threads[tix].frames.is_empty() {
            // Thread exit.
            if tid == ThreadId(0) {
                self.main_ret = value.unwrap_or(0);
            }
            self.threads[tix].state = TState::Done;
            // The thread set changed: a scheduling event, like any
            // block/wake/spawn (the flat ready-queue relies on this).
            self.sched_dirty = true;
            self.emit(sup, Event::Exited { thread: tid, time });
            // Wake joiners.
            let ids: Vec<ThreadId> = self
                .threads
                .iter()
                .filter(|t| {
                    matches!(&t.state, TState::Blocked(BlockReason::Join(j)) if *j == tid)
                })
                .map(|t| t.id)
                .collect();
            for id in ids {
                self.wake_thread(id, time, WaitKind::Sync);
            }
            StepEnd::Commit(self.cost.call)
        } else {
            // The caller's ip was already advanced when the call was made.
            if let (Some(dst), Some(v)) = (frame.ret_dst, value) {
                self.set(tid, dst, v);
            }
            StepEnd::Commit(self.cost.call)
        }
    }

    fn exec_instr(&mut self, sup: &mut dyn Supervisor, tid: ThreadId, instr: &Instr) -> StepEnd {
        let cost = self.cost;
        match instr {
            Instr::Copy { dst, src } => {
                let v = self.val(tid, *src);
                self.set(tid, *dst, v);
                self.advance_pc(tid);
                StepEnd::Commit(cost.instr)
            }
            Instr::UnOp { dst, op, src } => {
                let v = self.val(tid, *src);
                let r = match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                };
                self.set(tid, *dst, r);
                self.advance_pc(tid);
                StepEnd::Commit(cost.instr)
            }
            Instr::BinOp { dst, op, a, b } => {
                let (x, y) = (self.val(tid, *a), self.val(tid, *b));
                let r = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return StepEnd::Trap("division by zero".into());
                        }
                        x.wrapping_div(y)
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return StepEnd::Trap("remainder by zero".into());
                        }
                        x.wrapping_rem(y)
                    }
                    BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                    BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                    BinOp::BitAnd => x & y,
                    BinOp::BitOr => x | y,
                    BinOp::BitXor => x ^ y,
                    BinOp::Lt => (x < y) as i64,
                    BinOp::Le => (x <= y) as i64,
                    BinOp::Gt => (x > y) as i64,
                    BinOp::Ge => (x >= y) as i64,
                    BinOp::Eq => (x == y) as i64,
                    BinOp::Ne => (x != y) as i64,
                    BinOp::LogAnd => ((x != 0) && (y != 0)) as i64,
                    BinOp::LogOr => ((x != 0) || (y != 0)) as i64,
                };
                self.set(tid, *dst, r);
                self.advance_pc(tid);
                StepEnd::Commit(cost.instr)
            }
            Instr::AddrOfGlobal {
                dst,
                global,
                offset,
            } => {
                let base = self.mem.global_base(*global);
                let off = self.val(tid, *offset);
                self.set(tid, *dst, base + off);
                self.advance_pc(tid);
                StepEnd::Commit(cost.instr)
            }
            Instr::AddrOfLocal { dst, local, offset } => {
                let tix = tid.index();
                let frame = self.threads[tix].frames.last().unwrap();
                let layout = &self.flat.layouts[frame.func.index()];
                let Some(slot_off) = layout.slot_offset[local.index()] else {
                    return StepEnd::Trap(format!(
                        "address taken of register local {local} (lowering bug)"
                    ));
                };
                let Some(base) = frame.frame_base else {
                    return StepEnd::Trap("frame has no slot area".into());
                };
                let off = self.val(tid, *offset);
                self.set(tid, *dst, base + slot_off + off);
                self.advance_pc(tid);
                StepEnd::Commit(cost.instr)
            }
            Instr::AddrOfFunc { dst, func } => {
                self.set(tid, *dst, FUNC_PTR_BASE + func.0 as i64);
                self.advance_pc(tid);
                StepEnd::Commit(cost.instr)
            }
            Instr::PtrAdd { dst, base, offset } => {
                let v = self.val(tid, *base).wrapping_add(self.val(tid, *offset));
                self.set(tid, *dst, v);
                self.advance_pc(tid);
                StepEnd::Commit(cost.instr)
            }
            Instr::Load { dst, addr, access } => {
                let a = self.val(tid, *addr);
                match self.mem.load(a) {
                    Ok(v) => {
                        self.set(tid, *dst, v);
                        self.stats.mem_ops += 1;
                        self.advance_pc(tid);
                        if self.wants_hb(EventKind::Load) {
                            let time = self.threads[tid.index()].clock;
                            self.emit_hb(
                                sup,
                                Event::Load {
                                    thread: tid,
                                    addr: a,
                                    access: *access,
                                    time,
                                },
                            );
                        }
                        StepEnd::Commit(cost.instr + cost.mem)
                    }
                    Err(t) => StepEnd::Trap(t.to_string()),
                }
            }
            Instr::Store { addr, val, access } => {
                let a = self.val(tid, *addr);
                let v = self.val(tid, *val);
                match self.mem.store(a, v) {
                    Ok(()) => {
                        self.stats.mem_ops += 1;
                        self.advance_pc(tid);
                        if self.wants_hb(EventKind::Store) {
                            let time = self.threads[tid.index()].clock;
                            self.emit_hb(
                                sup,
                                Event::Store {
                                    thread: tid,
                                    addr: a,
                                    access: *access,
                                    time,
                                },
                            );
                        }
                        StepEnd::Commit(cost.instr + cost.mem)
                    }
                    Err(t) => StepEnd::Trap(t.to_string()),
                }
            }
            Instr::Call { dst, callee, args } => {
                let target = match callee {
                    Callee::Direct(f) => *f,
                    Callee::Indirect(op) => {
                        let v = self.val(tid, *op);
                        match decode_func_ptr(v, self.program.funcs.len()) {
                            Some(f) => f,
                            None => {
                                return StepEnd::Trap(format!(
                                    "indirect call through non-function value {v}"
                                ))
                            }
                        }
                    }
                };
                if self.threads[tid.index()].frames.len() >= 4096 {
                    return StepEnd::Trap("call stack overflow".into());
                }
                let argv: Vec<i64> = args.iter().map(|a| self.val(tid, *a)).collect();
                self.advance_pc(tid); // return will resume past the call
                let frame = self.make_frame(target, &argv, *dst);
                let time = self.threads[tid.index()].clock;
                self.threads[tid.index()].frames.push(frame);
                self.emit(
                    sup,
                    Event::FuncEnter {
                        thread: tid,
                        func: target,
                        time,
                    },
                );
                StepEnd::Commit(cost.call)
            }
            Instr::Lock { addr } => self.do_lock(sup, tid, self.val(tid, *addr)),
            Instr::Unlock { addr } => self.do_unlock(sup, tid, self.val(tid, *addr)),
            Instr::BarrierInit { addr, count } => {
                let a = self.val(tid, *addr);
                let c = self.val(tid, *count);
                if c <= 0 {
                    return StepEnd::Trap("barrier_init with non-positive count".into());
                }
                self.sync.barriers.ensure(a).count = c;
                self.advance_pc(tid);
                StepEnd::Commit(cost.sync_op)
            }
            Instr::BarrierWait { addr } => self.do_barrier_wait(sup, tid, self.val(tid, *addr)),
            Instr::CondWait { cond, lock } => {
                let (ca, la) = (self.val(tid, *cond), self.val(tid, *lock));
                self.do_cond_wait(sup, tid, ca, la)
            }
            Instr::CondSignal { cond } => {
                let a = self.val(tid, *cond);
                self.do_cond_signal(sup, tid, a, false)
            }
            Instr::CondBroadcast { cond } => {
                let a = self.val(tid, *cond);
                self.do_cond_signal(sup, tid, a, true)
            }
            Instr::Spawn { dst, callee, args } => {
                if !sup.may_proceed(OrderPoint::Spawn, tid) {
                    return StepEnd::Block(BlockReason::OrderTurn);
                }
                let target = match callee {
                    Callee::Direct(f) => *f,
                    Callee::Indirect(op) => {
                        let v = self.val(tid, *op);
                        match decode_func_ptr(v, self.program.funcs.len()) {
                            Some(f) => f,
                            None => {
                                return StepEnd::Trap(format!(
                                    "spawn through non-function value {v}"
                                ))
                            }
                        }
                    }
                };
                let argv: Vec<i64> = args.iter().map(|a| self.val(tid, *a)).collect();
                let time = self.threads[tid.index()].clock;
                let child = self.spawn_thread(target, &argv, time + cost.spawn);
                if let Some(d) = dst {
                    self.set(tid, *d, child.0 as i64);
                }
                self.sync.spawn_seq += 1;
                let seq = self.sync.spawn_seq;
                self.stats.sync_ops += 1;
                self.emit(
                    sup,
                    Event::Spawned {
                        parent: tid,
                        child,
                        func: target,
                        time,
                    },
                );
                self.emit(
                    sup,
                    Event::Sync {
                        thread: tid,
                        kind: SyncKind::Spawn,
                        addr: child.0 as i64,
                        seq,
                        time,
                    },
                );
                self.emit(
                    sup,
                    Event::FuncEnter {
                        thread: child,
                        func: target,
                        time: time + cost.spawn,
                    },
                );
                self.wake_order_stalled();
                self.advance_pc(tid);
                StepEnd::Commit(cost.spawn + self.log_cost_sync())
            }
            Instr::Join { tid: t_op } => {
                let v = self.val(tid, *t_op);
                if v < 0 || v as usize >= self.threads.len() {
                    return StepEnd::Trap(format!("join of invalid thread id {v}"));
                }
                let target = ThreadId(v as u32);
                if target == tid {
                    return StepEnd::Trap("thread joining itself".into());
                }
                if self.threads[target.index()].state == TState::Done {
                    self.sync.join_seq += 1;
                    let seq = self.sync.join_seq;
                    let time = self.threads[tid.index()].clock;
                    self.stats.sync_ops += 1;
                    self.emit(
                        sup,
                        Event::Sync {
                            thread: tid,
                            kind: SyncKind::Join,
                            addr: v,
                            seq,
                            time,
                        },
                    );
                    self.advance_pc(tid);
                    StepEnd::Commit(cost.sync_op + self.log_cost_sync())
                } else {
                    StepEnd::Block(BlockReason::Join(target))
                }
            }
            Instr::Malloc { dst, size, site } => {
                let n = self.val(tid, *size);
                if n <= 0 || n > (1 << 24) {
                    return StepEnd::Trap(format!("malloc of invalid size {n}"));
                }
                let a = self.mem.alloc(n, RegionKind::Heap(*site));
                self.set(tid, *dst, a);
                self.advance_pc(tid);
                StepEnd::Commit(cost.call)
            }
            Instr::Free { addr } => {
                let a = self.val(tid, *addr);
                match self.mem.dealloc(a) {
                    Ok(()) => {
                        self.advance_pc(tid);
                        StepEnd::Commit(cost.call)
                    }
                    Err(t) => StepEnd::Trap(t.to_string()),
                }
            }
            Instr::SysRead {
                dst,
                chan,
                buf,
                len,
            } => {
                let chan = self.val(tid, *chan);
                let buf = self.val(tid, *buf);
                let len = self.val(tid, *len).clamp(0, 1 << 20) as usize;
                self.do_input(sup, tid, chan, buf, len, *dst)
            }
            Instr::SysInput { dst, chan } => {
                let chan = self.val(tid, *chan);
                self.do_input_scalar(sup, tid, chan, *dst)
            }
            Instr::SysWrite { chan, buf, len } => {
                if !sup.may_proceed(OrderPoint::Output, tid) {
                    return StepEnd::Block(BlockReason::OrderTurn);
                }
                let _chan = self.val(tid, *chan);
                let buf = self.val(tid, *buf);
                let len = self.val(tid, *len).clamp(0, 1 << 20);
                let mut data = Vec::with_capacity(len as usize);
                for i in 0..len {
                    match self.mem.load(buf + i) {
                        Ok(v) => data.push(v),
                        Err(t) => return StepEnd::Trap(t.to_string()),
                    }
                }
                for &v in &data {
                    self.output.push((tid, v));
                }
                self.stats.syscalls += 1;
                self.emit(sup, Event::Output { thread: tid, data });
                self.wake_order_stalled();
                self.advance_pc(tid);
                StepEnd::Commit(cost.syscall + len as u64)
            }
            Instr::Print { val } => {
                if !sup.may_proceed(OrderPoint::Output, tid) {
                    return StepEnd::Block(BlockReason::OrderTurn);
                }
                let v = self.val(tid, *val);
                self.output.push((tid, v));
                self.stats.syscalls += 1;
                self.emit(
                    sup,
                    Event::Output {
                        thread: tid,
                        data: vec![v],
                    },
                );
                self.wake_order_stalled();
                self.advance_pc(tid);
                StepEnd::Commit(cost.syscall)
            }
            Instr::WeakAcquire {
                lock,
                granularity,
                range,
            } => {
                if let Some(pos) = self.threads[tid.index()]
                    .weak_granted
                    .iter()
                    .position(|l| l == lock)
                {
                    // A forced handoff already completed this acquire:
                    // consuming it here makes the acquisition effective and
                    // emits its (recorded) event.
                    self.threads[tid.index()].weak_granted.remove(pos);
                    let held = self.threads[tid.index()]
                        .frames
                        .last()
                        .and_then(|f| f.held_weak.iter().rev().find(|h| h.lock == *lock))
                        .copied();
                    let range = held.and_then(|h| h.range);
                    self.commit_granted_acquire(sup, tid, *lock, range, *granularity);
                    self.advance_pc(tid);
                    let mut c = self.cost.weak_op;
                    if self.config.log_weak {
                        c += self.cost.log_write;
                    }
                    return StepEnd::Commit(c);
                }
                let r = range.map(|(lo, hi)| {
                    let (a, b) = (self.val(tid, lo), self.val(tid, hi));
                    (a.min(b), a.max(b))
                });
                match self.try_weak_acquire(sup, tid, *lock, r, *granularity, false) {
                    WeakTry::Acquired => {
                        self.advance_pc(tid);
                        let mut c = self.cost.weak_op;
                        if range.is_some() {
                            c += self.cost.range_check;
                        }
                        if self.config.log_weak {
                            c += self.cost.log_write;
                            ExecStats::bump(
                                &mut self.stats.weak_log_cycles,
                                *granularity,
                                self.cost.log_write,
                            );
                        }
                        StepEnd::Commit(c)
                    }
                    WeakTry::Blocked(reason) => StepEnd::Block(reason),
                    WeakTry::Stalled => StepEnd::Block(BlockReason::OrderTurn),
                }
            }
            Instr::WeakRelease { lock } => {
                let tix = tid.index();
                let frame = self.threads[tix].frames.last_mut().unwrap();
                if let Some(pos) = frame.held_weak.iter().rposition(|h| h.lock == *lock) {
                    frame.held_weak.remove(pos);
                    if let Some(state) = self.sync.weak.get_mut(*lock) {
                        state.release(tid);
                    }
                }
                // Releasing a lock we no longer hold (forced release took
                // it) is a no-op: the forced-release protocol already
                // queued a reacquire balanced against this release.
                let time = self.threads[tix].clock;
                self.emit(
                    sup,
                    Event::WeakRelease {
                        thread: tid,
                        lock: *lock,
                        time,
                    },
                );
                self.wake_weak_waiters(*lock, time);
                self.advance_pc(tid);
                StepEnd::Commit(self.cost.weak_op)
            }
        }
    }

    /// Decode and execute one pre-decoded op at the current `(func, pc)`.
    /// `scost` below is the pre-resolved static commit cost for this pc
    /// (see [`crate::flat::static_costs`]); arms with dynamic costs compute
    /// their own. Mirrors `exec_instr` + `exec_term` arm for arm — any
    /// semantic divergence here is a bug the differential suite exists to
    /// catch.
    #[inline]
    /// The cold remainder of the flat dispatch: calls, sync, I/O, memory
    /// management, weak ops, and returns. `op` and `scost` arrive already
    /// decoded by [`Self::step_flat`]; the arms handled there are
    /// unreachable here.
    fn exec_flat_cold(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        op: FlatOp,
        scost: u64,
    ) -> StepEnd {
        match op {
            FlatOp::Copy { .. }
            | FlatOp::UnOp { .. }
            | FlatOp::BinOp { .. }
            | FlatOp::AddrOfGlobal { .. }
            | FlatOp::AddrOfSlot { .. }
            | FlatOp::AddrOfFunc { .. }
            | FlatOp::PtrAdd { .. }
            | FlatOp::Load { .. }
            | FlatOp::Store { .. }
            | FlatOp::Jump { .. }
            | FlatOp::Branch { .. } => {
                unreachable!("hot op executed inline by step_flat")
            }
            FlatOp::FusedGlobalLoad { .. }
            | FlatOp::FusedGlobalStore { .. }
            | FlatOp::FusedSlotLoad { .. }
            | FlatOp::FusedSlotStore { .. }
            | FlatOp::FusedPtrLoad { .. }
            | FlatOp::FusedPtrStore { .. }
            | FlatOp::FusedCmpBranch { .. }
            | FlatOp::FusedOpAssign { .. } => {
                unreachable!("fused op lives only in the sidecar arena")
            }
            FlatOp::AddrOfRegister { local } => StepEnd::Trap(format!(
                "address taken of register local {local} (lowering bug)"
            )),
            FlatOp::CallDirect { dst, func, args } => self.do_call_flat(sup, tid, func, args, dst),
            FlatOp::CallIndirect { dst, target, args } => {
                let v = self.val(tid, target);
                match decode_func_ptr(v, self.program.funcs.len()) {
                    Some(f) => self.do_call_flat(sup, tid, f, args, dst),
                    None => StepEnd::Trap(format!("indirect call through non-function value {v}")),
                }
            }
            FlatOp::Lock { addr } => self.do_lock(sup, tid, self.val(tid, addr)),
            FlatOp::Unlock { addr } => self.do_unlock(sup, tid, self.val(tid, addr)),
            FlatOp::BarrierInit { addr, count } => {
                let a = self.val(tid, addr);
                let c = self.val(tid, count);
                if c <= 0 {
                    return StepEnd::Trap("barrier_init with non-positive count".into());
                }
                self.sync.barriers.ensure(a).count = c;
                self.advance_pc(tid);
                StepEnd::Commit(scost)
            }
            FlatOp::BarrierWait { addr } => self.do_barrier_wait(sup, tid, self.val(tid, addr)),
            FlatOp::CondWait { cond, lock } => {
                let (ca, la) = (self.val(tid, cond), self.val(tid, lock));
                self.do_cond_wait(sup, tid, ca, la)
            }
            FlatOp::CondSignal { cond } => {
                let a = self.val(tid, cond);
                self.do_cond_signal(sup, tid, a, false)
            }
            FlatOp::CondBroadcast { cond } => {
                let a = self.val(tid, cond);
                self.do_cond_signal(sup, tid, a, true)
            }
            FlatOp::SpawnDirect { dst, func, args } => {
                if !sup.may_proceed(OrderPoint::Spawn, tid) {
                    return StepEnd::Block(BlockReason::OrderTurn);
                }
                self.do_spawn_flat(sup, tid, func, args, dst)
            }
            FlatOp::SpawnIndirect { dst, target, args } => {
                if !sup.may_proceed(OrderPoint::Spawn, tid) {
                    return StepEnd::Block(BlockReason::OrderTurn);
                }
                let v = self.val(tid, target);
                match decode_func_ptr(v, self.program.funcs.len()) {
                    Some(f) => self.do_spawn_flat(sup, tid, f, args, dst),
                    None => StepEnd::Trap(format!("spawn through non-function value {v}")),
                }
            }
            FlatOp::Join { tid: t_op } => {
                let v = self.val(tid, t_op);
                if v < 0 || v as usize >= self.threads.len() {
                    return StepEnd::Trap(format!("join of invalid thread id {v}"));
                }
                let target = ThreadId(v as u32);
                if target == tid {
                    return StepEnd::Trap("thread joining itself".into());
                }
                if self.threads[target.index()].state == TState::Done {
                    self.sync.join_seq += 1;
                    let seq = self.sync.join_seq;
                    let time = self.threads[tid.index()].clock;
                    self.stats.sync_ops += 1;
                    self.emit(
                        sup,
                        Event::Sync {
                            thread: tid,
                            kind: SyncKind::Join,
                            addr: v,
                            seq,
                            time,
                        },
                    );
                    self.advance_pc(tid);
                    StepEnd::Commit(scost)
                } else {
                    StepEnd::Block(BlockReason::Join(target))
                }
            }
            FlatOp::Malloc { dst, size, site } => {
                let n = self.val(tid, size);
                if n <= 0 || n > (1 << 24) {
                    return StepEnd::Trap(format!("malloc of invalid size {n}"));
                }
                let a = self.mem.alloc(n, RegionKind::Heap(site));
                self.set(tid, dst, a);
                self.advance_pc(tid);
                StepEnd::Commit(scost)
            }
            FlatOp::Free { addr } => {
                let a = self.val(tid, addr);
                match self.mem.dealloc(a) {
                    Ok(()) => {
                        self.advance_pc(tid);
                        StepEnd::Commit(scost)
                    }
                    Err(t) => StepEnd::Trap(t.to_string()),
                }
            }
            FlatOp::SysRead {
                dst,
                chan,
                buf,
                len,
            } => {
                let chan = self.val(tid, chan);
                let buf = self.val(tid, buf);
                let len = self.val(tid, len).clamp(0, 1 << 20) as usize;
                self.do_input(sup, tid, chan, buf, len, dst)
            }
            FlatOp::SysInput { dst, chan } => {
                let chan = self.val(tid, chan);
                self.do_input_scalar(sup, tid, chan, dst)
            }
            FlatOp::SysWrite { chan, buf, len } => {
                if !sup.may_proceed(OrderPoint::Output, tid) {
                    return StepEnd::Block(BlockReason::OrderTurn);
                }
                let _chan = self.val(tid, chan);
                let buf = self.val(tid, buf);
                let len = self.val(tid, len).clamp(0, 1 << 20);
                let mut data = std::mem::take(&mut self.io_buf);
                data.clear();
                for i in 0..len {
                    match self.mem.load(buf + i) {
                        Ok(v) => data.push(v),
                        Err(t) => {
                            self.io_buf = data;
                            return StepEnd::Trap(t.to_string());
                        }
                    }
                }
                for &v in &data {
                    self.output.push((tid, v));
                }
                self.stats.syscalls += 1;
                if self.wants(EventKind::Output) {
                    let ev = Event::Output {
                        thread: tid,
                        data: data.clone(),
                    };
                    self.emit(sup, ev);
                }
                self.io_buf = data;
                self.wake_order_stalled();
                self.advance_pc(tid);
                StepEnd::Commit(self.cost.syscall + len as u64)
            }
            FlatOp::Print { val } => {
                if !sup.may_proceed(OrderPoint::Output, tid) {
                    return StepEnd::Block(BlockReason::OrderTurn);
                }
                let v = self.val(tid, val);
                self.output.push((tid, v));
                self.stats.syscalls += 1;
                if self.wants(EventKind::Output) {
                    self.emit(
                        sup,
                        Event::Output {
                            thread: tid,
                            data: vec![v],
                        },
                    );
                }
                self.wake_order_stalled();
                self.advance_pc(tid);
                StepEnd::Commit(scost)
            }
            FlatOp::WeakAcquire {
                lock,
                granularity,
                range,
            } => {
                if let Some(pos) = self.threads[tid.index()]
                    .weak_granted
                    .iter()
                    .position(|l| *l == lock)
                {
                    // A forced handoff already completed this acquire:
                    // consuming it here makes the acquisition effective and
                    // emits its (recorded) event.
                    self.threads[tid.index()].weak_granted.remove(pos);
                    let held = self.threads[tid.index()]
                        .frames
                        .last()
                        .and_then(|f| f.held_weak.iter().rev().find(|h| h.lock == lock))
                        .copied();
                    let range = held.and_then(|h| h.range);
                    self.commit_granted_acquire(sup, tid, lock, range, granularity);
                    self.advance_pc(tid);
                    let mut c = self.cost.weak_op;
                    if self.config.log_weak {
                        c += self.cost.log_write;
                    }
                    return StepEnd::Commit(c);
                }
                let r = range.map(|(lo, hi)| {
                    let (a, b) = (self.val(tid, lo), self.val(tid, hi));
                    (a.min(b), a.max(b))
                });
                match self.try_weak_acquire(sup, tid, lock, r, granularity, false) {
                    WeakTry::Acquired => {
                        self.advance_pc(tid);
                        if self.config.log_weak {
                            ExecStats::bump(
                                &mut self.stats.weak_log_cycles,
                                granularity,
                                self.cost.log_write,
                            );
                        }
                        // scost pre-resolves weak_op + range_check? + log?.
                        StepEnd::Commit(scost)
                    }
                    WeakTry::Blocked(reason) => StepEnd::Block(reason),
                    WeakTry::Stalled => StepEnd::Block(BlockReason::OrderTurn),
                }
            }
            FlatOp::WeakRelease { lock } => {
                let tix = tid.index();
                let frame = self.threads[tix].frames.last_mut().unwrap();
                if let Some(pos) = frame.held_weak.iter().rposition(|h| h.lock == lock) {
                    frame.held_weak.remove(pos);
                    if let Some(state) = self.sync.weak.get_mut(lock) {
                        state.release(tid);
                    }
                }
                // Releasing a lock we no longer hold (forced release took
                // it) is a no-op: the forced-release protocol already
                // queued a reacquire balanced against this release.
                let time = self.threads[tix].clock;
                self.emit(
                    sup,
                    Event::WeakRelease {
                        thread: tid,
                        lock,
                        time,
                    },
                );
                self.wake_weak_waiters(lock, time);
                self.advance_pc(tid);
                StepEnd::Commit(scost)
            }
            FlatOp::Return { val } => self.do_return(sup, tid, val.map(|o| self.val(tid, o))),
        }
    }

    /// Flat-path call: argv is marshalled through the machine's scratch
    /// buffer instead of a fresh `Vec` per call.
    fn do_call_flat(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        target: FuncId,
        args: ArgRange,
        dst: Option<LocalId>,
    ) -> StepEnd {
        if self.threads[tid.index()].frames.len() >= 4096 {
            return StepEnd::Trap("call stack overflow".into());
        }
        let mut argv = std::mem::take(&mut self.argv);
        argv.clear();
        for i in args.as_range() {
            let op = self.flat.args[i];
            argv.push(self.val(tid, op));
        }
        self.advance_pc(tid); // return will resume past the call
        let frame = self.make_frame(target, &argv, dst);
        self.argv = argv;
        let time = self.threads[tid.index()].clock;
        self.threads[tid.index()].frames.push(frame);
        self.emit(
            sup,
            Event::FuncEnter {
                thread: tid,
                func: target,
                time,
            },
        );
        StepEnd::Commit(self.cost.call)
    }

    /// Flat-path spawn (caller has already passed the `OrderPoint::Spawn`
    /// gate); argv reuses the scratch buffer.
    fn do_spawn_flat(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        target: FuncId,
        args: ArgRange,
        dst: Option<LocalId>,
    ) -> StepEnd {
        let mut argv = std::mem::take(&mut self.argv);
        argv.clear();
        for i in args.as_range() {
            let op = self.flat.args[i];
            argv.push(self.val(tid, op));
        }
        let time = self.threads[tid.index()].clock;
        let child = self.spawn_thread(target, &argv, time + self.cost.spawn);
        self.argv = argv;
        if let Some(d) = dst {
            self.set(tid, d, child.0 as i64);
        }
        self.sync.spawn_seq += 1;
        let seq = self.sync.spawn_seq;
        self.stats.sync_ops += 1;
        self.emit(
            sup,
            Event::Spawned {
                parent: tid,
                child,
                func: target,
                time,
            },
        );
        self.emit(
            sup,
            Event::Sync {
                thread: tid,
                kind: SyncKind::Spawn,
                addr: child.0 as i64,
                seq,
                time,
            },
        );
        self.emit(
            sup,
            Event::FuncEnter {
                thread: child,
                func: target,
                time: time + self.cost.spawn,
            },
        );
        self.wake_order_stalled();
        self.advance_pc(tid);
        StepEnd::Commit(self.cost.spawn + self.log_cost_sync())
    }

    fn log_cost_sync(&mut self) -> u64 {
        if self.config.log_sync {
            self.cost.log_write
        } else {
            0
        }
    }

    fn do_lock(&mut self, sup: &mut dyn Supervisor, tid: ThreadId, addr: i64) -> StepEnd {
        if !sup.may_proceed(OrderPoint::Mutex(addr), tid) {
            return StepEnd::Block(BlockReason::OrderTurn);
        }
        let m = self.sync.mutexes.ensure(addr);
        match m.holder {
            None => {
                m.holder = Some(tid);
                m.seq += 1;
                let seq = m.seq;
                let time = self.threads[tid.index()].clock;
                self.stats.sync_ops += 1;
                self.emit(
                    sup,
                    Event::Sync {
                        thread: tid,
                        kind: SyncKind::Mutex,
                        addr,
                        seq,
                        time,
                    },
                );
                self.wake_order_stalled();
                self.advance_pc(tid);
                StepEnd::Commit(self.cost.sync_op + self.log_cost_sync())
            }
            Some(h) if h == tid => StepEnd::Trap(format!("recursive lock of mutex@{addr}")),
            Some(_) => StepEnd::Block(BlockReason::Mutex(addr)),
        }
    }

    fn do_unlock(&mut self, sup: &mut dyn Supervisor, tid: ThreadId, addr: i64) -> StepEnd {
        let Some(m) = self.sync.mutexes.get_mut(addr) else {
            return StepEnd::Trap(format!("unlock of never-locked mutex@{addr}"));
        };
        if m.holder != Some(tid) {
            return StepEnd::Trap(format!("unlock of mutex@{addr} not held by this thread"));
        }
        m.holder = None;
        let at = self.threads[tid.index()].clock;
        self.stats.sync_ops += 1;
        if self.wants_hb(EventKind::SyncRelease) {
            self.emit_hb(
                sup,
                Event::SyncRelease {
                    thread: tid,
                    kind: SyncKind::Mutex,
                    addr,
                    time: at,
                },
            );
        }
        self.wake_mutex_waiters(addr, at);
        self.advance_pc(tid);
        StepEnd::Commit(self.cost.sync_op)
    }

    fn do_barrier_wait(&mut self, sup: &mut dyn Supervisor, tid: ThreadId, addr: i64) -> StepEnd {
        if self.threads[tid.index()].barrier_pass {
            self.threads[tid.index()].barrier_pass = false;
            self.advance_pc(tid);
            if self.wants_hb(EventKind::BarrierResume) {
                let time = self.threads[tid.index()].clock;
                self.emit_hb(sup, Event::BarrierResume { thread: tid, addr, time });
            }
            return StepEnd::Commit(self.cost.sync_op + self.log_cost_sync());
        }
        let Some(b) = self.sync.barriers.get_mut(addr) else {
            return StepEnd::Trap(format!("barrier_wait on uninitialized barrier@{addr}"));
        };
        if b.count == 0 {
            return StepEnd::Trap(format!("barrier_wait on uninitialized barrier@{addr}"));
        }
        b.arrived.push(tid);
        if (b.arrived.len() as i64) == b.count {
            b.epoch += 1;
            let seq = b.epoch;
            let arrived = std::mem::take(&mut b.arrived);
            let release_time = arrived
                .iter()
                .map(|t| self.threads[t.index()].clock)
                .max()
                .unwrap_or(0);
            self.stats.sync_ops += 1;
            if self.wants_hb(EventKind::SyncRelease) {
                let time = self.threads[tid.index()].clock;
                self.emit_hb(
                    sup,
                    Event::SyncRelease {
                        thread: tid,
                        kind: SyncKind::Barrier,
                        addr,
                        time,
                    },
                );
            }
            self.emit(
                sup,
                Event::Sync {
                    thread: tid,
                    kind: SyncKind::Barrier,
                    addr,
                    seq,
                    time: release_time,
                },
            );
            for t in arrived {
                self.threads[t.index()].barrier_pass = true;
                if t != tid {
                    self.wake_thread(t, release_time, WaitKind::Sync);
                } else {
                    self.threads[t.index()].clock = release_time;
                }
            }
            self.wake_order_stalled();
            // Do not advance ip: this thread re-executes and consumes its
            // own barrier_pass flag (uniform exit path for all threads).
            StepEnd::Commit(0)
        } else {
            // A non-final arrival still releases into the barrier: the
            // threads resuming past this epoch are ordered after it.
            if self.wants_hb(EventKind::SyncRelease) {
                let time = self.threads[tid.index()].clock;
                self.emit_hb(
                    sup,
                    Event::SyncRelease {
                        thread: tid,
                        kind: SyncKind::Barrier,
                        addr,
                        time,
                    },
                );
            }
            StepEnd::Block(BlockReason::Barrier(addr))
        }
    }

    fn do_cond_wait(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        cond_addr: i64,
        lock_addr: i64,
    ) -> StepEnd {
        let tix = tid.index();
        if self.threads[tix].cond_phase == 2 {
            // Woken: reacquire the mutex, then proceed past the wait.
            if !sup.may_proceed(OrderPoint::Mutex(lock_addr), tid) {
                return StepEnd::Block(BlockReason::OrderTurn);
            }
            let m = self.sync.mutexes.ensure(lock_addr);
            match m.holder {
                None => {
                    m.holder = Some(tid);
                    m.seq += 1;
                    let seq = m.seq;
                    let time = self.threads[tix].clock;
                    self.stats.sync_ops += 1;
                    self.threads[tix].cond_phase = 0;
                    self.emit(
                        sup,
                        Event::Sync {
                            thread: tid,
                            kind: SyncKind::Mutex,
                            addr: lock_addr,
                            seq,
                            time,
                        },
                    );
                    self.wake_order_stalled();
                    self.advance_pc(tid);
                    StepEnd::Commit(self.cost.sync_op + self.log_cost_sync())
                }
                Some(_) => StepEnd::Block(BlockReason::CondReacquire(lock_addr)),
            }
        } else {
            // First execution: must hold the mutex; release it and wait.
            let Some(m) = self.sync.mutexes.get_mut(lock_addr) else {
                return StepEnd::Trap("cond_wait without holding the mutex".into());
            };
            if m.holder != Some(tid) {
                return StepEnd::Trap("cond_wait without holding the mutex".into());
            }
            m.holder = None;
            let at = self.threads[tix].clock;
            self.stats.sync_ops += 1;
            if self.wants_hb(EventKind::SyncRelease) {
                self.emit_hb(
                    sup,
                    Event::SyncRelease {
                        thread: tid,
                        kind: SyncKind::Mutex,
                        addr: lock_addr,
                        time: at,
                    },
                );
            }
            self.wake_mutex_waiters(lock_addr, at);
            self.sync.conds.ensure(cond_addr).waiters.push(tid);
            StepEnd::Block(BlockReason::Cond(cond_addr))
        }
    }

    fn do_cond_signal(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        addr: i64,
        broadcast: bool,
    ) -> StepEnd {
        // A globally-ordered (forensic) replay gates each wakeup on its
        // journal turn; dropping a signal because the recorded recipient
        // hasn't reached that turn yet would lose the wakeup forever, so
        // such supervisors ask the signaler to wait instead. Checked
        // before any mutation so the blocked step can simply re-run.
        if sup.defers_cond_signals() {
            let waiters = self
                .sync
                .conds
                .ensure(addr)
                .waiters
                .clone();
            if !waiters.is_empty()
                && !waiters
                    .iter()
                    .any(|w| sup.may_proceed(OrderPoint::Cond(addr), *w))
            {
                return StepEnd::Block(BlockReason::OrderTurn);
            }
        }
        let now = self.threads[tid.index()].clock;
        loop {
            let cand = {
                let c = self.sync.conds.ensure(addr);
                c.waiters
                    .iter()
                    .copied()
                    .find(|w| sup.may_proceed(OrderPoint::Cond(addr), *w))
            };
            let Some(w) = cand else { break };
            let c = self.sync.conds.get_mut(addr).expect("cond entry exists");
            c.waiters.retain(|x| *x != w);
            c.seq += 1;
            let seq = c.seq;
            self.stats.sync_ops += 1;
            self.threads[w.index()].cond_phase = 2;
            self.wake_thread(w, now, WaitKind::Sync);
            // The signaler's release into the cond object must reach the
            // detector before the waiter's acquire (the Sync below).
            if self.wants_hb(EventKind::SyncRelease) {
                self.emit_hb(
                    sup,
                    Event::SyncRelease {
                        thread: tid,
                        kind: SyncKind::Cond,
                        addr,
                        time: now,
                    },
                );
            }
            self.emit(
                sup,
                Event::Sync {
                    thread: w,
                    kind: SyncKind::Cond,
                    addr,
                    seq,
                    time: now,
                },
            );
            self.wake_order_stalled();
            if !broadcast {
                break;
            }
        }
        self.advance_pc(tid);
        StepEnd::Commit(self.cost.sync_op + self.log_cost_sync())
    }

    fn do_input(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        chan: i64,
        buf: i64,
        len: usize,
        dst: Option<LocalId>,
    ) -> StepEnd {
        if !sup.may_proceed(OrderPoint::Input, tid) {
            return StepEnd::Block(BlockReason::OrderTurn);
        }
        let (data, latency) = match sup.input_override(tid, chan, len) {
            Some(d) => (d, 0),
            None => {
                let d = self.world.gen_input(chan, len);
                let l = self.world.latency(chan, len);
                (d, l)
            }
        };
        for (i, &v) in data.iter().enumerate() {
            if let Err(t) = self.mem.store(buf + i as i64, v) {
                return StepEnd::Trap(t.to_string());
            }
        }
        if let Some(d) = dst {
            self.set(tid, d, data.len() as i64);
        }
        self.stats.syscalls += 1;
        self.stats.input_words += data.len() as u64;
        self.stats.io_wait += latency;
        self.threads[tid.index()].input_seq += 1;
        let time = self.threads[tid.index()].clock;
        self.emit(
            sup,
            Event::Input {
                thread: tid,
                chan,
                data,
                time,
            },
        );
        self.wake_order_stalled();
        self.advance_pc(tid);
        let log = if self.config.log_input {
            self.cost.log_write + (len as u64) / 4
        } else {
            0
        };
        StepEnd::Commit(self.cost.syscall + latency + log)
    }

    fn do_input_scalar(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        chan: i64,
        dst: LocalId,
    ) -> StepEnd {
        if !sup.may_proceed(OrderPoint::Input, tid) {
            return StepEnd::Block(BlockReason::OrderTurn);
        }
        let (data, latency) = match sup.input_override(tid, chan, 1) {
            Some(d) => (d, 0),
            None => {
                let d = self.world.gen_input(chan, 1);
                let l = self.world.latency(chan, 1);
                (d, l)
            }
        };
        let v = data.first().copied().unwrap_or(0);
        self.set(tid, dst, v);
        self.stats.syscalls += 1;
        self.stats.input_words += 1;
        self.stats.io_wait += latency;
        self.threads[tid.index()].input_seq += 1;
        let time = self.threads[tid.index()].clock;
        self.emit(
            sup,
            Event::Input {
                thread: tid,
                chan,
                data: vec![v],
                time,
            },
        );
        self.wake_order_stalled();
        self.advance_pc(tid);
        let log = if self.config.log_input {
            self.cost.log_write
        } else {
            0
        };
        StepEnd::Commit(self.cost.syscall + latency + log)
    }

    /// Emit the WeakAcquire event (and account for it) for a consumed
    /// forced-handoff grant — the point where the acquisition becomes part
    /// of the recorded order.
    fn commit_granted_acquire(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        lock: WeakLockId,
        range: Option<(i64, i64)>,
        gran: LockGranularity,
    ) {
        let state = self.sync.weak.ensure(lock);
        state.seq += 1;
        let seq = state.seq;
        ExecStats::bump(&mut self.stats.weak_acquires, gran, 1);
        if self.config.log_weak {
            ExecStats::bump(
                &mut self.stats.weak_log_cycles,
                gran,
                self.cost.log_write,
            );
        }
        let time = self.threads[tid.index()].clock;
        self.emit(
            sup,
            Event::WeakAcquire {
                thread: tid,
                lock,
                granularity: gran,
                range,
                seq,
                time,
            },
        );
        self.wake_order_stalled();
    }

    fn try_weak_acquire(
        &mut self,
        sup: &mut dyn Supervisor,
        tid: ThreadId,
        lock: WeakLockId,
        range: Option<(i64, i64)>,
        gran: LockGranularity,
        is_reacquire: bool,
    ) -> WeakTry {
        if !sup.may_proceed(OrderPoint::Weak(lock), tid) {
            return WeakTry::Stalled;
        }
        let state = self.sync.weak.ensure(lock);
        if !self.config.weak_always_succeed {
            if let Some(conflict) = state.conflict_with(range) {
                if conflict.thread != tid {
                    return WeakTry::Blocked(BlockReason::Weak(lock, range, gran));
                }
            }
            state.holders.push(WeakHolder { thread: tid, range });
        }
        state.seq += 1;
        let seq = state.seq;
        let time = self.threads[tid.index()].clock;
        // Track in the current frame so returns/forced releases can find it.
        self.threads[tid.index()]
            .frames
            .last_mut()
            .expect("live thread has frames")
            .held_weak
            .push(HeldWeak { lock, range, gran });
        ExecStats::bump(&mut self.stats.weak_acquires, gran, 1);
        self.emit(
            sup,
            Event::WeakAcquire {
                thread: tid,
                lock,
                granularity: gran,
                range,
                seq,
                time,
            },
        );
        self.wake_order_stalled();
        if is_reacquire {
            // Reacquire cost: same as a normal weak op.
            self.threads[tid.index()].clock += self.cost.weak_op;
        }
        WeakTry::Acquired
    }
}

enum WeakTry {
    Acquired,
    Blocked(BlockReason),
    Stalled,
}

enum WaitKind {
    Sync,
    Weak(LockGranularity),
}

fn decode_func_ptr(v: i64, n_funcs: usize) -> Option<FuncId> {
    if v >= FUNC_PTR_BASE && ((v - FUNC_PTR_BASE) as usize) < n_funcs {
        Some(FuncId((v - FUNC_PTR_BASE) as u32))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    fn run(src: &str) -> ExecResult {
        let p = compile(src).unwrap();
        execute(&p, &ExecConfig::default())
    }

    fn run_seed(src: &str, seed: u64) -> ExecResult {
        let p = compile(src).unwrap();
        execute(
            &p,
            &ExecConfig {
                seed,
                ..ExecConfig::default()
            },
        )
    }

    #[test]
    fn arithmetic_and_output() {
        let r = run("int main() { print(2 + 3 * 4); return 0; }");
        assert!(r.outcome.is_exit());
        assert_eq!(r.output_of(ThreadId(0)), vec![14]);
    }

    #[test]
    fn exit_code_is_mains_return() {
        let r = run("int main() { return 42; }");
        assert_eq!(r.outcome, Outcome::Exited(42));
    }

    #[test]
    fn loops_and_globals() {
        let r = run(
            "int acc;
             int main() { int i; for (i = 0; i < 10; i = i + 1) { acc = acc + i; }
                          print(acc); return acc; }",
        );
        assert_eq!(r.outcome, Outcome::Exited(45));
    }

    #[test]
    fn arrays_and_pointers() {
        let r = run(
            "int a[8];
             int main() {
               int i; int *p; int sum;
               for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }
               p = &a[0]; sum = 0;
               for (i = 0; i < 8; i = i + 1) { sum = sum + *(p + i); }
               print(sum); return 0;
             }",
        );
        assert_eq!(r.output_of(ThreadId(0)), vec![140]);
    }

    #[test]
    fn structs_through_pointers() {
        let r = run(
            "struct node { int val; struct node *next; };
             int main() {
               struct node a; struct node b; struct node *p;
               a.val = 1; b.val = 2; a.next = &b; b.next = 0;
               p = &a;
               print(p->next->val);
               return 0;
             }",
        );
        assert_eq!(r.output_of(ThreadId(0)), vec![2]);
    }

    #[test]
    fn recursion_works() {
        let r = run(
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
             int main() { print(fib(10)); return 0; }",
        );
        assert_eq!(r.output_of(ThreadId(0)), vec![55]);
    }

    #[test]
    fn malloc_free_cycle() {
        let r = run(
            "int main() {
               int *p; int i; int s;
               p = malloc(16);
               for (i = 0; i < 16; i = i + 1) { p[i] = i; }
               s = p[15];
               free(p);
               print(s); return 0;
             }",
        );
        assert_eq!(r.output_of(ThreadId(0)), vec![15]);
    }

    #[test]
    fn buffer_overflow_traps() {
        let r = run(
            "int a[4];
             int main() { a[9] = 1; return 0; }",
        );
        assert!(matches!(r.outcome, Outcome::Trap { .. }));
    }

    #[test]
    fn use_after_free_traps() {
        let r = run("int main() { int *p; p = malloc(2); free(p); *p = 1; return 0; }");
        assert!(matches!(r.outcome, Outcome::Trap { .. }));
    }

    #[test]
    fn division_by_zero_traps() {
        let r = run("int main() { int z; z = 0; return 1 / z; }");
        assert!(matches!(r.outcome, Outcome::Trap { .. }));
    }

    #[test]
    fn spawn_join_and_shared_memory() {
        let r = run(
            "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < n; i = i + 1) {
                lock(&m); g = g + 1; unlock(&m); } }
             int main() { int t1; int t2;
                t1 = spawn(w, 100); t2 = spawn(w, 100);
                join(t1); join(t2);
                print(g); return 0; }",
        );
        assert_eq!(r.output_of(ThreadId(0)), vec![200]);
        assert!(r.stats.threads == 3);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let r = run(
            "int a; int b; barrier_t bar;
             void w(int id) {
                if (id == 0) { a = 10; }
                barrier_wait(&bar);
                if (id == 1) { b = a * 2; }
             }
             int main() { int t1; int t2;
                barrier_init(&bar, 2);
                t1 = spawn(w, 0); t2 = spawn(w, 1);
                join(t1); join(t2);
                print(b); return 0; }",
        );
        assert_eq!(r.output_of(ThreadId(0)), vec![20], "{:?}", r.outcome);
    }

    #[test]
    fn condvar_producer_consumer() {
        let r = run(
            "int ready; int data; lock_t m; cond_t c;
             void producer(int v) {
                lock(&m); data = v; ready = 1; cond_signal(&c); unlock(&m);
             }
             void consumer(int unused) {
                lock(&m);
                while (ready == 0) { cond_wait(&c, &m); }
                print(data);
                unlock(&m);
             }
             int main() { int t1; int t2;
                t1 = spawn(consumer, 0);
                t2 = spawn(producer, 99);
                join(t1); join(t2); return 0; }",
        );
        assert!(r.outcome.is_exit(), "{:?}", r.outcome);
        assert_eq!(r.output_of(ThreadId(1)), vec![99]);
    }

    #[test]
    fn deadlock_detected() {
        let r = run(
            "lock_t m1; lock_t m2;
             void w(int unused) { lock(&m2); lock(&m1); unlock(&m1); unlock(&m2); }
             int main() { int t;
                lock(&m1);
                t = spawn(w, 0);
                // Give the other thread the chance to take m2 first by
                // burning time, then deadlock on m2.
                int i; int s; for (i = 0; i < 1000; i = i + 1) { s = s + i; }
                lock(&m2);
                join(t); return 0; }",
        );
        // Depending on timing this either completes or deadlocks, but must
        // never hang or trap. With default seed the spawned thread grabs m2
        // while main burns cycles.
        assert!(
            matches!(r.outcome, Outcome::Deadlock { .. } | Outcome::Exited(_)),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn recursive_lock_traps() {
        let r = run("lock_t m; int main() { lock(&m); lock(&m); return 0; }");
        assert!(matches!(r.outcome, Outcome::Trap { .. }));
    }

    #[test]
    fn unlock_not_held_traps() {
        let r = run("lock_t m; int main() { unlock(&m); return 0; }");
        assert!(matches!(r.outcome, Outcome::Trap { .. }));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let src = "int g;
             void w(int n) { int i; for (i = 0; i < n; i = i + 1) { g = g + 1; } }
             int main() { int t; t = spawn(w, 50); w(50); join(t); print(g); return 0; }";
        let a = run_seed(src, 7);
        let b = run_seed(src, 7);
        assert_eq!(a.output, b.output);
        assert_eq!(a.state_hash, b.state_hash);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn racy_program_diverges_across_seeds() {
        // A store-load race on g: the final value depends on interleaving.
        let src = "int g;
             void w(int v) { int i; int x;
                for (i = 0; i < 200; i = i + 1) { x = g; g = x + 1; } }
             int main() { int t; t = spawn(w, 1); w(2); join(t); print(g); return 0; }";
        let outputs: Vec<Vec<i64>> = (0..8)
            .map(|s| run_seed(src, s).output_of(ThreadId(0)))
            .collect();
        let all_same = outputs.windows(2).all(|w| w[0] == w[1]);
        assert!(
            !all_same,
            "expected lost updates to vary across seeds: {outputs:?}"
        );
    }

    #[test]
    fn input_is_seed_dependent_and_counted() {
        let src = "int buf[16];
             int main() { int n; n = sys_read(0, &buf[0], 16); print(buf[0]); return n; }";
        let a = run_seed(src, 1);
        let b = run_seed(src, 2);
        assert_eq!(a.stats.syscalls, b.stats.syscalls);
        assert_eq!(a.stats.input_words, 16);
        // Content differs across seeds with overwhelming probability.
        assert_ne!(a.output, b.output);
    }

    #[test]
    fn io_latency_accrues_wait_time() {
        let r = run(
            "int buf[4];
             int main() { sys_read(1000, &buf[0], 4); return 0; }",
        );
        assert!(r.stats.io_wait > 0);
    }

    #[test]
    fn stats_count_memory_ops() {
        let r = run("int g; int main() { g = 1; g = g + 1; return g; }");
        // store, load+store, load = 4 memory operations.
        assert_eq!(r.stats.mem_ops, 4);
    }

    #[test]
    fn makespan_reflects_parallelism() {
        // Two independent workers should overlap: makespan well under the
        // sum of both workers' work.
        let par = run(
            "int a; int b;
             void w1(int n) { int i; for (i = 0; i < 2000; i = i + 1) { a = a + 1; } }
             void w2(int n) { int i; for (i = 0; i < 2000; i = i + 1) { b = b + 1; } }
             int main() { int t1; int t2;
                t1 = spawn(w1, 0); t2 = spawn(w2, 0); join(t1); join(t2); return 0; }",
        );
        let seq = run(
            "int a; int b;
             void w1(int n) { int i; for (i = 0; i < 2000; i = i + 1) { a = a + 1; } }
             void w2(int n) { int i; for (i = 0; i < 2000; i = i + 1) { b = b + 1; } }
             int main() { w1(0); w2(0); return 0; }",
        );
        assert!(
            (par.makespan as f64) < 0.75 * seq.makespan as f64,
            "parallel {} vs sequential {}",
            par.makespan,
            seq.makespan
        );
    }

    #[test]
    fn function_pointer_call() {
        let r = run(
            "int double_it(int x) { return x * 2; }
             int main() { int *fp; fp = double_it; print(fp(21)); return 0; }",
        );
        assert_eq!(r.output_of(ThreadId(0)), vec![42]);
    }

    #[test]
    fn indirect_call_through_bad_value_traps() {
        let r = run("int main() { int *fp; fp = 0; return fp(1); }");
        assert!(matches!(r.outcome, Outcome::Trap { .. }));
    }

    #[test]
    fn unbounded_recursion_traps_as_stack_overflow() {
        let r = run("int f(int n) { return f(n + 1); } int main() { return f(0); }");
        let Outcome::Trap { message, .. } = &r.outcome else {
            panic!("expected trap, got {:?}", r.outcome);
        };
        assert!(message.contains("stack overflow"), "{message}");
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let p = compile("int main() { while (1) {} return 0; }").unwrap();
        let r = execute(
            &p,
            &ExecConfig {
                max_steps: 10_000,
                ..ExecConfig::default()
            },
        );
        assert_eq!(r.outcome, Outcome::StepLimit);
    }

    /// Run `src` in both interpreter modes and require byte-identical
    /// results, including the full event trace. The cross-workload version
    /// of this check lives in `tests/vm_differential.rs`; this one keeps
    /// the invariant enforced from inside the crate.
    fn assert_modes_agree(src: &str, seed: u64) {
        assert_modes_agree_cfg(
            src,
            &ExecConfig {
                seed,
                collect_trace: true,
                count_blocks: true,
                ..ExecConfig::default()
            },
        );
    }

    fn assert_modes_agree_cfg(src: &str, cfg: &ExecConfig) {
        let p = compile(src).unwrap();
        let flat = execute_mode(&p, cfg, InterpMode::Flat);
        let refr = execute_mode(&p, cfg, InterpMode::Reference);
        assert_eq!(flat.outcome, refr.outcome);
        assert_eq!(flat.output, refr.output);
        assert_eq!(flat.state_hash, refr.state_hash);
        assert_eq!(flat.makespan, refr.makespan);
        assert_eq!(flat.stats, refr.stats);
        assert_eq!(flat.trace, refr.trace);
        assert_eq!(flat.block_counts, refr.block_counts);
    }

    #[test]
    fn flat_and_reference_agree_on_contended_mutex() {
        let src = "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < 50; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t1; int t2;
                t1 = spawn(w, 1); t2 = spawn(w, 2); w(3);
                join(t1); join(t2); print(g); return 0; }";
        for seed in [0, 7, 99] {
            assert_modes_agree(src, seed);
        }
    }

    #[test]
    fn flat_and_reference_agree_on_barrier_cond_io() {
        let src = "int stage; lock_t m; cond_t c; barrier_t b; int buf[4];
             void w(int id) {
                barrier_init(&b, 2);
                sys_read(id, &buf[0], 4);
                barrier_wait(&b);
                lock(&m);
                while (stage < 1) { cond_wait(&c, &m); }
                unlock(&m);
                print(buf[0] + id);
             }
             int main() { int t;
                barrier_init(&b, 2);
                t = spawn(w, 1);
                barrier_wait(&b);
                lock(&m); stage = 1; cond_broadcast(&c); unlock(&m);
                join(t); return 0; }";
        for seed in [1, 13] {
            assert_modes_agree(src, seed);
        }
    }

    /// An uninstrumented racy accumulator: the final `g` depends entirely
    /// on how the scheduler interleaves the read-modify-write windows, so
    /// it makes schedule differences observable through output alone.
    const RACY_COUNTER: &str = "int g;
         void w(int v) { int i; int x;
            for (i = 0; i < 60; i = i + 1) { x = g; g = x + v; } }
         int main() { int t; t = spawn(w, 1); w(2); join(t);
            print(g); return 0; }";

    fn sched_cfg(sched: SchedStrategy, seed: u64) -> ExecConfig {
        ExecConfig {
            seed,
            sched,
            collect_trace: true,
            count_blocks: true,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn adversarial_strategies_keep_modes_bit_identical() {
        let contended = "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < 50; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t1; int t2;
                t1 = spawn(w, 1); t2 = spawn(w, 2); w(3);
                join(t1); join(t2); print(g); return 0; }";
        for sched in [
            SchedStrategy::Pct {
                depth: 3,
                span: 2_000,
            },
            SchedStrategy::PreemptBound {
                budget: 256,
                period: 1,
            },
        ] {
            for seed in [0, 7, 99] {
                assert_modes_agree_cfg(contended, &sched_cfg(sched, seed));
                assert_modes_agree_cfg(RACY_COUNTER, &sched_cfg(sched, seed));
            }
        }
    }

    #[test]
    fn pct_is_deterministic_per_seed_and_explores_across_seeds() {
        let p = compile(RACY_COUNTER).unwrap();
        let sched = SchedStrategy::Pct {
            depth: 3,
            span: 2_000,
        };
        let mut hashes = std::collections::BTreeSet::new();
        for seed in 0..8 {
            let cfg = sched_cfg(sched, seed);
            let a = execute(&p, &cfg);
            let b = execute(&p, &cfg);
            assert!(a.outcome.is_exit(), "{:?}", a.outcome);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.output, b.output);
            assert_eq!(a.state_hash, b.state_hash);
            hashes.insert(a.state_hash);
        }
        assert!(
            hashes.len() > 1,
            "PCT produced one schedule across 8 seeds — change points never fired"
        );
    }

    #[test]
    fn preempt_bound_injects_preemptions_deterministically() {
        let p = compile(RACY_COUNTER).unwrap();
        let cfg = sched_cfg(
            SchedStrategy::PreemptBound {
                budget: 4_096,
                period: 1,
            },
            5,
        );
        let a = execute(&p, &cfg);
        let b = execute(&p, &cfg);
        assert!(a.outcome.is_exit(), "{:?}", a.outcome);
        assert!(a.stats.sched_preemptions > 0);
        assert_eq!(a.stats.sched_preemptions, b.stats.sched_preemptions);
        assert_eq!(a.output, b.output);
        assert_eq!(a.state_hash, b.state_hash);
        // Forcing a switch inside every read-modify-write window must lose
        // updates: the serial total (60*1 + 60*2 = 180) is unreachable.
        assert_ne!(a.output_of(ThreadId(0)), vec![180]);
    }

    #[test]
    fn baseline_strategy_reports_no_preemptions() {
        let p = compile(RACY_COUNTER).unwrap();
        let r = execute(&p, &ExecConfig::default());
        assert!(r.outcome.is_exit());
        assert_eq!(r.stats.sched_preemptions, 0);
    }

    #[test]
    fn strategies_handle_deadlock_and_step_limit() {
        let deadlock = "lock_t a; lock_t b;
             void w(int n) { lock(&b); lock(&a); unlock(&a); unlock(&b); }
             int main() { int t; lock(&a); t = spawn(w, 0);
                lock(&b); unlock(&b); unlock(&a); join(t); return 0; }";
        let spin = "int main() { while (1) {} return 0; }";
        for sched in [
            SchedStrategy::Pct {
                depth: 2,
                span: 500,
            },
            SchedStrategy::PreemptBound {
                budget: 64,
                period: 1,
            },
        ] {
            for seed in [1, 4] {
                let cfg = ExecConfig {
                    max_steps: 20_000,
                    ..sched_cfg(sched, seed)
                };
                let p = compile(deadlock).unwrap();
                let r = execute(&p, &cfg);
                assert!(
                    matches!(r.outcome, Outcome::Deadlock { .. } | Outcome::Exited(_)),
                    "{sched:?} seed {seed}: {:?}",
                    r.outcome
                );
                let p = compile(spin).unwrap();
                assert_eq!(execute(&p, &cfg).outcome, Outcome::StepLimit);
                assert_modes_agree_cfg(
                    deadlock,
                    &ExecConfig {
                        max_steps: 20_000,
                        ..sched_cfg(sched, seed)
                    },
                );
            }
        }
    }

    #[test]
    fn flat_and_reference_agree_on_traps() {
        for src in [
            "int main() { int x; x = 0; return 1 / x; }",
            "int main() { int *p; p = 0; return *p; }",
            "int f(int n) { return f(n); } int main() { return f(0); }",
        ] {
            assert_modes_agree(src, 0);
        }
    }

    #[test]
    fn reference_mode_env_var_is_honored_by_explicit_mode_calls() {
        // `execute` resolves the mode once per process from
        // CHIMERA_VM_REFERENCE; explicit calls bypass the cache entirely.
        let p = compile("int main() { print(5); return 0; }").unwrap();
        let cfg = ExecConfig::default();
        let r = execute_mode(&p, &cfg, InterpMode::Reference);
        assert_eq!(r.output_of(ThreadId(0)), vec![5]);
    }

    #[test]
    fn step_limit_agrees_across_modes_mid_burst() {
        // The limit must trip at the same retired-instruction count even
        // when the flat path is bursting a single runnable thread.
        let p = compile("int main() { while (1) {} return 0; }").unwrap();
        let cfg = ExecConfig {
            max_steps: 1_000,
            ..ExecConfig::default()
        };
        let flat = execute_mode(&p, &cfg, InterpMode::Flat);
        let refr = execute_mode(&p, &cfg, InterpMode::Reference);
        assert_eq!(flat.outcome, Outcome::StepLimit);
        assert_eq!(flat.outcome, refr.outcome);
        assert_eq!(flat.stats.instrs, refr.stats.instrs);
        assert_eq!(flat.makespan, refr.makespan);
    }
}
