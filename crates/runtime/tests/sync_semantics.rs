//! Integration tests for the virtual machine's synchronization semantics:
//! condvar broadcast, barrier reuse, join chains, mutex fairness, and the
//! interactions a recorder depends on.

use chimera_minic::compile;
use chimera_runtime::{execute, ExecConfig, Outcome, ThreadId};

fn run(src: &str) -> chimera_runtime::ExecResult {
    let p = compile(src).unwrap_or_else(|e| panic!("compile: {e}"));
    execute(&p, &ExecConfig::default())
}

#[test]
fn broadcast_wakes_every_waiter() {
    let r = run(
        "int ready; int woken; lock_t m; cond_t c;
         void waiter(int id) {
             lock(&m);
             while (ready == 0) { cond_wait(&c, &m); }
             woken = woken + 1;
             unlock(&m);
         }
         int main() {
             int t1; int t2; int t3;
             t1 = spawn(waiter, 1);
             t2 = spawn(waiter, 2);
             t3 = spawn(waiter, 3);
             // Give the waiters time to park.
             int i; int s; s = 0;
             for (i = 0; i < 500; i = i + 1) { s = s + i; }
             lock(&m); ready = 1; cond_broadcast(&c); unlock(&m);
             join(t1); join(t2); join(t3);
             print(woken);
             return 0;
         }",
    );
    assert!(r.outcome.is_exit(), "{:?}", r.outcome);
    assert_eq!(r.output_of(ThreadId(0)), vec![3]);
}

#[test]
fn signal_wakes_exactly_one_at_a_time() {
    let r = run(
        "int tokens; int consumed; lock_t m; cond_t c;
         void consumer(int id) {
             lock(&m);
             while (tokens == 0) { cond_wait(&c, &m); }
             tokens = tokens - 1;
             consumed = consumed + 1;
             unlock(&m);
         }
         int main() {
             int t1; int t2; int i; int s;
             t1 = spawn(consumer, 1);
             t2 = spawn(consumer, 2);
             for (i = 0; i < 300; i = i + 1) { s = s + i; }
             lock(&m); tokens = tokens + 1; cond_signal(&c); unlock(&m);
             for (i = 0; i < 300; i = i + 1) { s = s + i; }
             lock(&m); tokens = tokens + 1; cond_signal(&c); unlock(&m);
             join(t1); join(t2);
             print(consumed);
             print(tokens);
             return 0;
         }",
    );
    assert!(r.outcome.is_exit(), "{:?}", r.outcome);
    assert_eq!(r.output_of(ThreadId(0)), vec![2, 0]);
}

#[test]
fn barrier_is_reusable_across_epochs() {
    let r = run(
        "int phase_sum[3]; barrier_t b; lock_t m;
         void w(int id) {
             int e;
             for (e = 0; e < 3; e = e + 1) {
                 lock(&m);
                 phase_sum[e] = phase_sum[e] + 1;
                 unlock(&m);
                 barrier_wait(&b);
             }
         }
         int main() {
             int t1; int t2; int ok; int e;
             barrier_init(&b, 3);
             t1 = spawn(w, 1);
             t2 = spawn(w, 2);
             w(0);
             join(t1); join(t2);
             ok = 1;
             for (e = 0; e < 3; e = e + 1) {
                 if (phase_sum[e] != 3) { ok = 0; }
             }
             print(ok);
             return 0;
         }",
    );
    assert!(r.outcome.is_exit(), "{:?}", r.outcome);
    assert_eq!(r.output_of(ThreadId(0)), vec![1]);
}

#[test]
fn join_chain_propagates_results_through_memory() {
    let r = run(
        "int stage1; int stage2;
         void b(int v) { stage2 = stage1 * v; }
         void a(int v) {
             int t;
             stage1 = v + 1;
             t = spawn(b, 10);
             join(t);
         }
         int main() {
             int t;
             t = spawn(a, 4);
             join(t);
             print(stage2);
             return 0;
         }",
    );
    assert_eq!(r.output_of(ThreadId(0)), vec![50]);
}

#[test]
fn mutex_serializes_critical_sections_exactly() {
    // With K threads each adding N under a lock, no update is lost.
    let r = run(
        "int counter; lock_t m;
         void w(int n) {
             int i;
             for (i = 0; i < 100; i = i + 1) {
                 lock(&m);
                 counter = counter + 1;
                 unlock(&m);
             }
         }
         int main() {
             int tids[4]; int i;
             for (i = 0; i < 4; i = i + 1) { tids[i] = spawn(w, i); }
             for (i = 0; i < 4; i = i + 1) { join(tids[i]); }
             print(counter);
             return 0;
         }",
    );
    assert_eq!(r.output_of(ThreadId(0)), vec![400]);
}

#[test]
fn barrier_count_mismatch_deadlocks_detectably() {
    // Only 2 arrivals at a 3-party barrier: the machine must report a
    // deadlock rather than hang.
    let p = compile(
        "barrier_t b;
         void w(int id) { barrier_wait(&b); }
         int main() {
             int t;
             barrier_init(&b, 3);
             t = spawn(w, 1);
             barrier_wait(&b);
             join(t);
             return 0;
         }",
    )
    .unwrap();
    let r = execute(&p, &ExecConfig::default());
    assert!(
        matches!(r.outcome, Outcome::Deadlock { .. }),
        "{:?}",
        r.outcome
    );
}

#[test]
fn many_threads_scale_structurally() {
    let r = run(
        "int acc[16];
         void w(int id) { int i; for (i = 0; i < 50; i = i + 1) { acc[id] = acc[id] + 1; } }
         int main() {
             int tids[16]; int i; int total;
             for (i = 0; i < 16; i = i + 1) { tids[i] = spawn(w, i); }
             for (i = 0; i < 16; i = i + 1) { join(tids[i]); }
             total = 0;
             for (i = 0; i < 16; i = i + 1) { total = total + acc[i]; }
             print(total);
             return 0;
         }",
    );
    assert_eq!(r.output_of(ThreadId(0)), vec![800]);
    assert_eq!(r.stats.threads, 17);
}

#[test]
fn sync_wait_is_accounted() {
    let r = run(
        "int g; lock_t m;
         void hog(int n) {
             int i;
             lock(&m);
             for (i = 0; i < 2000; i = i + 1) { g = g + 1; }
             unlock(&m);
         }
         int main() {
             int t;
             t = spawn(hog, 0);
             // Burn a little, then contend on the lock the hog holds.
             int i; int s;
             for (i = 0; i < 50; i = i + 1) { s = s + i; }
             lock(&m); g = g + 1; unlock(&m);
             join(t);
             return 0;
         }",
    );
    assert!(r.outcome.is_exit());
    assert!(
        r.stats.sync_wait > 1000,
        "main must have waited on the hog: {}",
        r.stats.sync_wait
    );
}
