//! `ocean` — the SPLASH-2 grid relaxation kernel.
//!
//! Workers own horizontal bands of a 2D grid and alternate between two
//! arrays (`red` reads / `black` writes, then swapped) with a barrier
//! between half-steps. The inner column loop has precise symbolic bounds
//! (one row), but boundary rows are read by *neighboring* workers too, so
//! the per-row loop-lock ranges of adjacent workers overlap — the residual
//! loop-lock contention that dominates ocean's recording overhead in the
//! paper's Figure 7.

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// ocean: banded red/black grid relaxation (SPLASH-2).
int red[@CELLS@];
int black[@CELLS@];
int residual[@W@];
barrier_t half_step;

void relax_band(int id) {
    int it; int r; int c; int base; int up; int down; int acc;
    int r0; int r1;
    r0 = 1 + id * @BAND@;
    r1 = r0 + @BAND@;
    for (it = 0; it < @ITERS@; it = it + 1) {
        // Read red, write black.
        acc = 0;
        for (r = r0; r < r1; r = r + 1) {
            base = r * @COLS@;
            up = base - @COLS@;
            down = base + @COLS@;
            for (c = 1; c < @COLSM1@; c = c + 1) {
                black[base + c] = (red[up + c] + red[down + c]
                    + red[base + c - 1] + red[base + c + 1]) / 4;
                acc = acc + black[base + c];
            }
        }
        residual[id] = acc;
        barrier_wait(&half_step);
        // Read black, write red.
        for (r = r0; r < r1; r = r + 1) {
            base = r * @COLS@;
            up = base - @COLS@;
            down = base + @COLS@;
            for (c = 1; c < @COLSM1@; c = c + 1) {
                red[base + c] = (black[up + c] + black[down + c]
                    + black[base + c - 1] + black[base + c + 1]) / 4;
            }
        }
        barrier_wait(&half_step);
    }
}

int main() {
    int i; int v; int sum;
    int tids[@W@];
    v = sys_input(0);
    for (i = 0; i < @CELLS@; i = i + 1) {
        v = v * 1103515245 + 12345;
        if (v < 0) { v = 0 - v; }
        red[i] = v % 256;
        black[i] = 0;
    }
    barrier_init(&half_step, @W@);
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(relax_band, i);
    }
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    sum = 0;
    for (i = 0; i < @W@; i = i + 1) {
        sum = sum + residual[i];
    }
    print(sum);
    print(red[@COLS@ + 1]);
    return 0;
}
"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    let band = 2; // rows per worker
    let rows = w * band + 2; // plus halo rows top/bottom
    let cols = 4 + 2 * p.scale as i64;
    fill(
        TEMPLATE,
        &[
            ("W", w),
            ("BAND", band),
            ("COLS", cols),
            ("COLSM1", cols - 1),
            ("CELLS", rows * cols),
            ("ITERS", 1 + p.scale as i64 / 2),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;

    #[test]
    fn runs_to_completion() {
        let src = source(&Params {
            workers: 4,
            scale: 3,
        });
        let r = run_source(&src);
        assert_eq!(r.output.len(), 2);
    }

    #[test]
    fn neighbor_band_reads_are_reported_racy() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        assert!(!races.pairs.is_empty());
    }

    #[test]
    fn loop_locks_get_precise_row_ranges() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        let prof = chimera_profile::profile_runs(
            &p,
            &chimera_runtime::ExecConfig::default(),
            &[1, 2],
        );
        let plan = chimera_instrument::plan(
            &p,
            &races,
            &prof,
            &chimera_instrument::OptSet::all(),
        );
        let ranged = plan
            .loop_locks
            .values()
            .flatten()
            .filter(|s| s.range.is_some())
            .count();
        assert!(ranged > 0, "inner column loops must get ranged loop-locks");
    }
}
