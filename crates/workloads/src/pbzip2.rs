//! `pbzip2` — a parallel block compressor.
//!
//! Faithful to the real tool's structure: the main thread reads the input
//! file into a shared buffer; each worker copies its block into *private*
//! scratch, runs the compute-heavy transform passes there (standing in for
//! BWT + MTF + Huffman), and publishes the compressed result into its
//! partition of the shared output with one affine copy loop. All shared
//! accesses therefore have precise symbolic bounds, so Chimera covers the
//! false races (fork/join-ordered fill, partitioned publish) with ranged
//! loop-locks at near-zero cost — the paper reports 1.02x for pbzip2.

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// pbzip2: parallel block compression (local transform + RLE publish).
int input[@IN@];
int out_blocks[@OUT@];
int out_len[@W@];

void compress_block(int id) {
    int scratch[@BLOCK@];
    int packed[@OBLOCK@];
    int i; int w; int crc; int start; int obase; int cur; int run;
    start = id * @BLOCK@;
    obase = id * @OBLOCK@;
    // Copy the block in: shared reads with precise bounds.
    for (i = 0; i < @BLOCK@; i = i + 1) {
        scratch[i] = input[start + i];
    }
    // Transform passes over private data (the compute that dominates
    // real bzip2; invisible to the race detector because scratch never
    // escapes this frame).
    crc = 0;
    for (i = 0; i < @BLOCK@; i = i + 1) {
        crc = (crc * 31 + scratch[i]) % 65521;
        scratch[i] = (scratch[i] + (crc & 7)) % 256;
    }
    for (i = 1; i < @BLOCK@; i = i + 1) {
        scratch[i] = (scratch[i] + scratch[i - 1]) % 256;
    }
    for (i = 0; i < @BLOCK@; i = i + 1) {
        scratch[i] = scratch[i] / 64;
    }
    // Run-length encode into private output.
    w = 0;
    cur = scratch[0];
    run = 1;
    for (i = 1; i < @BLOCK@; i = i + 1) {
        if (scratch[i] == cur) {
            run = run + 1;
        } else {
            packed[w] = cur;
            packed[w + 1] = run;
            w = w + 2;
            cur = scratch[i];
            run = 1;
        }
    }
    packed[w] = cur;
    packed[w + 1] = run;
    w = w + 2;
    // Publish: one affine copy into our shared partition (precise bounds).
    for (i = 0; i < w; i = i + 1) {
        out_blocks[obase + i] = packed[i];
    }
    out_len[id] = w;
}

int main() {
    int i; int b; int total;
    int tids[@W@];
    // Read the input file in slices (the paper's 16 MB file, scaled).
    for (b = 0; b < @W@; b = b + 1) {
        sys_read(3, &input[b * @BLOCK@], @BLOCK@);
    }
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(compress_block, i);
    }
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    // Ordered writer: emit each block's compressed words.
    total = 0;
    for (b = 0; b < @W@; b = b + 1) {
        sys_write(1, &out_blocks[b * @OBLOCK@], out_len[b]);
        total = total + out_len[b];
    }
    print(total);
    return 0;
}
"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    let block = 24 * p.scale as i64;
    // RLE worst case doubles the size.
    let oblock = 2 * block + 2;
    fill(
        TEMPLATE,
        &[
            ("W", w),
            ("BLOCK", block),
            ("OBLOCK", oblock),
            ("IN", w * block),
            ("OUT", w * oblock),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;
    use chimera_runtime::ThreadId;

    #[test]
    fn compresses_all_blocks() {
        let src = source(&Params {
            workers: 4,
            scale: 2,
        });
        let r = run_source(&src);
        let out = r.output_of(ThreadId(0));
        let total = *out.last().unwrap();
        assert!(total >= 4 * 2, "at least one run per block");
        assert!(total <= 4 * (2 * 24 * 2 + 2));
    }

    #[test]
    fn shared_accesses_all_have_precise_bounds() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        assert!(!races.pairs.is_empty());
        let prof = chimera_profile::profile_runs(
            &p,
            &chimera_runtime::ExecConfig::default(),
            &[1, 2],
        );
        let plan = chimera_instrument::plan(
            &p,
            &races,
            &prof,
            &chimera_instrument::OptSet::all(),
        );
        // The hot shared accesses (block copy-in, publish) coarsen to
        // ranged loop locks; only the writer's out_len reads (in a block
        // with a syscall) may stay at instruction granularity.
        assert!(plan.stats.sides_loop >= 1, "{:?}", plan.stats);
        assert!(plan.stats.sides_instr <= 2, "{:?}", plan.stats);
    }
}
