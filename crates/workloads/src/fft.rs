//! `fft` — the SPLASH-2 FFT kernel's communication pattern.
//!
//! Butterfly stages combine each element with a partner at `j ^ stride`.
//! The XOR is arithmetic the symbolic bounds analysis does not model
//! (§5.2), so the partner reads get `±∞` bounds and the stage loops
//! serialize under a range-less loop-lock — which is why fft keeps a high
//! recording overhead dominated by loop-lock contention in the paper
//! (Fig. 7), growing with thread count (Fig. 8). The bit-reversal copy
//! phase, by contrast, has precise partitioned bounds.

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// fft: butterfly stages with xor partners (SPLASH-2).
int data[@N@];
int scratch[@N@];
int checksum[@W@];
barrier_t stage;

void butterfly(int id) {
    int s; int j; int partner; int start; int stop; int stride;
    start = id * @CHUNK@;
    stop = start + @CHUNK@;
    stride = 1;
    for (s = 0; s < @STAGES@; s = s + 1) {
        for (j = start; j < stop; j = j + 1) {
            partner = j ^ stride;
            scratch[j] = data[j] + data[partner];
        }
        barrier_wait(&stage);
        // Copy back: precise partitioned bounds.
        for (j = start; j < stop; j = j + 1) {
            data[j] = scratch[j] / 2;
        }
        barrier_wait(&stage);
        stride = stride * 2;
        if (stride >= @N@) { stride = 1; }
    }
    checksum[id] = data[start];
}

int main() {
    int i; int v; int sum;
    int tids[@W@];
    v = sys_input(0);
    for (i = 0; i < @N@; i = i + 1) {
        v = v * 48271 + 13;
        if (v < 0) { v = 0 - v; }
        data[i] = v % 512;
    }
    barrier_init(&stage, @W@);
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(butterfly, i);
    }
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    sum = 0;
    for (i = 0; i < @W@; i = i + 1) {
        sum = sum + checksum[i];
    }
    // Inverse-check flavor of the evaluation input: fold the whole array.
    for (i = 0; i < @N@; i = i + 1) {
        sum = sum + data[i];
    }
    print(sum);
    return 0;
}
"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    // Power-of-two chunk so xor partners stay in range.
    let chunk = 16i64;
    let n = (p.workers.next_power_of_two() as i64) * chunk;
    fill(
        TEMPLATE,
        &[
            ("N", n),
            ("W", w),
            ("CHUNK", n / w),
            ("STAGES", 2 + p.scale as i64 / 2),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;

    #[test]
    fn runs_for_2_4_8_workers() {
        for w in [2, 4, 8] {
            let src = source(&Params {
                workers: w,
                scale: 3,
            });
            let r = run_source(&src);
            assert_eq!(r.output.len(), 1, "workers={w}");
        }
    }

    #[test]
    fn xor_partner_access_has_top_bounds() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        let prof = chimera_profile::profile_runs(
            &p,
            &chimera_runtime::ExecConfig::default(),
            &[1],
        );
        let plan = chimera_instrument::plan(
            &p,
            &races,
            &prof,
            &chimera_instrument::OptSet::all(),
        );
        // At least one loop-lock must be range-less (the xor partner read).
        let rangeless = plan
            .loop_locks
            .values()
            .flatten()
            .filter(|s| s.range.is_none())
            .count();
        assert!(rangeless > 0, "{:?}", plan.loop_locks);
    }
}
