//! `aget` — a segmented parallel downloader.
//!
//! Each worker pulls chunks of the remote file from its own (high-latency)
//! network channel into a private scratch buffer, then copies them into
//! its partition of the shared file buffer — partitioned stores with
//! precise symbolic bounds, so loop-locks keep the workers parallel. The
//! run is dominated by network wait, so recording cost hides inside I/O
//! exactly as in the paper (§7.3), and the input log is large because the
//! whole downloaded file is in it (§7.2).

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// aget: segmented parallel HTTP-style downloader.
int buffer[@BUF@];
int progress[@W@];
int total_done;
lock_t done_lock;

void downloader(int id) {
    int off; int got; int i; int start;
    int scratch[@REQ@];
    start = id * @CHUNK@;
    off = 0;
    while (off < @CHUNK@) {
        got = sys_read(@NETCH@ + id, &scratch[0], @REQ@);
        // Copy the received words into our partition of the shared file
        // buffer: partitioned stores, precise bounds.
        for (i = 0; i < got; i = i + 1) {
            buffer[start + off + i] = scratch[i];
        }
        off = off + got;
        progress[id] = off;
    }
    lock(&done_lock);
    total_done = total_done + off;
    unlock(&done_lock);
}

int main() {
    int i; int sum;
    int tids[@W@];
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(downloader, i);
    }
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    // Write the assembled file out and print a checksum.
    sys_write(1, &buffer[0], @BUF@);
    sum = 0;
    for (i = 0; i < @W@; i = i + 1) {
        sum = sum + progress[i];
    }
    print(total_done);
    print(sum);
    return 0;
}
"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    let req = 16i64;
    let chunk = req * p.scale as i64;
    fill(
        TEMPLATE,
        &[
            ("W", w),
            ("REQ", req),
            ("CHUNK", chunk),
            ("BUF", w * chunk),
            ("NETCH", 1000),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;
    use chimera_runtime::ThreadId;

    #[test]
    fn downloads_full_file() {
        let src = source(&Params {
            workers: 4,
            scale: 3,
        });
        let r = run_source(&src);
        let out = r.output_of(ThreadId(0));
        let expected = 4 * 16 * 3;
        // total_done and the progress sum both equal the file size; the
        // sys_write payload precedes them in main's output.
        assert_eq!(out[out.len() - 2], expected);
        assert_eq!(out[out.len() - 1], expected);
    }

    #[test]
    fn is_io_bound() {
        let src = source(&Params {
            workers: 2,
            scale: 4,
        });
        let r = run_source(&src);
        assert!(
            r.stats.io_wait > r.makespan / 2,
            "io_wait {} vs makespan {}",
            r.stats.io_wait,
            r.makespan
        );
    }

    #[test]
    fn partitioned_buffer_copy_is_reported_racy() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        assert!(!races.pairs.is_empty());
    }
}
