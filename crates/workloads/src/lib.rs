//! The benchmark workloads of the paper's evaluation (§7.1, Table 1),
//! rewritten in MiniC.
//!
//! Three families, as in the paper:
//!
//! * **desktop** — `aget` (parallel downloader), `pfscan` (parallel file
//!   scanner), `pbzip2` (parallel block compressor);
//! * **server** — `knot` and `apache` (request-serving worker pools);
//! * **scientific** — `ocean`, `water`, `fft`, `radix` from SPLASH-2.
//!
//! Each program is written so that the *reason* it stresses Chimera matches
//! the paper: `water` has barrier-separated racy phase functions (Fig. 2),
//! `radix` has partitioned rank arrays and a data-dependent histogram
//! index (Fig. 4), `apache` has a hot `memset`-like library loop (§7.3),
//! `pfscan` has a racy instruction behind an `if` in a hot loop (§7.3),
//! the network applications are I/O-bound so recording hides in I/O wait,
//! and the scientific applications are memory-bound so it does not.
//!
//! Sources are generated from templates parameterized by worker count and a
//! scale factor; profile inputs are deliberately smaller than and different
//! from evaluation inputs (§7.1).

#![warn(missing_docs)]

mod aget;
mod apache;
mod fft;
mod knot;
mod ocean;
mod pbzip2;
mod pfscan;
mod radix;
mod water;

use chimera_minic::{compile, CompileError, Program};

/// Substitute `@KEY@` placeholders in a MiniC template (templates cannot
/// use `format!` because MiniC braces would need escaping everywhere).
pub(crate) fn fill(template: &str, subs: &[(&str, i64)]) -> String {
    let mut out = template.to_string();
    for (key, val) in subs {
        out = out.replace(&format!("@{key}@"), &val.to_string());
    }
    debug_assert!(!out.contains('@'), "unsubstituted placeholder in template");
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use chimera_runtime::{execute, ExecConfig, ExecResult};

    /// Compile and run a workload source; panic with context on failure.
    pub fn run_source(src: &str) -> ExecResult {
        let p = chimera_minic::compile(src)
            .unwrap_or_else(|e| panic!("workload does not compile: {e}\n{src}"));
        let r = execute(&p, &ExecConfig::default());
        assert!(
            r.outcome.is_exit(),
            "workload did not exit cleanly: {:?}",
            r.outcome
        );
        r
    }
}

/// Workload family, as grouped in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Desktop applications.
    Desktop,
    /// Server applications.
    Server,
    /// SPLASH-2 scientific kernels.
    Scientific,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Desktop => write!(f, "desktop"),
            Category::Server => write!(f, "server"),
            Category::Scientific => write!(f, "scientific"),
        }
    }
}

/// Template parameters: worker thread count and a workload-specific scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of worker threads (the paper used 2, 4, and 8).
    pub workers: u32,
    /// Input-size scale factor.
    pub scale: u32,
}

/// One benchmark program.
#[derive(Clone)]
pub struct Workload {
    /// Short name (matches the paper).
    pub name: &'static str,
    /// Family.
    pub category: Category,
    /// What it models and which Chimera mechanism it stresses.
    pub blurb: &'static str,
    source_fn: fn(&Params) -> String,
    eval_scale: u32,
    profile_scale: u32,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish()
    }
}

impl Workload {
    /// Render MiniC source for the given parameters.
    pub fn source(&self, p: &Params) -> String {
        (self.source_fn)(p)
    }

    /// Evaluation-environment parameters (Table 1 right column, scaled to
    /// the virtual machine).
    pub fn eval_params(&self, workers: u32) -> Params {
        Params {
            workers,
            scale: self.eval_scale,
        }
    }

    /// Profile-environment parameters: 2 workers and a smaller input that
    /// varies with the profile-run index (Table 1 left column).
    pub fn profile_params(&self, variant: u32) -> Params {
        Params {
            workers: 2,
            scale: self.profile_scale + variant % 3,
        }
    }

    /// Compile a parameterized instance, recording its source line count
    /// (for Table 1's LOC column).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] — workload templates are tested to be
    /// valid for all supported parameters, so an error indicates an
    /// unsupported `Params` combination.
    pub fn compile(&self, p: &Params) -> Result<Program, CompileError> {
        let src = self.source(p);
        let mut program = compile(&src)?;
        program.source_lines = src.lines().count() as u32;
        Ok(program)
    }
}

/// All nine workloads, in the paper's Table 1 order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "aget",
            category: Category::Desktop,
            blurb: "parallel segmented downloader; partitioned buffer writes; network-bound",
            source_fn: aget::source,
            eval_scale: 8,
            profile_scale: 2,
        },
        Workload {
            name: "pfscan",
            category: Category::Desktop,
            blurb: "parallel file scanner; condvar job queue; racy instruction behind an if (§7.3)",
            source_fn: pfscan::source,
            eval_scale: 6,
            profile_scale: 2,
        },
        Workload {
            name: "pbzip2",
            category: Category::Desktop,
            blurb: "parallel block compressor; partitioned blocks; ordered writer",
            source_fn: pbzip2::source,
            eval_scale: 6,
            profile_scale: 2,
        },
        Workload {
            name: "knot",
            category: Category::Server,
            blurb: "small web server; worker pool over network channels; cache reads",
            source_fn: knot::source,
            eval_scale: 6,
            profile_scale: 2,
        },
        Workload {
            name: "apache",
            category: Category::Server,
            blurb: "web server with a hot memset-like library loop (the §7.3 loop-lock case)",
            source_fn: apache::source,
            eval_scale: 6,
            profile_scale: 2,
        },
        Workload {
            name: "ocean",
            category: Category::Scientific,
            blurb: "banded grid relaxation; barrier phases; boundary-row loop-lock contention",
            source_fn: ocean::source,
            eval_scale: 5,
            profile_scale: 2,
        },
        Workload {
            name: "water",
            category: Category::Scientific,
            blurb: "molecular phases separated by barriers (Fig. 2's interf/bndry false race)",
            source_fn: water::source,
            eval_scale: 5,
            profile_scale: 2,
        },
        Workload {
            name: "fft",
            category: Category::Scientific,
            blurb: "butterfly stages with xor-partner indexing (unmodeled arithmetic, §5.2)",
            source_fn: fft::source,
            eval_scale: 5,
            profile_scale: 2,
        },
        Workload {
            name: "radix",
            category: Category::Scientific,
            blurb: "radix sort ranking; partitioned rank arrays and data-dependent index (Fig. 4)",
            source_fn: radix::source,
            eval_scale: 5,
            profile_scale: 2,
        },
    ]
}

/// Look up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_present_in_paper_order() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["aget", "pfscan", "pbzip2", "knot", "apache", "ocean", "water", "fft", "radix"]
        );
    }

    #[test]
    fn category_split_matches_table_1() {
        let ws = all();
        assert_eq!(ws.iter().filter(|w| w.category == Category::Desktop).count(), 3);
        assert_eq!(ws.iter().filter(|w| w.category == Category::Server).count(), 2);
        assert_eq!(
            ws.iter().filter(|w| w.category == Category::Scientific).count(),
            4
        );
    }

    #[test]
    fn every_workload_compiles_for_eval_and_profile_params() {
        for w in all() {
            for workers in [2u32, 4, 8] {
                let p = w.eval_params(workers);
                w.compile(&p)
                    .unwrap_or_else(|e| panic!("{} eval w={workers}: {e}", w.name));
            }
            for v in 0..3 {
                let p = w.profile_params(v);
                w.compile(&p)
                    .unwrap_or_else(|e| panic!("{} profile v{v}: {e}", w.name));
            }
        }
    }

    #[test]
    fn profile_inputs_differ_from_eval_inputs() {
        for w in all() {
            let e = w.eval_params(4);
            let p = w.profile_params(0);
            assert_ne!(e.scale, p.scale, "{}: profile input must differ", w.name);
        }
    }

    #[test]
    fn by_name_round_trips() {
        assert!(by_name("radix").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn workload_sources_survive_unparse_round_trip() {
        // Parse each workload, render it back to source, recompile, and
        // compare the IR shape — pins the front end against the richest
        // MiniC corpus in the workspace.
        for w in all() {
            let src = w.source(&w.eval_params(2));
            let unit = chimera_minic::parser::parse(
                &chimera_minic::lexer::lex(&src).unwrap(),
            )
            .unwrap();
            let rendered = chimera_minic::unparse::unit_to_source(&unit);
            let p1 = compile(&src).unwrap();
            let p2 = compile(&rendered)
                .unwrap_or_else(|e| panic!("{}: unparse broke the source: {e}", w.name));
            assert_eq!(p1.funcs.len(), p2.funcs.len(), "{}", w.name);
            assert_eq!(p1.accesses.len(), p2.accesses.len(), "{}", w.name);
            for (f1, f2) in p1.funcs.iter().zip(&p2.funcs) {
                assert_eq!(f1.blocks.len(), f2.blocks.len(), "{}/{}", w.name, f1.name);
            }
        }
    }

    #[test]
    fn loc_recorded() {
        let w = by_name("apache").unwrap();
        let prog = w.compile(&w.eval_params(2)).unwrap();
        assert!(prog.source_lines > 50);
    }
}
