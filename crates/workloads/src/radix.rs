//! `radix` — the SPLASH-2 radix-sort ranking kernel, the paper's Figure 4
//! example.
//!
//! Each worker zeroes its slice of a partitioned `rank_all` array (precise
//! symbolic bounds — a loop-lock with a range), then builds a histogram
//! with a *data-dependent* index `keys[j] & 15` (bounds are `-INF..+INF`,
//! so the loop-lock guards all addresses and the histogram loops
//! serialize, exactly as instrumented in Fig. 4 lines 8–13), merges under
//! a real lock, crosses a barrier, and runs a counting pass over its own
//! key partition (precise bounds again).

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// radix: parallel radix-sort ranking phase (SPLASH-2).
int keys[@N@];
int rank_all[@WR@];
int global_rank[16];
int out_count[@W@];
lock_t merge_lock;
barrier_t phase;

void fill_keys(int seed) {
    int i; int v;
    v = seed + 1;
    for (i = 0; i < @N@; i = i + 1) {
        v = v * 1103515245 + 12345;
        if (v < 0) { v = 0 - v; }
        v = v % 65536;
        keys[i] = v;
    }
}

void slave_sort(int id) {
    int j; int my_key;
    int start; int stop;
    int *rank; int *key_from;
    start = id * @CHUNK@;
    stop = start + @CHUNK@;
    rank = &rank_all[id * 16];
    key_from = &keys[0];
    // Zero my rank array: precise bounds [&rank[0], &rank[15]].
    for (j = 0; j < 16; j = j + 1) {
        rank[j] = 0;
    }
    // Histogram: rank[my_key] has unknown bounds (-INF..+INF).
    for (j = start; j < stop; j = j + 1) {
        my_key = key_from[j] & 15;
        rank[my_key] = rank[my_key] + 1;
    }
    // Merge into the global ranks under the program's own lock.
    lock(&merge_lock);
    for (j = 0; j < 16; j = j + 1) {
        global_rank[j] = global_rank[j] + rank[j];
    }
    unlock(&merge_lock);
    barrier_wait(&phase);
    // Counting pass over my own partition: precise bounds.
    for (j = start; j < stop; j = j + 1) {
        if (keys[j] < 32768) {
            out_count[id] = out_count[id] + 1;
        }
    }
}

int main() {
    int i; int total; int low;
    int tids[@W@];
    barrier_init(&phase, @W@);
    fill_keys(sys_input(0));
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(slave_sort, i);
    }
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    total = 0;
    for (i = 0; i < 16; i = i + 1) {
        total = total + global_rank[i];
    }
    // Sanity check (the paper's evaluation input enables it): the global
    // histogram must account for every key, and the low-half counts must
    // not exceed the total.
    low = 0;
    for (i = 0; i < @W@; i = i + 1) {
        low = low + out_count[i];
    }
    if (total != @N@) { print(0 - 1); }
    if (low > total) { print(0 - 2); }
    print(total);
    print(low);
    return 0;
}
"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    let chunk = 32 * p.scale as i64;
    let n = w * chunk;
    fill(
        TEMPLATE,
        &[("N", n), ("W", w), ("WR", w * 16), ("CHUNK", chunk)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;
    use chimera_runtime::ThreadId;

    #[test]
    fn runs_and_accounts_for_every_key() {
        let src = source(&Params {
            workers: 4,
            scale: 3,
        });
        let r = run_source(&src);
        let out = r.output_of(ThreadId(0));
        assert_eq!(out[0], 4 * 32 * 3, "histogram total = key count");
        assert!(out[1] <= out[0]);
    }

    #[test]
    fn has_the_expected_false_races() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        assert!(
            !races.pairs.is_empty(),
            "partitioned rank arrays must be reported racy"
        );
        // The histogram store must race with itself across workers.
        let self_pairs = races.pairs.iter().filter(|p| p.a == p.b).count();
        assert!(self_pairs > 0, "expected self race-pairs");
    }
}
