//! `pfscan` — a parallel file scanner with a condvar job queue.
//!
//! The main thread reads "files" into a shared arena and pushes job
//! indices through a mutex+condvar queue; workers pop jobs and scan the
//! file for a target byte. The paper's §7.3 control-dependence case is
//! here: the hit-table update is *inside an `if`* in the hot scan loop and
//! has a data-dependent index, so a loop-lock would pay on every
//! iteration while a block-level lock pays only when the branch fires.
//! The producer-to-consumer handoff is ordered by the queue's condvar —
//! happens-before that RELAY ignores, making the arena accesses false
//! races.

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// pfscan: parallel file scan with a producer/consumer job queue.
int arena[@ARENA@];
int queue[@QCAP@];
int q_head;
int q_tail;
int producer_done;
lock_t q_lock;
cond_t q_nonempty;
int results[@W@];
int hits[256];

int pop_job() {
    int job;
    lock(&q_lock);
    while (q_head == q_tail && producer_done == 0) {
        cond_wait(&q_nonempty, &q_lock);
    }
    if (q_head == q_tail) {
        job = 0 - 1;
    } else {
        job = queue[q_head];
        q_head = q_head + 1;
    }
    unlock(&q_lock);
    return job;
}

void scanner(int id) {
    int job; int i; int c; int base;
    job = pop_job();
    while (job >= 0) {
        base = job * @FSIZE@;
        for (i = 0; i < @FSIZE@; i = i + 1) {
            c = arena[base + i];
            if (c == 42) {
                // Racy update behind a branch in a hot loop (§7.3):
                // data-dependent index, fires rarely.
                hits[c & 255] = hits[c & 255] + 1;
                results[id] = results[id] + 1;
            }
        }
        job = pop_job();
    }
}

int main() {
    int i; int j; int sum;
    int tids[@W@];
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(scanner, i);
    }
    // Producer: read each file, then publish its job index.
    for (j = 0; j < @FILES@; j = j + 1) {
        sys_read(10 + j, &arena[j * @FSIZE@], @FSIZE@);
        lock(&q_lock);
        queue[q_tail] = j;
        q_tail = q_tail + 1;
        cond_signal(&q_nonempty);
        unlock(&q_lock);
    }
    lock(&q_lock);
    producer_done = 1;
    cond_broadcast(&q_nonempty);
    unlock(&q_lock);
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    sum = 0;
    for (i = 0; i < @W@; i = i + 1) {
        sum = sum + results[i];
    }
    print(sum);
    print(hits[42]);
    return 0;
}
"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    let fsize = 24i64;
    let files = w * p.scale as i64;
    fill(
        TEMPLATE,
        &[
            ("W", w),
            ("FSIZE", fsize),
            ("FILES", files),
            ("ARENA", files * fsize),
            ("QCAP", files),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;
    use chimera_runtime::ThreadId;

    #[test]
    fn all_hits_accounted() {
        let src = source(&Params {
            workers: 4,
            scale: 3,
        });
        let r = run_source(&src);
        let out = r.output_of(ThreadId(0));
        assert_eq!(out[0], out[1], "per-worker results sum == hit table entry");
    }

    #[test]
    fn queue_handoff_false_races_reported() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        assert!(!races.pairs.is_empty(), "arena handoff must be reported");
    }

    #[test]
    fn works_with_two_to_eight_workers() {
        for w in [2, 8] {
            let src = source(&Params {
                workers: w,
                scale: 2,
            });
            run_source(&src);
        }
    }
}
