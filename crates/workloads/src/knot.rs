//! `knot` — a small threaded web server.
//!
//! A fixed pool of workers each serves a stream of requests from its own
//! network channel: read the request, look the path up in a shared cache,
//! build a response in a partitioned buffer, and send it. Per-worker
//! statistics are partitioned (false races with precise bounds); cache
//! updates go through a real lock. Heavy network latency makes recording
//! nearly free, as in the paper.

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// knot: threaded web server with per-worker connections.
int cache_tag[@CSLOTS@];
int cache_val[@CSLOTS@];
lock_t cache_lock;
int served[@W@];
int bytes_out[@W@];
int resp[@RESPALL@];

void server(int id) {
    int r; int i; int path; int slot; int val; int hit; int rbase;
    int req[@REQ@];
    rbase = id * @RESP@;
    for (r = 0; r < @REQS@; r = r + 1) {
        sys_read(@NETCH@ + id, &req[0], @REQ@);
        // "Parse": fold the request words into a path id.
        path = 0;
        for (i = 0; i < @REQ@; i = i + 1) {
            path = path + req[i];
        }
        path = path % 64;
        if (path < 0) { path = 0 - path; }
        slot = path % @CSLOTS@;
        // Cache lookup; misses compute and fill under the lock.
        lock(&cache_lock);
        hit = 0;
        if (cache_tag[slot] == path + 1) {
            val = cache_val[slot];
            hit = 1;
        }
        if (hit == 0) {
            val = path * 37 + 11;
            cache_tag[slot] = path + 1;
            cache_val[slot] = val;
        }
        unlock(&cache_lock);
        // Build the response in our partition.
        for (i = 0; i < @RESP@; i = i + 1) {
            resp[rbase + i] = val + i;
        }
        sys_write(@NETCH@ + id, &resp[rbase], @RESP@);
        served[id] += 1;
        bytes_out[id] += @RESP@;
    }
}

int main() {
    int i; int total;
    int tids[@W@];
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(server, i);
    }
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    total = 0;
    for (i = 0; i < @W@; i = i + 1) {
        total = total + served[i];
    }
    print(total);
    return 0;
}
"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    let resp = 12i64;
    fill(
        TEMPLATE,
        &[
            ("W", w),
            ("REQ", 6),
            ("REQS", p.scale as i64),
            ("RESP", resp),
            ("RESPALL", w * resp),
            ("CSLOTS", 16),
            ("NETCH", 1000),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;
    use chimera_runtime::ThreadId;

    #[test]
    fn serves_all_requests() {
        let src = source(&Params {
            workers: 4,
            scale: 3,
        });
        let r = run_source(&src);
        assert_eq!(r.output_of(ThreadId(0)), vec![12]);
    }

    #[test]
    fn network_wait_dominates() {
        let src = source(&Params {
            workers: 2,
            scale: 4,
        });
        let r = run_source(&src);
        assert!(r.stats.io_wait * 2 > r.makespan);
    }
}
