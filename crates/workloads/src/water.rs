//! `water` — the SPLASH-2 molecular dynamics kernel, source of the paper's
//! Figure 2 false race.
//!
//! Each timestep has barrier-separated phases. Two *serial* phases
//! (`predic`, `correc`) run on worker 0 only, scatter-updating shared
//! arrays through a permutation index (symbolic bounds are `±∞`); RELAY
//! cannot see the barrier order, so it reports races between them — but
//! profiling observes them non-concurrent, so they share one clique
//! function-lock (the paper's function-granularity win for water). The
//! parallel force phase updates partitioned slices (precise loop-lock
//! bounds) and reads all positions, and a global energy reduction uses a
//! real mutex.

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// water: barrier-phased molecular dynamics (SPLASH-2).
int pos[@M@];
int vel[@M@];
int forces[@M@];
int perm[@M@];
int energy;
lock_t energy_lock;
barrier_t tick;

// Serial predictor: scatter write through perm[] (bounds unknown).
// Runs only on worker 0 between barriers; falsely racy with correc().
void predic(int step) {
    int i; int k;
    for (i = 0; i < @M@; i = i + 1) {
        k = perm[i];
        vel[k] = vel[k] + forces[k] / 16;
        pos[k] = pos[k] + vel[k] / 8 + step;
    }
}

// Serial corrector: another scatter pass over the same arrays.
void correc(int step) {
    int i; int k;
    for (i = 0; i < @M@; i = i + 1) {
        k = perm[@M@ - 1 - i];
        vel[k] = vel[k] - step;
        forces[k] = forces[k] / 2;
    }
}

// Parallel force phase: each worker writes its own slice and reads all
// positions. The inner smoothing passes are the O(M^2)-flavored compute
// that dominates real water. A leaf function, so profiling sees phases as
// code regions — the paper's interf/bndry structure (Fig. 2).
void force_phase(int id) {
    int i; int sum; int start; int stop; int acc; int k;
    start = id * @CHUNK@;
    stop = start + @CHUNK@;
    sum = 0;
    for (i = start; i < stop; i = i + 1) {
        acc = 0;
        for (k = 0; k < 8; k = k + 1) {
            acc = acc + (pos[i] * (k + 3)) / (k + 1) - (acc >> 2);
        }
        forces[i] = forces[i] + (acc + pos[i] - pos[@M@ - 1 - i]) / 4;
        sum = sum + forces[i];
    }
    lock(&energy_lock);
    energy = energy + sum;
    unlock(&energy_lock);
}

void worker(int id) {
    int s;
    for (s = 0; s < @STEPS@; s = s + 1) {
        if (id == 0) {
            predic(s);
        }
        barrier_wait(&tick);
        force_phase(id);
        barrier_wait(&tick);
        if (id == 0) {
            correc(s);
        }
        barrier_wait(&tick);
    }
}

// Initialization: writes every shared array before any thread exists.
// RELAY reports false races between this and every phase (fork/join
// happens-before is invisible to it) — the paper's canonical function-lock
// case.
void init_system(int seed) {
    int i; int v;
    v = seed;
    for (i = 0; i < @M@; i = i + 1) {
        v = v * 75 + 74;
        if (v < 0) { v = 0 - v; }
        pos[i] = v % 1000;
        vel[i] = (v / 7) % 100;
        // A valid permutation keeps every scatter in-bounds.
        perm[i] = @M@ - 1 - i;
    }
}

// Final reporting: runs after every join; racy with the phases only
// through fork/join happens-before that RELAY ignores.
void report(int unused) {
    print(energy);
    print(pos[0]);
}

int main() {
    int i;
    int tids[@W@];
    init_system(sys_input(0));
    barrier_init(&tick, @W@);
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(worker, i);
    }
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    report(0);
    return 0;
}

"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    let chunk = 8 * p.scale as i64;
    let m = w * chunk;
    fill(
        TEMPLATE,
        &[
            ("M", m),
            ("W", w),
            ("CHUNK", chunk),
            ("STEPS", 2 + p.scale as i64 / 2),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;

    #[test]
    fn runs_to_completion() {
        let src = source(&Params {
            workers: 4,
            scale: 2,
        });
        let r = run_source(&src);
        assert_eq!(r.output.len(), 2);
    }

    #[test]
    fn predic_correc_false_race_exists_and_profiles_non_concurrent() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        let predic = p.func_by_name("predic").unwrap().id;
        let correc = p.func_by_name("correc").unwrap().id;
        let fpairs = races.racy_function_pairs(&p);
        assert!(
            fpairs.contains(&(predic.min(correc), predic.max(correc))),
            "RELAY must falsely report predic/correc (barriers ignored): {fpairs:?}"
        );
        let prof = chimera_profile::profile_runs(
            &p,
            &chimera_runtime::ExecConfig::default(),
            &[1, 2, 3],
        );
        assert!(
            prof.likely_non_concurrent("predic", "correc"),
            "barrier separation must be observable"
        );
        assert!(prof.likely_non_concurrent("predic", "predic"));
    }

    #[test]
    fn function_locks_cover_the_phase_pair() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        let prof = chimera_profile::profile_runs(
            &p,
            &chimera_runtime::ExecConfig::default(),
            &[1, 2, 3],
        );
        let plan = chimera_instrument::plan(
            &p,
            &races,
            &prof,
            &chimera_instrument::OptSet::all(),
        );
        let predic = p.func_by_name("predic").unwrap().id;
        assert!(
            plan.func_locks.contains_key(&predic),
            "predic should carry a clique function-lock: {:?}",
            plan.func_locks
        );
    }
}
