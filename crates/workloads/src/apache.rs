//! `apache` — a web server with the paper's hot `memset` library loop.
//!
//! Structurally like `knot`, plus the §7.3 star exhibit: every request
//! clears its connection buffer through a shared library routine
//! (`buf_clear`, standing in for `memset`), whose hot loop RELAY reports
//! as self-racy because all workers call it. Function-level locks cannot
//! help (two threads legitimately run it concurrently), but the symbolic
//! bounds `[p, p+n-1]` are precise, so a ranged loop-lock keeps the
//! workers parallel — the optimization that makes apache recordable at
//! ~4% in the paper.

use crate::{fill, Params};

const TEMPLATE: &str = r#"
// apache: worker-pool web server with a hot shared library loop.
int conn_buf[@CONNALL@];
int log_buf[@W@];
int served[@W@];
int mime_tab[32];
lock_t accept_lock;
int next_conn;

// The shared "memset" library routine: called by every worker on every
// request, loop bounds precise over its arguments.
void buf_clear(int *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = 0;
    }
}

void fill_mime(int seed) {
    int i;
    for (i = 0; i < 32; i = i + 1) {
        mime_tab[i] = seed + i * 3;
    }
}

void worker(int id) {
    int r; int i; int path; int sum; int base;
    int req[@REQ@];
    base = id * @CONN@;
    for (r = 0; r < @REQS@; r = r + 1) {
        // Accept: take a connection id under the accept lock.
        lock(&accept_lock);
        next_conn = next_conn + 1;
        unlock(&accept_lock);
        sys_read(@NETCH@ + id, &req[0], @REQ@);
        // Clear the connection buffer via the hot library loop.
        buf_clear(&conn_buf[base], @CONN@);
        // Parse the path and build the response.
        path = 0;
        for (i = 0; i < @REQ@; i = i + 1) {
            path = (path * 31 + req[i]) % 4096;
        }
        if (path < 0) { path = 0 - path; }
        sum = mime_tab[path % 32];
        for (i = 0; i < @CONN@; i = i + 1) {
            conn_buf[base + i] = sum + i;
        }
        sys_write(@NETCH@ + id, &conn_buf[base], @CONN@);
        served[id] = served[id] + 1;
        log_buf[id] = log_buf[id] + path;
    }
}

int main() {
    int i; int total;
    int tids[@W@];
    fill_mime(sys_input(0));
    for (i = 0; i < @W@; i = i + 1) {
        tids[i] = spawn(worker, i);
    }
    for (i = 0; i < @W@; i = i + 1) {
        join(tids[i]);
    }
    total = 0;
    for (i = 0; i < @W@; i = i + 1) {
        total = total + served[i];
    }
    print(total);
    print(next_conn);
    return 0;
}
"#;

pub(crate) fn source(p: &Params) -> String {
    let w = p.workers as i64;
    let conn = 20i64;
    fill(
        TEMPLATE,
        &[
            ("W", w),
            ("REQ", 6),
            ("REQS", p.scale as i64),
            ("CONN", conn),
            ("CONNALL", w * conn),
            ("NETCH", 1000),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_source;
    use chimera_runtime::ThreadId;

    #[test]
    fn serves_and_counts_connections() {
        let src = source(&Params {
            workers: 4,
            scale: 3,
        });
        let r = run_source(&src);
        let out = r.output_of(ThreadId(0));
        assert_eq!(out, vec![12, 12]);
    }

    #[test]
    fn memset_loop_gets_a_ranged_loop_lock() {
        let src = source(&Params {
            workers: 2,
            scale: 2,
        });
        let p = chimera_minic::compile(&src).unwrap();
        let races = chimera_relay::detect_races(&p);
        let prof = chimera_profile::profile_runs(
            &p,
            &chimera_runtime::ExecConfig::default(),
            &[1, 2],
        );
        let plan = chimera_instrument::plan(
            &p,
            &races,
            &prof,
            &chimera_instrument::OptSet::all(),
        );
        // buf_clear's loop must carry a ranged loop-lock.
        let bc = p.func_by_name("buf_clear").unwrap().id;
        let ranged_in_bc = plan
            .loop_locks
            .iter()
            .filter(|((f, _), specs)| *f == bc && specs.iter().any(|s| s.range.is_some()))
            .count();
        assert!(ranged_in_bc > 0, "{:?}", plan.loop_locks);
        // And no function lock on buf_clear (it is self-concurrent).
        assert!(!plan.func_locks.contains_key(&bc));
    }
}
