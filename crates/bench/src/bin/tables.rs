//! Regenerate every table and figure of the paper's evaluation (§7).
//!
//! ```text
//! tables table1                # benchmarks & inputs (Table 1)
//! tables table2                # record/replay performance (Table 2)
//! tables fig5                  # overhead per optimization set
//! tables fig6                  # weak-lock ops / memory ops
//! tables fig7                  # logging vs contention breakdown
//! tables fig8                  # scalability over 2/4/8 workers
//! tables profile-sensitivity   # §7.3's saturation study
//! tables all                   # everything
//! ```
//!
//! Options: `--workers N` (default 4), `--trials N` (default 3),
//! `--profile-runs N` (default 6).

use chimera::{
    ablation_row, fig5_overheads, fig6_fractions, fig7_breakdown, fig8_scalability,
    figure5_configs, profile_sensitivity, table2_row, threshold_sweep,
};
use chimera_bench::{fmt_kb, fmt_pct, fmt_x, render_table};
use chimera_minic::ir::LockGranularity;
use chimera_runtime::ExecConfig;
use chimera_workloads::{all, Workload};

#[derive(Debug)]
struct Args {
    command: String,
    workers: u32,
    trials: u32,
    profile_runs: u32,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: "all".to_string(),
        workers: 4,
        trials: 3,
        profile_runs: 6,
    };
    // A flag with a missing or malformed value is an error, not a silent
    // fall-back to the default: a typo like `--workers eight` must not
    // quietly produce 4-worker numbers labeled as something else.
    fn value_of(flag: &str, argv: &[String], i: usize) -> Result<u32, String> {
        let raw = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let n: u32 = raw
            .parse()
            .map_err(|_| format!("{flag}: expected a non-negative integer, got '{raw}'"))?;
        if n == 0 {
            return Err(format!("{flag} must be at least 1"));
        }
        Ok(n)
    }
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--workers" => {
                args.workers = value_of("--workers", argv, i)?;
                i += 2;
            }
            "--trials" => {
                args.trials = value_of("--trials", argv, i)?;
                i += 2;
            }
            "--profile-runs" => {
                args.profile_runs = value_of("--profile-runs", argv, i)?;
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option '{flag}'"));
            }
            cmd => {
                args.command = cmd.to_string();
                i += 1;
            }
        }
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: tables [COMMAND] [--workers N] [--trials N] [--profile-runs N]");
            std::process::exit(2);
        }
    };
    let exec = ExecConfig::default();
    match args.command.as_str() {
        "table1" => table1(),
        "table2" => table2(&args, &exec),
        "fig5" => fig5(&args, &exec),
        "fig6" => fig6(&args, &exec),
        "fig7" => fig7(&args, &exec),
        "fig8" => fig8(&args, &exec),
        "profile-sensitivity" => sensitivity(&exec),
        "ablations" => ablations(&args, &exec),
        "all" => {
            table1();
            table2(&args, &exec);
            fig5(&args, &exec);
            fig6(&args, &exec);
            fig7(&args, &exec);
            fig8(&args, &exec);
            sensitivity(&exec);
            ablations(&args, &exec);
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!(
                "commands: table1 table2 fig5 fig6 fig7 fig8 profile-sensitivity ablations all"
            );
            std::process::exit(2);
        }
    }
}

fn table1() {
    println!("== Table 1: benchmarks and inputs ==\n");
    let mut rows = vec![vec![
        "category".to_string(),
        "application".to_string(),
        "LOC".to_string(),
        "profile env".to_string(),
        "eval env".to_string(),
    ]];
    for w in all() {
        let prof = w.profile_params(0);
        let eval = w.eval_params(4);
        let loc = w
            .compile(&eval)
            .map(|p| p.source_lines.to_string())
            .unwrap_or_else(|_| "?".into());
        rows.push(vec![
            w.category.to_string(),
            w.name.to_string(),
            loc,
            format!("{} workers, scale {}", prof.workers, prof.scale),
            format!("2/4/8 workers, scale {}", eval.scale),
        ]);
    }
    println!("{}", render_table(&rows));
}

fn table2(args: &Args, exec: &ExecConfig) {
    println!(
        "== Table 2: record & replay performance ({} workers, mean of {} trials) ==\n",
        args.workers, args.trials
    );
    let mut rows = vec![vec![
        "app".to_string(),
        "syscalls".to_string(),
        "sync ops".to_string(),
        "instr log".to_string(),
        "bb log".to_string(),
        "loop log".to_string(),
        "func log".to_string(),
        "orig time".to_string(),
        "rec time".to_string(),
        "record ovh".to_string(),
        "replay ovh".to_string(),
        "input KB".to_string(),
        "order KB".to_string(),
        "determ.".to_string(),
    ]];
    let mut sum_rec = 0.0;
    let mut n = 0.0;
    for w in all() {
        let row = table2_row(&w, args.workers, args.trials, args.profile_runs, exec);
        sum_rec += row.record_overhead;
        n += 1.0;
        rows.push(vec![
            row.name.clone(),
            row.syscall_logs.to_string(),
            row.sync_logs.to_string(),
            row.instr_logs.to_string(),
            row.bb_logs.to_string(),
            row.loop_logs.to_string(),
            row.func_logs.to_string(),
            row.original_time.to_string(),
            row.record_time.to_string(),
            fmt_x(row.record_overhead),
            fmt_x(row.replay_overhead),
            fmt_kb(row.input_log_bytes),
            fmt_kb(row.order_log_bytes),
            if row.deterministic { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("average record overhead: {}\n", fmt_x(sum_rec / n));
}

fn fig5(args: &Args, exec: &ExecConfig) {
    println!(
        "== Figure 5: normalized recording overhead per optimization set ({} workers) ==\n",
        args.workers
    );
    let labels: Vec<&str> = figure5_configs().iter().map(|(l, _)| *l).collect();
    let mut header = vec!["app".to_string()];
    header.extend(labels.iter().map(|l| l.to_string()));
    let mut rows = vec![header];
    let mut sums = vec![0.0f64; labels.len()];
    for w in all() {
        let o = fig5_overheads(&w, args.workers, args.trials, args.profile_runs, exec);
        let mut row = vec![w.name.to_string()];
        for (i, l) in labels.iter().enumerate() {
            sums[i] += o[l];
            row.push(fmt_x(o[l]));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for s in &sums {
        avg.push(fmt_x(s / all().len() as f64));
    }
    rows.push(avg);
    println!("{}", render_table(&rows));
}

fn fig6(args: &Args, exec: &ExecConfig) {
    println!(
        "== Figure 6: weak-lock ops as a fraction of memory ops ({} workers) ==\n",
        args.workers
    );
    let labels: Vec<&str> = figure5_configs().iter().map(|(l, _)| *l).collect();
    let mut header = vec!["app".to_string()];
    header.extend(labels.iter().map(|l| l.to_string()));
    let mut rows = vec![header];
    let mut sums = vec![0.0f64; labels.len()];
    for w in all() {
        let f = fig6_fractions(&w, args.workers, args.profile_runs, exec);
        let mut row = vec![w.name.to_string()];
        for (i, l) in labels.iter().enumerate() {
            sums[i] += f[l];
            row.push(fmt_pct(f[l]));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for s in &sums {
        avg.push(fmt_pct(s / all().len() as f64));
    }
    rows.push(avg);
    println!("{}", render_table(&rows));
}

fn fig7(args: &Args, exec: &ExecConfig) {
    println!(
        "== Figure 7: sources of recording overhead ({} workers, all opts) ==\n",
        args.workers
    );
    let grans = [
        LockGranularity::Function,
        LockGranularity::Loop,
        LockGranularity::BasicBlock,
        LockGranularity::Instruction,
    ];
    let mut rows = vec![vec![
        "app".to_string(),
        "func log".to_string(),
        "func wait".to_string(),
        "loop log".to_string(),
        "loop wait".to_string(),
        "bb log".to_string(),
        "bb wait".to_string(),
        "instr log".to_string(),
        "instr wait".to_string(),
        "contention (vs free)".to_string(),
    ]];
    for w in all() {
        let b = fig7_breakdown(&w, args.workers, args.profile_runs, exec);
        let mut row = vec![w.name.to_string()];
        for g in grans {
            row.push(b.log_cycles.get(&g).copied().unwrap_or(0).to_string());
            row.push(b.wait_cycles.get(&g).copied().unwrap_or(0).to_string());
        }
        row.push(
            b.makespan
                .saturating_sub(b.makespan_no_contention)
                .to_string(),
        );
        rows.push(row);
    }
    println!("{}", render_table(&rows));
}

fn fig8(args: &Args, exec: &ExecConfig) {
    println!("== Figure 8: scalability over 2/4/8 workers (all opts) ==\n");
    let mut rows = vec![vec![
        "app".to_string(),
        "2 workers".to_string(),
        "4 workers".to_string(),
        "8 workers".to_string(),
    ]];
    for w in all() {
        let pts = fig8_scalability(&w, args.trials, args.profile_runs, exec);
        let mut row = vec![w.name.to_string()];
        for (_, o) in pts {
            row.push(fmt_x(o));
        }
        rows.push(row);
    }
    println!("{}", render_table(&rows));
}

fn ablations(args: &Args, exec: &ExecConfig) {
    println!(
        "== Ablations: LEAP-style baseline and points-to precision ({} workers) ==\n",
        args.workers
    );
    let mut rows = vec![vec![
        "app".to_string(),
        "races (steens)".to_string(),
        "races (andersen)".to_string(),
        "chimera ovh".to_string(),
        "LEAP ovh".to_string(),
        "chimera ops".to_string(),
        "LEAP ops".to_string(),
    ]];
    for w in all() {
        let r = ablation_row(&w, args.workers, args.profile_runs, exec);
        rows.push(vec![
            r.name.clone(),
            r.races_steensgaard.to_string(),
            r.races_andersen.to_string(),
            fmt_x(r.chimera_overhead),
            fmt_x(r.leap_overhead),
            r.chimera_ops.to_string(),
            r.leap_ops.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));

    println!("== Ablation: loop-body threshold (5.3) on fft and pfscan ==\n");
    let mut rows = vec![vec![
        "app".to_string(),
        "threshold".to_string(),
        "record ovh".to_string(),
    ]];
    for name in ["fft", "pfscan"] {
        let w = chimera_workloads::by_name(name).expect("workload exists");
        for (t, o) in threshold_sweep(&w, args.workers, &[0.0, 10.0, 25.0, 100.0], exec) {
            rows.push(vec![name.to_string(), format!("{t}"), fmt_x(o)]);
        }
    }
    println!("{}", render_table(&rows));
}

fn sensitivity(exec: &ExecConfig) {
    println!("== Profile sensitivity (§7.3): concurrent pairs vs profile runs ==\n");
    let picks: Vec<Workload> = ["pfscan", "water"]
        .iter()
        .filter_map(|n| chimera_workloads::by_name(n))
        .collect();
    let mut rows = vec![vec![
        "app".to_string(),
        "runs".to_string(),
        "concurrent pairs".to_string(),
    ]];
    for w in &picks {
        for (runs, pairs) in profile_sensitivity(w, 8, exec) {
            rows.push(vec![w.name.to_string(), runs.to_string(), pairs.to_string()]);
        }
    }
    println!("{}", render_table(&rows));
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_args() {
        let a = parse_args(&[]).unwrap();
        assert_eq!(a.command, "all");
        assert_eq!((a.workers, a.trials, a.profile_runs), (4, 3, 6));
    }

    #[test]
    fn command_and_flags_parse() {
        let a = parse_args(&argv(&[
            "table2",
            "--workers",
            "8",
            "--trials",
            "5",
            "--profile-runs",
            "12",
        ]))
        .unwrap();
        assert_eq!(a.command, "table2");
        assert_eq!((a.workers, a.trials, a.profile_runs), (8, 5, 12));
    }

    #[test]
    fn flags_may_precede_command() {
        let a = parse_args(&argv(&["--workers", "2", "fig8"])).unwrap();
        assert_eq!(a.command, "fig8");
        assert_eq!(a.workers, 2);
    }

    #[test]
    fn malformed_value_is_an_error_not_a_default() {
        let e = parse_args(&argv(&["--workers", "eight"])).unwrap_err();
        assert!(e.contains("--workers"), "{e}");
        assert!(e.contains("eight"), "{e}");
        let e = parse_args(&argv(&["table2", "--trials", "3.5"])).unwrap_err();
        assert!(e.contains("--trials"), "{e}");
        let e = parse_args(&argv(&["--profile-runs", "-1"])).unwrap_err();
        assert!(e.contains("--profile-runs"), "{e}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = parse_args(&argv(&["--workers"])).unwrap_err();
        assert!(e.contains("requires a value"), "{e}");
    }

    #[test]
    fn zero_is_rejected() {
        let e = parse_args(&argv(&["--trials", "0"])).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let e = parse_args(&argv(&["--worker", "4"])).unwrap_err();
        assert!(e.contains("--worker"), "{e}");
    }
}
