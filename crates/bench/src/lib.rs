//! Shared helpers for the Chimera benchmark harness: plain-text table
//! rendering used by the `tables` binary and the micro-benches.

#![warn(missing_docs)]

/// Render rows as an aligned plain-text table. The first row is treated as
/// the header.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, r) in rows.iter().enumerate() {
        for (i, cell) in r.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// Format an overhead multiplier like the paper ("1.39x", "53x").
pub fn fmt_x(v: f64) -> String {
    if v >= 10.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.2}x")
    }
}

/// Format a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    if v >= 0.01 {
        format!("{:.1}%", v * 100.0)
    } else {
        format!("{:.3}%", v * 100.0)
    }
}

/// Format a byte count in KB with one decimal.
pub fn fmt_kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(&[
            vec!["name".into(), "value".into()],
            vec!["a".into(), "1".into()],
            vec!["longer".into(), "22".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn overhead_formatting_matches_paper_style() {
        assert_eq!(fmt_x(1.39), "1.39x");
        assert_eq!(fmt_x(53.0), "53x");
        assert_eq!(fmt_pct(0.14), "14.0%");
        assert_eq!(fmt_pct(0.0002), "0.020%");
    }

    #[test]
    fn kb_formatting() {
        assert_eq!(fmt_kb(2048), "2.0");
    }
}
