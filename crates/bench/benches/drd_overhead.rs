//! Dynamic race detection overhead: the FastTrack detector attached to
//! the VM vs plain detached execution (DESIGN.md §9 "Dynamic race
//! detection").
//!
//! Two workload groups bound the cost from both ends of the access mix:
//!
//! * **memory-bound** (`radix`, `ocean`): every load/store now builds an
//!   event and walks a shadow cell — the worst case for the per-access
//!   epoch checks.
//! * **sync-heavy** (`pfscan`, `apache`): accesses are sparse but every
//!   mutex/condvar edge joins vector clocks — the worst case for the HB
//!   bookkeeping.
//!
//! The detached baseline uses the same config; with no subscriber the
//! event mask gates access events off entirely, so the delta is the full
//! attached cost (pinned semantically by `tests/vm_differential.rs`).
//!
//! Runs as a plain binary on `chimera-testkit`'s bench runner:
//! `cargo bench --bench drd_overhead [filter]`. To refresh the committed
//! data: `CHIMERA_BENCH_JSON=BENCH_drd.json cargo bench --bench
//! drd_overhead`.

use chimera_runtime::{execute, ExecConfig, Jitter};
use chimera_testkit::bench::Runner;
use chimera_workloads::{by_name, Params};

const MEMORY_BOUND: &[&str] = &["radix", "ocean"];
const SYNC_HEAVY: &[&str] = &["pfscan", "apache"];

fn main() {
    let mut runner = Runner::from_args();
    for (family, names) in [("memory", MEMORY_BOUND), ("sync", SYNC_HEAVY)] {
        for name in names {
            let w = by_name(name).expect("paper workload exists");
            let p = w
                .compile(&Params {
                    workers: 4,
                    scale: 4,
                })
                .expect("workload compiles");
            // Jitter off for the same reason as interp_scaling: the
            // schedule perturbations are identical attached or detached
            // and only add variance around the dispatch delta.
            let cfg = ExecConfig {
                seed: 42,
                jitter: Jitter::none(),
                ..ExecConfig::default()
            };
            // One untimed attached run for the report — and to fail
            // loudly here if a workload stops exiting cleanly or stops
            // being dynamically race-free.
            let run = chimera_drd::detect(&p, &cfg);
            assert!(run.result.outcome.is_exit(), "{name}: {:?}", run.result.outcome);
            eprintln!(
                "{family}/{name}: {} mem ops, {} dynamic racy pair(s)",
                run.result.stats.mem_ops,
                run.report.pairs.len(),
            );
            let mut group = runner.group("drd_overhead");
            group.sample_size(10);
            group.bench(&format!("detached/{family}/{name}"), || {
                let r = execute(&p, &cfg);
                std::hint::black_box(&r);
            });
            group.bench(&format!("attached/{family}/{name}"), || {
                let r = chimera_drd::detect(&p, &cfg);
                std::hint::black_box(&r);
            });
            group.finish();
        }
    }
    runner.finish();
}
