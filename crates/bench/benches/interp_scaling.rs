//! Interpreter hot-loop scaling: the layered flat stepping path
//! (superinstruction fusion + batch commit + speculative segment rounds)
//! vs the block-structured clone-per-step reference path, plus the
//! DRF-certified parallel flat mode (DESIGN.md "VM internals", §13).
//!
//! Two workload groups from the paper's benchmark suite pin the speedup
//! from both ends of the instruction mix:
//!
//! * **memory-bound** (`radix`, `ocean`): long loops of loads/stores with
//!   little synchronization — dominated by per-instruction dispatch, so
//!   fusion, batch commit and speculative rounds show up directly.
//! * **sync-heavy** (`pfscan`, `apache`): mutex/condvar handoffs and
//!   shared counters — dominated by sync-table lookups and scheduler
//!   rescans, so the dense sync tables and burst scheduling show up.
//!   `pfscan10x` runs pfscan at 10x input scale, where per-execution
//!   setup amortizes away and the steady-state hot loop dominates.
//!
//! Per workload the bench reports three rows: `flat` (the full fused +
//! batched + speculative serial engine), `reference`, and `parallel`
//! (`ExecConfig::parallelism = 4` — bit-identical results, measured here
//! to keep the OS-thread dispatch overhead visible; at these workload
//! sizes per-round thread spawning costs more than it buys, see
//! DESIGN.md §13).
//!
//! All paths produce byte-identical results (pinned by
//! `tests/vm_differential.rs`); the bench measures speed only, prints
//! each configuration's instructions/second once before sampling, and
//! finishes with a **speedup gate**: the current flat engine must be at
//! least 1.5x the seed-era flat engine on at least 3 of the 4 baseline
//! workloads. The gate normalizes by the reference path
//! (`(seed_flat/seed_ref) / (cur_flat/cur_ref)`) so it compares engine
//! generations, not machines, and it samples with fixed counts so CI
//! smoke runs (`CHIMERA_BENCH_SAMPLES=1`) stay deterministic.
//!
//! Runs as a plain binary on `chimera-testkit`'s bench runner:
//! `cargo bench --bench interp_scaling [filter]`. To refresh the committed
//! data: `CHIMERA_BENCH_JSON=BENCH_vm.json cargo bench --bench
//! interp_scaling`.

use chimera_runtime::{execute_mode, ExecConfig, InterpMode, Jitter};
use chimera_testkit::bench::Runner;
use chimera_workloads::{by_name, Params};

const MEMORY_BOUND: &[&str] = &["radix", "ocean"];
const SYNC_HEAVY: &[&str] = &["pfscan", "apache"];

/// `(name, flat_min_ns, reference_min_ns)` from the BENCH_vm.json
/// committed at the seed of the flat-VM perf work — the pre-fusion,
/// pre-batch, pre-speculation engine. Minima, not medians: min is the
/// noise-robust estimator for a wall-clock microbenchmark (every
/// perturbation only adds time). Frozen here so refreshing BENCH_vm.json
/// cannot move the goalposts.
const SEED_MINS: &[(&str, u64, u64)] = &[
    ("radix", 1_015_174, 2_189_379),
    ("ocean", 929_232, 3_161_260),
    ("pfscan", 319_415, 951_522),
    ("apache", 444_730, 1_127_148),
];

/// The gate: current flat must beat seed flat by this factor,
/// reference-normalized, on at least [`MIN_WORKLOADS_AT_TARGET`] of the
/// baseline workloads.
const SPEEDUP_TARGET: f64 = 1.5;
const MIN_WORKLOADS_AT_TARGET: usize = 3;

fn bench_config(seed: u64) -> ExecConfig {
    // Jitter off: the per-step jitter draw and the schedule perturbations
    // it causes are identical in both modes, and they bury the dispatch
    // cost this bench isolates (the differential suite exercises both
    // paths *with* default jitter — speed is measured here, equivalence
    // there). Jitter off is also what arms the speculative segment
    // engine, so this measures the full layered fast path.
    ExecConfig {
        seed,
        jitter: Jitter::none(),
        ..ExecConfig::default()
    }
}

/// Minimum wall time of `f` over a fixed number of samples — deliberately
/// independent of the `CHIMERA_BENCH_*` environment so the speedup gate
/// behaves identically in CI smoke runs and full refreshes.
fn fixed_min_ns(mut f: impl FnMut()) -> u64 {
    const WARMUP: usize = 2;
    const SAMPLES: usize = 9;
    for _ in 0..WARMUP {
        f();
    }
    (0..SAMPLES)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .min()
        .expect("SAMPLES > 0")
}

/// The speedup gate (see module docs). Panics when fewer than
/// [`MIN_WORKLOADS_AT_TARGET`] workloads reach [`SPEEDUP_TARGET`].
///
/// Two estimates per workload, and the gate takes the better one: the
/// raw flat-vs-seed-flat ratio (exact on hardware comparable to where
/// the seed data was taken) and the reference-normalized ratio
/// `(seed_flat/seed_ref) / (cur_flat/cur_ref)` (survives machine changes
/// — the reference path is untouched by the perf work — but inherits the
/// reference path's larger timing variance). A genuine regression drags
/// both down; noise rarely hits both at once.
fn assert_speedup_vs_seed() {
    let mut at_target = 0usize;
    for &(name, seed_flat, seed_ref) in SEED_MINS {
        let w = by_name(name).expect("baseline workload exists");
        let p = w
            .compile(&Params {
                workers: 4,
                scale: 8,
            })
            .expect("workload compiles");
        let cfg = bench_config(42);
        let cur_flat = fixed_min_ns(|| {
            std::hint::black_box(&execute_mode(&p, &cfg, InterpMode::Flat));
        });
        let cur_ref = fixed_min_ns(|| {
            std::hint::black_box(&execute_mode(&p, &cfg, InterpMode::Reference));
        });
        let raw = seed_flat as f64 / cur_flat as f64;
        let normalized =
            (seed_flat as f64 / seed_ref as f64) / (cur_flat as f64 / cur_ref as f64);
        let speedup = raw.max(normalized);
        eprintln!(
            "speedup-vs-seed {name}: {speedup:.2}x \
             (raw {raw:.2}x, ref-normalized {normalized:.2}x, flat {cur_flat}ns)"
        );
        if speedup >= SPEEDUP_TARGET {
            at_target += 1;
        }
    }
    assert!(
        at_target >= MIN_WORKLOADS_AT_TARGET,
        "flat VM speedup regressed: only {at_target} of {} baseline workloads \
         reached {SPEEDUP_TARGET}x over the seed engine",
        SEED_MINS.len()
    );
    eprintln!(
        "speedup gate passed: {at_target}/{} workloads at >= {SPEEDUP_TARGET}x",
        SEED_MINS.len()
    );
}

fn main() {
    let mut runner = Runner::from_args();
    // (family, workload, bench id, input scale): the four baseline cases
    // plus pfscan at 10x input.
    let cases: Vec<(&str, &str, String, u32)> = [
        ("memory", MEMORY_BOUND),
        ("sync", SYNC_HEAVY),
    ]
    .iter()
    .flat_map(|&(family, names)| {
        names
            .iter()
            .map(move |&n| (family, n, n.to_string(), 8u32))
    })
    .chain(std::iter::once(("sync", "pfscan", "pfscan10x".to_string(), 80u32)))
    .collect();
    for (family, workload, id, scale) in &cases {
        let w = by_name(workload).expect("paper workload exists");
        let p = w
            .compile(&Params {
                workers: 4,
                scale: *scale,
            })
            .expect("workload compiles");
        let cfg = bench_config(42);
        let par_cfg = ExecConfig {
            parallelism: 4,
            ..cfg
        };
        // One untimed run per mode for the throughput report (and to
        // fail loudly here rather than mid-sampling if a workload
        // stops exiting cleanly).
        for (cfg, mode, label) in [
            (&cfg, InterpMode::Flat, "flat"),
            (&cfg, InterpMode::Reference, "reference"),
            (&par_cfg, InterpMode::Flat, "parallel"),
        ] {
            let start = std::time::Instant::now();
            let r = execute_mode(&p, cfg, mode);
            let elapsed = start.elapsed();
            assert!(r.outcome.is_exit(), "{id}: {:?}", r.outcome);
            eprintln!(
                "{family}/{id} {label}: {:.2}M instrs/sec ({} instrs)",
                r.stats.instrs_per_sec(elapsed) / 1e6,
                r.stats.instrs,
            );
        }
        let mut group = runner.group("interp_scaling");
        group.sample_size(10);
        group.bench(&format!("flat/{family}/{id}"), || {
            let r = execute_mode(&p, &cfg, InterpMode::Flat);
            std::hint::black_box(&r);
        });
        group.bench(&format!("reference/{family}/{id}"), || {
            let r = execute_mode(&p, &cfg, InterpMode::Reference);
            std::hint::black_box(&r);
        });
        group.bench(&format!("parallel/{family}/{id}"), || {
            let r = execute_mode(&p, &par_cfg, InterpMode::Flat);
            std::hint::black_box(&r);
        });
        group.finish();
    }
    assert_speedup_vs_seed();
    runner.finish();
}
