//! Interpreter hot-loop scaling: the pre-decoded flat stepping path vs the
//! block-structured clone-per-step reference path (DESIGN.md "VM
//! internals").
//!
//! Two workload groups from the paper's benchmark suite pin the speedup
//! from both ends of the instruction mix:
//!
//! * **memory-bound** (`radix`, `ocean`): long loops of loads/stores with
//!   little synchronization — dominated by per-instruction dispatch, so
//!   the clone-free decode and `(func, pc)` frames show up directly.
//! * **sync-heavy** (`pfscan`, `apache`): mutex/condvar handoffs and
//!   shared counters — dominated by sync-table lookups and scheduler
//!   rescans, so the dense sync tables and burst scheduling show up.
//!
//! Both paths produce byte-identical results (pinned by
//! `tests/vm_differential.rs`); the bench measures speed only, and prints
//! each configuration's instructions/second once before sampling.
//!
//! Runs as a plain binary on `chimera-testkit`'s bench runner:
//! `cargo bench --bench interp_scaling [filter]`. To refresh the committed
//! data: `CHIMERA_BENCH_JSON=BENCH_vm.json cargo bench --bench
//! interp_scaling`.

use chimera_runtime::{execute_mode, ExecConfig, InterpMode, Jitter};
use chimera_testkit::bench::Runner;
use chimera_workloads::{by_name, Params};

const MEMORY_BOUND: &[&str] = &["radix", "ocean"];
const SYNC_HEAVY: &[&str] = &["pfscan", "apache"];

fn main() {
    let mut runner = Runner::from_args();
    for (family, names) in [("memory", MEMORY_BOUND), ("sync", SYNC_HEAVY)] {
        for name in names {
            let w = by_name(name).expect("paper workload exists");
            let p = w
                .compile(&Params {
                    workers: 4,
                    scale: 8,
                })
                .expect("workload compiles");
            // Jitter off: the per-step jitter draw and the schedule
            // perturbations it causes are identical in both modes, and
            // they bury the dispatch cost this bench isolates (the
            // differential suite exercises both paths *with* default
            // jitter — speed is measured here, equivalence there).
            let cfg = ExecConfig {
                seed: 42,
                jitter: Jitter::none(),
                ..ExecConfig::default()
            };
            // One untimed run per mode for the throughput report (and to
            // fail loudly here rather than mid-sampling if a workload
            // stops exiting cleanly).
            for (mode, label) in [
                (InterpMode::Flat, "flat"),
                (InterpMode::Reference, "reference"),
            ] {
                let start = std::time::Instant::now();
                let r = execute_mode(&p, &cfg, mode);
                let elapsed = start.elapsed();
                assert!(r.outcome.is_exit(), "{name}: {:?}", r.outcome);
                eprintln!(
                    "{family}/{name} {label}: {:.2}M instrs/sec ({} instrs)",
                    r.stats.instrs_per_sec(elapsed) / 1e6,
                    r.stats.instrs,
                );
            }
            let mut group = runner.group("interp_scaling");
            group.sample_size(10);
            group.bench(&format!("flat/{family}/{name}"), || {
                let r = execute_mode(&p, &cfg, InterpMode::Flat);
                std::hint::black_box(&r);
            });
            group.bench(&format!("reference/{family}/{name}"), || {
                let r = execute_mode(&p, &cfg, InterpMode::Reference);
                std::hint::black_box(&r);
            });
            group.finish();
        }
    }
    runner.finish();
}
