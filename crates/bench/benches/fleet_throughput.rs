//! Fleet orchestrator throughput: a ≥1,000-cell grid (nine paper
//! workloads × three strategies × 38 seeds) executed serially vs
//! work-stealing across all host cores (DESIGN.md §14).
//!
//! The number that matters is **cells per second** and the
//! steal-vs-serial speedup: batches of cells are pulled from a shared
//! index by `par_map_jobs` workers, so on an N-core host the grid should
//! finish close to N× faster than `--jobs 1` (the acceptance bar is ≥2×
//! on a multi-core host — on a single-core container the honest ratio is
//! ~1× and the JSON records `host_cores` so readers can tell which they
//! are looking at). Outcome aggregates from both runs are asserted
//! identical first: a throughput number for a run that changed its
//! answers would be meaningless.
//!
//! Runs as a plain binary: `cargo bench --bench fleet_throughput`. One
//! grid run per mode by default; `CHIMERA_BENCH_SAMPLES=n` takes the best
//! of `n`. To refresh the committed data:
//! `CHIMERA_BENCH_JSON=BENCH_fleet.json cargo bench --bench fleet_throughput`.

use chimera::fleet::{run_fleet, FleetConfig, FleetTarget};
use chimera::{analyze, PipelineConfig};
use chimera_runtime::SchedStrategy;
use std::time::Instant;

const SEEDS_PER_CELL_ROW: u64 = 38; // 9 workloads × 3 strategies × 38 = 1026

fn env_n(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn main() {
    let samples = env_n("CHIMERA_BENCH_SAMPLES", 1);
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let targets: Vec<FleetTarget> = chimera::workloads::all()
        .iter()
        .map(|w| {
            let p = w
                .compile(&w.profile_params(0))
                .expect("paper workload compiles");
            let a = analyze(&p, &PipelineConfig::default());
            FleetTarget::instrumented(w.name, a.instrumented.clone())
        })
        .collect();

    let cfg = |jobs: usize| FleetConfig {
        strategies: vec![
            SchedStrategy::ClockJitter,
            SchedStrategy::pct(3),
            SchedStrategy::preempt_bound(),
        ],
        seeds: (1..=SEEDS_PER_CELL_ROW).collect(),
        jobs,
        ..FleetConfig::default()
    };

    // Untimed warmup so the serial row (measured first) is not penalized
    // with cold caches relative to the steal row.
    for _ in 0..env_n("CHIMERA_BENCH_WARMUP", 1) {
        let warm = run_fleet(&targets, &cfg(0)).expect("warmup fleet");
        std::hint::black_box(&warm);
    }

    let modes: [(&str, usize); 2] = [("serial", 1), ("steal", 0)];
    let mut rows = Vec::new();
    let mut jsons: Vec<String> = Vec::new();
    for (name, jobs) in modes {
        let mut best_ns = u64::MAX;
        let mut grid = 0u64;
        for _ in 0..samples {
            let started = Instant::now();
            let run = run_fleet(&targets, &cfg(jobs)).expect("in-memory fleet cannot fail");
            let ns = started.elapsed().as_nanos() as u64;
            best_ns = best_ns.min(ns);
            grid = run.report.grid;
            assert!(
                run.report.passed(),
                "grid must be clean before its speed means anything: {}",
                run.report.to_json()
            );
            assert_eq!(run.executed, grid, "in-memory run executes every cell");
            jsons.push(run.report.to_json());
        }
        let cells_per_sec = grid as f64 * 1e9 / best_ns as f64;
        let workers = if jobs == 0 { host_cores } else { jobs };
        println!(
            "fleet/{name}: {grid} cells in {:.2}s ({cells_per_sec:.1} cells/s, {workers} worker(s))",
            best_ns as f64 / 1e9,
        );
        rows.push((name, workers, best_ns, grid, cells_per_sec));
    }
    // Worker count must never leak into outcomes.
    assert!(
        jsons.windows(2).all(|w| w[0] == w[1]),
        "serial and work-stealing grids disagreed"
    );

    let speedup = rows[1].4 / rows[0].4;
    println!(
        "work-stealing speedup: {speedup:.2}x over serial on {host_cores} core(s) \
         (≥2x expected on multi-core hosts)"
    );

    if let Some(path) = std::env::var_os("CHIMERA_BENCH_JSON") {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"fleet_throughput\",\n");
        s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
        s.push_str(&format!("  \"grid_cells\": {},\n", rows[0].3));
        s.push_str(&format!("  \"samples\": {samples},\n"));
        s.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
        s.push_str("  \"rows\": [\n");
        for (i, (name, workers, ns, cells, cps)) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"fleet/{name}\", \"jobs\": {workers}, \"elapsed_ns\": {ns}, \
                 \"cells\": {cells}, \"cells_per_sec\": {cps:.1}}}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        match std::fs::write(&path, s) {
            Ok(()) => eprintln!("wrote {}", path.to_string_lossy()),
            Err(e) => eprintln!("CHIMERA_BENCH_JSON write failed: {e}"),
        }
    }
}
