//! Benches for the ablation studies (DESIGN.md §5):
//!
//! * `baseline_leap` — recording under the LEAP-style baseline vs Chimera
//!   on the same workload (the paper's related-work comparison, §8).
//! * `timeout_sweep` — cost of resolving the §2.3 condvar deadlock at
//!   different weak-lock timeout thresholds.
//! * `pta_precision` — race detection with Steensgaard vs Andersen
//!   aliasing (§3.3's second imprecision source).
//!
//! Runs as a plain binary on `chimera-testkit`'s bench runner:
//! `cargo bench --bench ablations [filter]`.

use chimera::{analyze_workload, OptSet};
use chimera_instrument::{apply, plan_leap_baseline};
use chimera_minic::compile;
use chimera_minic::diag::Span;
use chimera_minic::ir::{Instr, LockGranularity, Terminator, WeakLockId};
use chimera_replay::record;
use chimera_runtime::ExecConfig;
use chimera_testkit::bench::Runner;
use chimera_workloads::by_name;

fn bench_baseline_leap(runner: &mut Runner) {
    let exec = ExecConfig::default();
    let mut group = runner.group("baseline_leap");
    group.sample_size(10);
    for name in ["radix", "apache"] {
        let w = by_name(name).expect("workload exists");
        let chimera = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        let leap = apply(&chimera.program, &plan_leap_baseline(&chimera.program));
        group.bench(&format!("chimera/{name}"), || {
            record(&chimera.instrumented, &exec);
        });
        group.bench(&format!("leap/{name}"), || {
            record(&leap, &exec);
        });
    }
    group.finish();
}

fn deadlocky_program() -> chimera_minic::ir::Program {
    let mut p = compile(
        "int ready; int data; lock_t m; cond_t c;
         void consumer(int unused) {
             lock(&m);
             while (ready == 0) { cond_wait(&c, &m); }
             print(data);
             unlock(&m);
         }
         void producer(int v) {
             lock(&m); data = v; ready = 1; cond_signal(&c); unlock(&m);
         }
         int main() {
             int t1; int t2;
             t1 = spawn(consumer, 0);
             t2 = spawn(producer, 77);
             join(t1); join(t2); return 0;
         }",
    )
    .expect("valid");
    for name in ["consumer", "producer"] {
        let fid = p.func_by_name(name).unwrap().id;
        let f = &mut p.funcs[fid.index()];
        let entry = f.entry;
        f.block_mut(entry).instrs.insert(
            0,
            Instr::WeakAcquire {
                lock: WeakLockId(0),
                granularity: LockGranularity::Function,
                range: None,
            },
        );
        f.block_mut(entry).spans.insert(0, Span::default());
        for b in 0..f.blocks.len() {
            if matches!(f.blocks[b].term, Terminator::Return(_)) {
                f.blocks[b].instrs.push(Instr::WeakRelease {
                    lock: WeakLockId(0),
                });
                f.blocks[b].spans.push(Span::default());
            }
        }
    }
    p.weak_locks = 1;
    p
}

fn bench_timeout_sweep(runner: &mut Runner) {
    let p = deadlocky_program();
    let mut group = runner.group("timeout_sweep");
    group.sample_size(20);
    for timeout in [1_000u64, 10_000, 100_000] {
        group.bench(&timeout.to_string(), || {
            chimera_runtime::execute(
                &p,
                &ExecConfig {
                    weak_timeout: timeout,
                    ..ExecConfig::default()
                },
            );
        });
    }
    group.finish();
}

fn bench_pta_precision(runner: &mut Runner) {
    let w = by_name("water").expect("water exists");
    let p = w.compile(&w.eval_params(4)).unwrap();
    let mut group = runner.group("pta_precision");
    group.bench("detect_steensgaard", || {
        chimera_relay::detect_races(&p);
    });
    group.bench("detect_andersen", || {
        chimera_relay::detect_races_with_andersen(&p);
    });
    group.finish();
}

fn main() {
    let mut runner = Runner::from_args();
    bench_baseline_leap(&mut runner);
    bench_timeout_sweep(&mut runner);
    bench_pta_precision(&mut runner);
    runner.finish();
}
