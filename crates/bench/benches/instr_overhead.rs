//! Attached instrumentation overhead, before and after the certified
//! plan: the paper's 53x → 1.39x arc (§6) reproduced on the same four
//! workloads the other overhead benches pin — `radix`/`ocean`
//! (memory-bound) and `pfscan`/`apache` (sync-heavy).
//!
//! For each workload the full hybrid loop runs inline: analyze →
//! `gather_evidence` (the default hostile sweep) → `demote` →
//! `apply_plan`. Overhead is measured two ways:
//!
//! * **virtual time** (primary): the VM's deterministic `makespan` of the
//!   full-instrumented and plan-instrumented programs over the
//!   uninstrumented baseline — noise-free, so the committed
//!   `BENCH_plan.json` numbers are reproducible bit-for-bit;
//! * **wall clock** (secondary): median interpreter time per variant,
//!   with the usual `CHIMERA_BENCH_SAMPLES`/`CHIMERA_BENCH_WARMUP`
//!   knobs.
//!
//! The bench *asserts* the demotion payoff: planned makespan ≤ full
//! makespan on every workload, and strictly below on at least three of
//! the four (fully-demoted workloads run the original program verbatim,
//! so their attached overhead is exactly 1.0x).
//!
//! To refresh the committed data:
//! `CHIMERA_BENCH_JSON=BENCH_plan.json cargo bench --bench instr_overhead`.

use chimera::{analyze, demote, gather_evidence, OptSet, PipelineConfig};
use chimera_plan::{apply_plan, GatherConfig, Thresholds};
use chimera_runtime::{execute, ExecConfig, Jitter};
use chimera_workloads::{by_name, Params};

const WORKLOADS: &[&str] = &["radix", "ocean", "pfscan", "apache"];

struct Row {
    name: &'static str,
    static_pairs: usize,
    demoted: usize,
    kept: usize,
    locks_full: u32,
    locks_planned: u32,
    makespan_base: u64,
    makespan_full: u64,
    makespan_planned: u64,
    wall_base_ns: u64,
    wall_full_ns: u64,
    wall_planned_ns: u64,
}

fn env_n(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median_ns(samples: usize, warmup: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let mut v = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t = std::time::Instant::now();
        f();
        v.push(t.elapsed().as_nanos() as u64);
    }
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    let samples = env_n("CHIMERA_BENCH_SAMPLES", 15);
    let warmup = env_n("CHIMERA_BENCH_WARMUP", 3);
    // Jitter off: the makespan comparison is then a pure function of the
    // instruction streams, not of perturbation draws.
    let cfg = ExecConfig {
        seed: 42,
        jitter: Jitter::none(),
        ..ExecConfig::default()
    };

    let mut rows: Vec<Row> = Vec::new();
    for name in WORKLOADS {
        let w = by_name(name).expect("paper workload exists");
        let p = w
            .compile(&Params {
                workers: 4,
                scale: 4,
            })
            .expect("workload compiles");
        let a = analyze(&p, &PipelineConfig::default());
        let statics: Vec<_> = a.races.pairs.iter().map(|p| (p.a, p.b)).collect();
        let ev = gather_evidence(
            name,
            &a.program,
            &a.instrumented,
            &statics,
            &GatherConfig {
                exec: cfg,
                ..GatherConfig::default()
            },
        );
        let plan = demote(&ev, &Thresholds::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let (planned, _) =
            apply_plan(&a.program, &a.races, &a.profile, &OptSet::all(), &plan)
                .unwrap_or_else(|e| panic!("{name}: {e}"));

        let base = execute(&a.program, &cfg);
        let full = execute(&a.instrumented, &cfg);
        let pl = execute(&planned, &cfg);
        assert!(base.outcome.is_exit(), "{name}: {:?}", base.outcome);
        assert!(full.outcome.is_exit(), "{name}: {:?}", full.outcome);
        assert!(pl.outcome.is_exit(), "{name}: {:?}", pl.outcome);
        assert!(
            pl.makespan <= full.makespan,
            "{name}: certified plan made the program slower ({} > {})",
            pl.makespan,
            full.makespan
        );

        let wall_base_ns = median_ns(samples, warmup, || {
            std::hint::black_box(execute(&a.program, &cfg));
        });
        let wall_full_ns = median_ns(samples, warmup, || {
            std::hint::black_box(execute(&a.instrumented, &cfg));
        });
        let wall_planned_ns = median_ns(samples, warmup, || {
            std::hint::black_box(execute(&planned, &cfg));
        });

        println!(
            "instr_overhead/{name}: {}/{} pair(s) demoted, weak-locks {} -> {}, \
             makespan x{:.3} full vs x{:.3} planned",
            plan.demotions.len(),
            plan.static_pairs.len(),
            a.instrumented.weak_locks,
            planned.weak_locks,
            full.makespan as f64 / base.makespan as f64,
            pl.makespan as f64 / base.makespan as f64,
        );

        rows.push(Row {
            name,
            static_pairs: plan.static_pairs.len(),
            demoted: plan.demotions.len(),
            kept: plan.kept.len(),
            locks_full: a.instrumented.weak_locks,
            locks_planned: planned.weak_locks,
            makespan_base: base.makespan,
            makespan_full: full.makespan,
            makespan_planned: pl.makespan,
            wall_base_ns,
            wall_full_ns,
            wall_planned_ns,
        });
    }

    let strictly_below = rows
        .iter()
        .filter(|r| r.makespan_planned < r.makespan_full)
        .count();
    println!(
        "certified-plan overhead strictly below full instrumentation on \
         {strictly_below}/{} workloads",
        rows.len()
    );
    assert!(
        strictly_below >= 3,
        "demotion payoff regressed: only {strictly_below} workload(s) got faster"
    );

    if let Some(path) = std::env::var_os("CHIMERA_BENCH_JSON") {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"instr_overhead\",\n");
        s.push_str("  \"exec\": {\"seed\": 42, \"jitter\": \"none\", \"workers\": 4, \"scale\": 4},\n");
        s.push_str(&format!("  \"strictly_below_full\": {strictly_below},\n"));
        s.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"static_pairs\": {}, \"demoted\": {}, \
                 \"kept\": {}, \"weak_locks_full\": {}, \"weak_locks_planned\": {}, \
                 \"makespan_base\": {}, \"makespan_full\": {}, \"makespan_planned\": {}, \
                 \"overhead_full\": {:.4}, \"overhead_planned\": {:.4}, \
                 \"wall_base_ns\": {}, \"wall_full_ns\": {}, \"wall_planned_ns\": {}}}{}\n",
                r.name,
                r.static_pairs,
                r.demoted,
                r.kept,
                r.locks_full,
                r.locks_planned,
                r.makespan_base,
                r.makespan_full,
                r.makespan_planned,
                r.makespan_full as f64 / r.makespan_base as f64,
                r.makespan_planned as f64 / r.makespan_base as f64,
                r.wall_base_ns,
                r.wall_full_ns,
                r.wall_planned_ns,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        match std::fs::write(&path, s) {
            Ok(()) => eprintln!("wrote {}", path.to_string_lossy()),
            Err(e) => eprintln!("CHIMERA_BENCH_JSON write failed: {e}"),
        }
    }
}
