//! Benches for the static side of the pipeline: RELAY-style race
//! detection, points-to analyses, symbolic bounds, profiling, and planning
//! — the costs that §7.1 claims are scalable.
//!
//! Runs as a plain binary on `chimera-testkit`'s bench runner:
//! `cargo bench --bench analysis [filter]`. `CHIMERA_BENCH_SAMPLES` /
//! `CHIMERA_BENCH_WARMUP` control the iteration counts.

use chimera::OptSet;
use chimera_minic::cfg::{Cfg, Dominators};
use chimera_minic::loops::LoopForest;
use chimera_profile::profile_runs;
use chimera_pta::{Andersen, ObjectTable, Steensgaard};
use chimera_relay::detect_races;
use chimera_runtime::ExecConfig;
use chimera_testkit::bench::Runner;
use chimera_workloads::{all, by_name};

fn bench_compile(runner: &mut Runner) {
    let mut group = runner.group("frontend_compile");
    for w in all() {
        let src = w.source(&w.eval_params(4));
        group.bench(w.name, || {
            chimera_minic::compile(&src).expect("valid workload");
        });
    }
    group.finish();
}

fn bench_points_to(runner: &mut Runner) {
    let w = by_name("apache").expect("apache exists");
    let p = w.compile(&w.eval_params(4)).unwrap();
    let objects = ObjectTable::build(&p);
    let mut group = runner.group("points_to");
    group.bench("andersen", || {
        Andersen::analyze(&p, &objects);
    });
    group.bench("steensgaard", || {
        Steensgaard::analyze(&p, &objects);
    });
    group.finish();
}

fn bench_race_detection(runner: &mut Runner) {
    let mut group = runner.group("relay_detect");
    group.sample_size(20);
    for w in all() {
        let p = w.compile(&w.eval_params(4)).unwrap();
        group.bench(w.name, || {
            detect_races(&p);
        });
    }
    group.finish();
}

fn bench_bounds(runner: &mut Runner) {
    let w = by_name("radix").expect("radix exists");
    let p = w.compile(&w.eval_params(4)).unwrap();
    let f = p.func_by_name("slave_sort").unwrap();
    let cfg = Cfg::new(f);
    let dom = Dominators::new(f, &cfg);
    let forest = LoopForest::new(f, &cfg, &dom);
    let mut group = runner.group("symbolic_bounds");
    group.bench("slave_sort", || {
        for i in 0..forest.loops.len() {
            let _ = chimera_bounds::loop_access_bounds(f, &forest, i);
        }
    });
    group.finish();
}

fn bench_plan(runner: &mut Runner) {
    let exec = ExecConfig::default();
    let w = by_name("water").expect("water exists");
    let p = w.compile(&w.eval_params(4)).unwrap();
    let races = detect_races(&p);
    let prof = profile_runs(&p, &exec, &[1, 2]);
    let mut group = runner.group("instrument_plan");
    group.bench("water", || {
        chimera_instrument::plan(&p, &races, &prof, &OptSet::all());
    });
    group.finish();
}

fn main() {
    let mut runner = Runner::from_args();
    bench_compile(&mut runner);
    bench_points_to(&mut runner);
    bench_race_detection(&mut runner);
    bench_bounds(&mut runner);
    bench_plan(&mut runner);
    runner.finish();
}
