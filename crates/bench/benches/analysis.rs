//! Criterion benches for the static side of the pipeline: RELAY-style race
//! detection, points-to analyses, symbolic bounds, profiling, and planning
//! — the costs that §7.1 claims are scalable.

use chimera::OptSet;
use chimera_minic::cfg::{Cfg, Dominators};
use chimera_minic::loops::LoopForest;
use chimera_profile::profile_runs;
use chimera_pta::{Andersen, ObjectTable, Steensgaard};
use chimera_relay::detect_races;
use chimera_runtime::ExecConfig;
use chimera_workloads::{all, by_name};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend_compile");
    for w in all() {
        let src = w.source(&w.eval_params(4));
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &src, |b, s| {
            b.iter(|| chimera_minic::compile(s).expect("valid workload"));
        });
    }
    group.finish();
}

fn bench_points_to(c: &mut Criterion) {
    let w = by_name("apache").expect("apache exists");
    let p = w.compile(&w.eval_params(4)).unwrap();
    let objects = ObjectTable::build(&p);
    let mut group = c.benchmark_group("points_to");
    group.bench_function("andersen", |b| {
        b.iter(|| Andersen::analyze(&p, &objects));
    });
    group.bench_function("steensgaard", |b| {
        b.iter(|| Steensgaard::analyze(&p, &objects));
    });
    group.finish();
}

fn bench_race_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay_detect");
    group.sample_size(20);
    for w in all() {
        let p = w.compile(&w.eval_params(4)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &p, |b, p| {
            b.iter(|| detect_races(p));
        });
    }
    group.finish();
}

fn bench_bounds(c: &mut Criterion) {
    let w = by_name("radix").expect("radix exists");
    let p = w.compile(&w.eval_params(4)).unwrap();
    let f = p.func_by_name("slave_sort").unwrap();
    let cfg = Cfg::new(f);
    let dom = Dominators::new(f, &cfg);
    let forest = LoopForest::new(f, &cfg, &dom);
    c.bench_function("symbolic_bounds_slave_sort", |b| {
        b.iter(|| {
            for i in 0..forest.loops.len() {
                let _ = chimera_bounds::loop_access_bounds(f, &forest, i);
            }
        });
    });
}

fn bench_plan(c: &mut Criterion) {
    let exec = ExecConfig::default();
    let w = by_name("water").expect("water exists");
    let p = w.compile(&w.eval_params(4)).unwrap();
    let races = detect_races(&p);
    let prof = profile_runs(&p, &exec, &[1, 2]);
    c.bench_function("instrument_plan_water", |b| {
        b.iter(|| chimera_instrument::plan(&p, &races, &prof, &OptSet::all()));
    });
}

criterion_group!(
    benches,
    bench_compile,
    bench_points_to,
    bench_race_detection,
    bench_bounds,
    bench_plan
);
criterion_main!(benches);
