//! Log-format benchmark: v1 (explicit per-object sections) vs v2
//! (journal-dictionary chunks with checkpoints) on every paper workload.
//!
//! For each workload the instrumented program is recorded once; the same
//! `ReplayLogs` value is then serialized both ways, so the byte counts
//! compare pure encoding, not run-to-run noise. Note the asymmetry: the
//! v2 container additionally carries the state-hash checkpoints and the
//! chunk checksums — it must *still* come in at or under v1's
//! bytes/event, and this bench hard-asserts that on every workload.
//!
//! Recording is timed twice — checkpointing off (`record_with(.., 0)`,
//! the v1-era recorder) and on (`record`, every `CHUNK_EVENTS`) — to
//! bound the digest-folding overhead.
//!
//! Runs as a plain binary: `cargo bench --bench replay_format`.
//! `CHIMERA_BENCH_SAMPLES` / `CHIMERA_BENCH_WARMUP` control iterations;
//! `CHIMERA_BENCH_JSON=<path>` writes the committed `BENCH_replay.json`
//! (see EXPERIMENTS.md).

use chimera::{analyze_workload, OptSet};
use chimera_replay::{record, record_with};
use chimera_runtime::ExecConfig;
use chimera_workloads::all;
use std::time::Instant;

fn env_n(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median wall time of `samples` runs of `f`, in nanoseconds.
fn median_ns(samples: usize, warmup: usize, mut f: impl FnMut()) -> u128 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Row {
    name: &'static str,
    events: usize,
    chunks: usize,
    checkpoints: usize,
    v1_bytes: usize,
    v2_bytes: usize,
    record_plain_ns: u128,
    record_ckpt_ns: u128,
}

fn main() {
    let samples = env_n("CHIMERA_BENCH_SAMPLES", 15);
    let warmup = env_n("CHIMERA_BENCH_WARMUP", 3);
    let exec = ExecConfig::default();
    let mut rows = Vec::new();

    for w in all() {
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        let p = &analysis.instrumented;
        let rec = record(p, &exec);
        let events = rec.logs.journal.len();
        assert!(events > 0, "{}: recording produced no ordered events", w.name);
        let v1 = rec.logs.to_bytes_v1();
        let v2 = rec.logs.to_bytes();
        // The acceptance gate: v2 must not regress density on any
        // workload, despite carrying checkpoints and checksums v1 lacks.
        assert!(
            v2.len() <= v1.len(),
            "{}: v2 encoding ({} B) larger than v1 ({} B) over {} events",
            w.name,
            v2.len(),
            v1.len(),
            events
        );
        let record_plain_ns = median_ns(samples, warmup, || {
            record_with(p, &exec, 0);
        });
        let record_ckpt_ns = median_ns(samples, warmup, || {
            record(p, &exec);
        });
        let row = Row {
            name: w.name,
            events,
            chunks: rec.logs.chunk_count(),
            checkpoints: rec.logs.checkpoints.len(),
            v1_bytes: v1.len(),
            v2_bytes: v2.len(),
            record_plain_ns,
            record_ckpt_ns,
        };
        println!(
            "replay_format/{:<8} {:>6} events {:>3} chunk(s): v1 {:>7} B ({:.2} B/ev), \
             v2 {:>7} B ({:.2} B/ev), ratio {:.2}x; record {:.2}ms plain, {:.2}ms ckpt",
            row.name,
            row.events,
            row.chunks,
            row.v1_bytes,
            row.v1_bytes as f64 / events as f64,
            row.v2_bytes,
            row.v2_bytes as f64 / events as f64,
            row.v1_bytes as f64 / row.v2_bytes as f64,
            record_plain_ns as f64 / 1e6,
            record_ckpt_ns as f64 / 1e6,
        );
        rows.push(row);
    }

    if let Some(path) = std::env::var_os("CHIMERA_BENCH_JSON") {
        let mut json = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"name\": \"replay_format/{}\", \"events\": {}, \"chunks\": {}, \
                 \"checkpoints\": {}, \"v1_bytes\": {}, \"v2_bytes\": {}, \
                 \"v1_bytes_per_event\": {:.3}, \"v2_bytes_per_event\": {:.3}, \
                 \"record_plain_ns\": {}, \"record_ckpt_ns\": {}}}{}\n",
                r.name,
                r.events,
                r.chunks,
                r.checkpoints,
                r.v1_bytes,
                r.v2_bytes,
                r.v1_bytes as f64 / r.events as f64,
                r.v2_bytes as f64 / r.events as f64,
                r.record_plain_ns,
                r.record_ckpt_ns,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        json.push_str("]\n");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.to_string_lossy()),
            Err(e) => eprintln!("CHIMERA_BENCH_JSON write failed: {e}"),
        }
    }
}
