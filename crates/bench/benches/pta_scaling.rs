//! Andersen solver scaling: naive fixpoint vs difference-propagation
//! worklist on synthetic programs of N functions (DESIGN.md "Solver
//! internals").
//!
//! Each program is a chain of N pointer-returning functions threading one
//! pointer through the whole chain. Every eighth link conditionally
//! rebinds the pointer to its own `malloc` site, so ~N/8 distinct
//! abstract objects must travel the rest of the chain and points-to sets
//! grow with N —
//! the regime where the naive fixpoint's re-walk of every constraint per
//! pass goes superlinear, while difference propagation only ever moves
//! each object across each edge once (and as a dense bitset at that).
//! The chain is defined in reverse source order so the return-value copy
//! edges also oppose the naive solver's constraint iteration order.
//! Every tenth function is address-taken and called indirectly, so the
//! on-the-fly call-graph resolution is exercised too.
//!
//! Runs as a plain binary on `chimera-testkit`'s bench runner:
//! `cargo bench --bench pta_scaling [filter]`. To refresh the committed
//! scaling data: `CHIMERA_BENCH_JSON=BENCH_pta.json cargo bench --bench
//! pta_scaling`.

use chimera_minic::compile;
use chimera_minic::ir::Program;
use chimera_pta::{Andersen, ObjectTable};
use chimera_testkit::bench::Runner;
use std::fmt::Write as _;

/// A chain of `n` functions: `fk` forwards its pointer argument through
/// `fk-1`, conditionally rebinds it to a fresh `malloc` cell (a distinct
/// abstract object per function), stores through it, and parks it in a
/// global pointer. `main` drives the chain, takes the address of every
/// tenth function, and calls through the resulting function pointer.
/// Functions are emitted `fn-1` down to `f0`, so each return-value copy
/// edge points *against* source order.
fn source(n: usize) -> String {
    let mut s = String::new();
    for g in 0..8 {
        let _ = write!(s, "int g{g}; ");
    }
    s.push_str("int *keep;\n");
    for k in (1..n).rev() {
        let rebind = if k % 8 == 0 {
            "q = malloc(4);".to_string()
        } else {
            format!("q = &g{};", k % 8)
        };
        let _ = writeln!(
            s,
            "int *f{k}(int *p) {{ int *q; q = f{}(p); if (g0) {{ {rebind} }} *q = {k}; keep = q; return q; }}",
            k - 1,
        );
    }
    s.push_str("int *f0(int *p) { int *q; q = p; keep = q; return q; }\n");
    s.push_str("int main() { int *p; int *fp; int t;\n    p = &g0;\n");
    let _ = writeln!(s, "    p = f{}(p);", n - 1);
    for k in (0..n).step_by(10) {
        let _ = writeln!(s, "    fp = f{k};");
    }
    s.push_str("    p = fp(p);\n");
    let _ = write!(s, "    t = spawn(f{}, p);\n    join(t);\n", n / 2);
    s.push_str("    *p = 1;\n    return 0;\n}\n");
    s
}

fn synthetic(n: usize) -> Program {
    compile(&source(n)).expect("synthetic chain compiles")
}

fn main() {
    let mut runner = Runner::from_args();
    for n in [50usize, 200, 800] {
        let p = synthetic(n);
        let objects = ObjectTable::build(&p);
        let mut group = runner.group("pta_scaling");
        group.sample_size(10);
        group.bench(&format!("worklist/{n}"), || {
            let a = Andersen::analyze(&p, &objects);
            std::hint::black_box(&a);
        });
        group.bench(&format!("naive/{n}"), || {
            let a = Andersen::analyze_naive(&p, &objects);
            std::hint::black_box(&a);
        });
        group.finish();
    }
    runner.finish();
}
