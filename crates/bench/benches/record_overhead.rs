//! Criterion benches for the dynamic side of the evaluation: recording and
//! replaying each workload (Table 2 / Figure 5 / Figure 8 inputs).
//!
//! One bench group per paper artifact:
//! * `table2_record` — record each workload with all optimizations.
//! * `table2_replay` — replay each workload from its recording.
//! * `fig5_configs`  — record `radix` under each optimization set.
//! * `fig8_workers`  — record `ocean` at 2/4/8 workers.

use chimera::{analyze_workload, OptSet};
use chimera_replay::{record, replay};
use chimera_runtime::ExecConfig;
use chimera_workloads::{all, by_name};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table2_record(c: &mut Criterion) {
    let exec = ExecConfig::default();
    let mut group = c.benchmark_group("table2_record");
    group.sample_size(10);
    for w in all() {
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &analysis, |b, a| {
            b.iter(|| record(&a.instrumented, &exec));
        });
    }
    group.finish();
}

fn bench_table2_replay(c: &mut Criterion) {
    let exec = ExecConfig::default();
    let mut group = c.benchmark_group("table2_replay");
    group.sample_size(10);
    for w in all() {
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        let recording = record(&analysis.instrumented, &exec);
        group.bench_with_input(
            BenchmarkId::from_parameter(w.name),
            &(analysis, recording),
            |b, (a, rec)| {
                b.iter(|| replay(&a.instrumented, &rec.logs, &exec));
            },
        );
    }
    group.finish();
}

fn bench_fig5_configs(c: &mut Criterion) {
    let exec = ExecConfig::default();
    let w = by_name("radix").expect("radix exists");
    let mut group = c.benchmark_group("fig5_configs");
    group.sample_size(10);
    for (label, opts) in [
        ("instr", OptSet::naive()),
        ("inst+func", OptSet::func_only()),
        ("inst+loop", OptSet::loop_only()),
        ("all", OptSet::all()),
    ] {
        let analysis = analyze_workload(&w, 2, &opts, 2, &exec);
        group.bench_with_input(BenchmarkId::from_parameter(label), &analysis, |b, a| {
            b.iter(|| record(&a.instrumented, &exec));
        });
    }
    group.finish();
}

fn bench_fig8_workers(c: &mut Criterion) {
    let exec = ExecConfig::default();
    let w = by_name("ocean").expect("ocean exists");
    let mut group = c.benchmark_group("fig8_workers");
    group.sample_size(10);
    for workers in [2u32, 4, 8] {
        let analysis = analyze_workload(&w, workers, &OptSet::all(), 2, &exec);
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &analysis,
            |b, a| {
                b.iter(|| record(&a.instrumented, &exec));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table2_record,
    bench_table2_replay,
    bench_fig5_configs,
    bench_fig8_workers
);
criterion_main!(benches);
