//! Benches for the dynamic side of the evaluation: recording and
//! replaying each workload (Table 2 / Figure 5 / Figure 8 inputs).
//!
//! One bench group per paper artifact:
//! * `table2_record` — record each workload with all optimizations.
//! * `table2_replay` — replay each workload from its recording.
//! * `fig5_configs`  — record `radix` under each optimization set.
//! * `fig8_workers`  — record `ocean` at 2/4/8 workers.
//!
//! Runs as a plain binary on `chimera-testkit`'s bench runner:
//! `cargo bench --bench record_overhead [filter]`.

use chimera::{analyze_workload, OptSet};
use chimera_replay::{record, replay};
use chimera_runtime::ExecConfig;
use chimera_testkit::bench::Runner;
use chimera_workloads::{all, by_name};

fn bench_table2_record(runner: &mut Runner) {
    let exec = ExecConfig::default();
    let mut group = runner.group("table2_record");
    group.sample_size(10);
    for w in all() {
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        group.bench(w.name, || {
            record(&analysis.instrumented, &exec);
        });
    }
    group.finish();
}

fn bench_table2_replay(runner: &mut Runner) {
    let exec = ExecConfig::default();
    let mut group = runner.group("table2_replay");
    group.sample_size(10);
    for w in all() {
        let analysis = analyze_workload(&w, 2, &OptSet::all(), 2, &exec);
        let recording = record(&analysis.instrumented, &exec);
        group.bench(w.name, || {
            replay(&analysis.instrumented, &recording.logs, &exec);
        });
    }
    group.finish();
}

fn bench_fig5_configs(runner: &mut Runner) {
    let exec = ExecConfig::default();
    let w = by_name("radix").expect("radix exists");
    let mut group = runner.group("fig5_configs");
    group.sample_size(10);
    for (label, opts) in [
        ("instr", OptSet::naive()),
        ("inst+func", OptSet::func_only()),
        ("inst+loop", OptSet::loop_only()),
        ("all", OptSet::all()),
    ] {
        let analysis = analyze_workload(&w, 2, &opts, 2, &exec);
        group.bench(label, || {
            record(&analysis.instrumented, &exec);
        });
    }
    group.finish();
}

fn bench_fig8_workers(runner: &mut Runner) {
    let exec = ExecConfig::default();
    let w = by_name("ocean").expect("ocean exists");
    let mut group = runner.group("fig8_workers");
    group.sample_size(10);
    for workers in [2u32, 4, 8] {
        let analysis = analyze_workload(&w, workers, &OptSet::all(), 2, &exec);
        group.bench(&workers.to_string(), || {
            record(&analysis.instrumented, &exec);
        });
    }
    group.finish();
}

fn main() {
    let mut runner = Runner::from_args();
    bench_table2_record(&mut runner);
    bench_table2_replay(&mut runner);
    bench_fig5_configs(&mut runner);
    bench_fig8_workers(&mut runner);
    runner.finish();
}
