//! Adversarial-scheduler overhead: executing instrumented workloads under
//! the PCT and preemption-bounded strategies vs the clock-jitter baseline
//! (DESIGN.md §11).
//!
//! The baseline runs the optimized burst loop (sorted ready-queue, one
//! thread bursts until a sync point); the non-baseline strategies route
//! through the shared per-step strategy loop that consults the scheduler
//! every instruction and classifies preemption boundaries. This bench
//! prices that seam — the delta between `jitter` and the others is what
//! `chimera explore` pays per run, and a regression here means the
//! strategy loop grew work the hot path doesn't have.
//!
//! Three workloads bound the mix: `pfscan` (sync-heavy, boundaries
//! everywhere), `radix` (memory-bound, long burstable stretches the
//! strategy loop cannot burst), `water` (barrier phases, frequent
//! scheduler decisions either way).
//!
//! Runs as a plain binary on `chimera-testkit`'s bench runner:
//! `cargo bench --bench sched_explore [filter]`. To refresh the committed
//! data: `CHIMERA_BENCH_JSON=BENCH_sched.json cargo bench --bench
//! sched_explore`.

use chimera::{analyze, PipelineConfig};
use chimera_runtime::{execute, ExecConfig, Jitter, SchedStrategy};
use chimera_testkit::bench::Runner;
use chimera_workloads::{by_name, Params};

const WORKLOADS: &[&str] = &["pfscan", "radix", "water"];

fn main() {
    let mut runner = Runner::from_args();
    for name in WORKLOADS {
        let w = by_name(name).expect("paper workload exists");
        let p = w
            .compile(&Params {
                workers: 4,
                scale: 3,
            })
            .expect("workload compiles");
        let a = analyze(&p, &PipelineConfig::default());
        // Jitter off so the jitter id prices the bare burst loop and the
        // deltas are scheduler-seam cost, not perturbation variance.
        let cfg = ExecConfig {
            seed: 42,
            jitter: Jitter::none(),
            ..ExecConfig::default()
        };
        let baseline = execute(&a.instrumented, &cfg);
        assert!(
            baseline.outcome.is_exit(),
            "{name}: {:?}",
            baseline.outcome
        );
        let strategies = [
            SchedStrategy::ClockJitter,
            chimera::explore::resolve_strategy(SchedStrategy::pct(3), baseline.stats.instrs),
            SchedStrategy::preempt_bound(),
        ];
        let mut group = runner.group("sched_explore");
        group.sample_size(10);
        for sched in strategies {
            let run_cfg = ExecConfig { sched, ..cfg };
            // Untimed check: every strategy must still exit cleanly.
            let r = execute(&a.instrumented, &run_cfg);
            assert!(
                r.outcome.is_exit(),
                "{name}/{}: {:?}",
                sched.name(),
                r.outcome
            );
            eprintln!(
                "{name}/{}: {} instrs, {} preemption(s)",
                sched.name(),
                r.stats.instrs,
                r.stats.sched_preemptions
            );
            group.bench(&format!("{name}/{}", sched.name()), || {
                let r = execute(&a.instrumented, &run_cfg);
                std::hint::black_box(&r);
            });
        }
        group.finish();
    }
    runner.finish();
}
