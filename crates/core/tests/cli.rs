//! Integration smoke tests for the `chimera` command-line binary: every
//! subcommand (`races`, `plan`, `run`, `record`, `replay`, `ir`, `drd`,
//! `explore`, `fleet`) exercised against the checked-in fixture,
//! including the full file-based record → log file → replay workflow and
//! the journaled fleet → resume workflow.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chimera"))
}

/// The checked-in demo program: a racy counter plus one properly locked
/// update, so both the race detector and the planner have work to do.
fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("demo.mc")
}

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("chimera-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mk tempdir");
    d
}

#[test]
fn races_subcommand_reports_pairs() {
    let out = bin().arg("races").arg(fixture()).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("race pair(s)"), "{stdout}");
    assert!(stdout.contains("'g'"), "{stdout}");
}

#[test]
fn plan_subcommand_summarizes_instrumentation() {
    let out = bin().arg("plan").arg(fixture()).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("weak-locks"), "{stdout}");
    assert!(stdout.contains("sites"), "{stdout}");
}

#[test]
fn run_subcommand_executes_and_is_seed_deterministic() {
    let run = |seed: &str| {
        let out = bin()
            .arg("run")
            .arg(fixture())
            .args(["--seed", seed])
            .output()
            .expect("spawn run");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let a = run("7");
    assert!(a.contains("outcome"), "{a}");
    assert!(a.contains("output"), "{a}");
    // Same seed, same schedule, same output — the VM is deterministic.
    assert_eq!(a, run("7"), "same seed must reproduce the run exactly");
}

#[test]
fn ir_subcommand_dumps_every_function() {
    let out = bin().arg("ir").arg(fixture()).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for f in ["main", "w"] {
        assert!(stdout.contains(f), "ir dump missing function '{f}':\n{stdout}");
    }
    assert!(stdout.contains("bb0"), "ir dump has no basic blocks:\n{stdout}");
}

#[test]
fn drd_subcommand_reports_dynamic_races() {
    let out = bin().arg("drd").arg(fixture()).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("racy pair(s)"), "{stdout}");
    assert!(stdout.contains("race ("), "no race line printed:\n{stdout}");
    assert!(
        !stdout.contains("data-race-free"),
        "the racy fixture must not certify:\n{stdout}"
    );
}

#[test]
fn drd_instrumented_certifies_race_freedom() {
    let out = bin()
        .arg("drd")
        .arg(fixture())
        .arg("--instrumented")
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("instrumented: 0 racy pair(s)"), "{stdout}");
    assert!(stdout.contains("data-race-free"), "{stdout}");
}

#[test]
fn record_then_replay_round_trips_through_the_log_file() {
    let dir = tempdir("roundtrip");
    let log = dir.join("run.chimlog");
    let rec = bin()
        .args(["record"])
        .arg(fixture())
        .args(["-o"])
        .arg(&log)
        .args(["--seed", "5"])
        .output()
        .expect("spawn record");
    assert!(rec.status.success(), "{rec:?}");
    assert!(log.exists());
    let rec_out = String::from_utf8_lossy(&rec.stdout);
    let recorded_value = rec_out
        .lines()
        .find(|l| l.starts_with("output"))
        .expect("record printed output")
        .to_string();

    // A different seed on replay must not matter: the log, not the
    // scheduler, decides the interleaving.
    let rep = bin()
        .args(["replay"])
        .arg(fixture())
        .arg(&log)
        .args(["--seed", "9876"])
        .output()
        .expect("spawn replay");
    assert!(rep.status.success(), "{rep:?}");
    let rep_out = String::from_utf8_lossy(&rep.stdout);
    assert!(rep_out.contains("replay complete"), "{rep_out}");
    assert!(
        rep_out.contains(recorded_value.as_str()),
        "replayed output must match recording:\nrecord: {rec_out}\nreplay: {rep_out}"
    );
}

#[test]
fn replay_with_wrong_program_fails_cleanly() {
    let dir = tempdir("mismatch");
    let log = dir.join("run.chimlog");
    assert!(bin()
        .args(["record"])
        .arg(fixture())
        .args(["-o"])
        .arg(&log)
        .output()
        .expect("record")
        .status
        .success());
    // A different program: the log cannot drive it to completion.
    let other = dir.join("other.mc");
    std::fs::write(
        &other,
        "int g;
         void w(int v) { int i; for (i = 0; i < 9; i = i + 1) { g = g + v; } }
         int main() { int t; t = spawn(w, 1); t = spawn(w, 2); w(3); return g; }",
    )
    .unwrap();
    let rep = bin()
        .args(["replay"])
        .arg(&other)
        .arg(&log)
        .output()
        .expect("replay");
    assert!(
        !rep.status.success(),
        "mismatched replay must exit non-zero: {rep:?}"
    );
}

#[test]
fn record_without_output_path_fails() {
    let out = bin().arg("record").arg(fixture()).output().expect("spawn");
    assert!(!out.status.success());
    let msg = String::from_utf8_lossy(&out.stderr);
    assert!(msg.contains("-o"), "{msg}");
}

#[test]
fn explore_jobs_parallel_report_matches_serial() {
    let dir = tempdir("explore-jobs");
    let run = |jobs: &str, out_name: &str| {
        let path = dir.join(out_name);
        let out = bin()
            .arg("explore")
            .arg(fixture())
            .args(["--strategy", "pct", "--seeds", "2", "--jobs", jobs, "-o"])
            .arg(&path)
            .output()
            .expect("spawn explore");
        assert!(out.status.success(), "{out:?}");
        std::fs::read(&path).expect("report written")
    };
    assert_eq!(
        run("1", "serial.json"),
        run("3", "parallel.json"),
        "worker count leaked into the explore report"
    );
}

#[test]
fn fleet_journals_resumes_and_keeps_the_report_stable() {
    let dir = tempdir("fleet-resume");
    let state = dir.join("state");
    let report = dir.join("fleet.json");
    let fleet = |resume: bool| {
        let mut cmd = bin();
        cmd.arg("fleet")
            .arg(fixture())
            .args(["--seeds", "2", "--check-determinism", "--dir"])
            .arg(&state)
            .arg("-o")
            .arg(&report);
        if resume {
            cmd.arg("--resume");
        }
        let out = cmd.output().expect("spawn fleet");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    let first = fleet(false);
    assert!(first.contains("6 executed now"), "{first}");
    assert!(first.contains("fleet passed"), "{first}");
    assert!(state.join("journal.chfj").exists());
    assert!(state.join("corpus.chfc").exists());
    let first_report = std::fs::read(&report).expect("report written");
    let json = String::from_utf8_lossy(&first_report);
    for key in ["\"grid\"", "\"covered\"", "\"distinct_orders\"", "\"strategies\""] {
        assert!(json.contains(key), "missing {key} in {json}");
    }

    // Immediate resume: zero cells execute, the report bytes don't move.
    let again = fleet(true);
    assert!(again.contains("0 executed now"), "{again}");
    assert!(again.contains("6 journal hit(s)"), "{again}");
    assert_eq!(std::fs::read(&report).unwrap(), first_report);
}

#[test]
fn fleet_raw_flags_expected_divergence_without_failing() {
    let out = bin()
        .arg("fleet")
        .arg(fixture())
        .args(["--raw", "--seeds", "2", "--strategy", "preempt-bound"])
        .output()
        .expect("spawn fleet --raw");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("flagged"), "raw racy fixture not flagged:\n{stdout}");
}

#[test]
fn unknown_command_and_missing_file_fail() {
    let out = bin().arg("frobnicate").arg("x.mc").output().expect("spawn");
    assert!(!out.status.success());
    let out = bin()
        .arg("races")
        .arg("/nonexistent.mc")
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let msg = String::from_utf8_lossy(&out.stderr);
    assert!(msg.contains("cannot read"), "{msg}");
}
