//! Integration tests for the `chimera` command-line binary: the full
//! file-based record → log file → replay workflow.

use std::process::Command;

const RACY: &str = "int g;
void w(int v) {
    int i; int x;
    for (i = 0; i < 40; i = i + 1) { x = g; g = x + v; }
}
int main() {
    int t;
    t = spawn(w, 1);
    w(2);
    join(t);
    print(g);
    return 0;
}
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chimera"))
}

fn write_demo(dir: &std::path::Path) -> std::path::PathBuf {
    let src = dir.join("demo.mc");
    std::fs::write(&src, RACY).expect("write source");
    src
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("chimera-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mk tempdir");
    d
}

#[test]
fn races_subcommand_reports_pairs() {
    let dir = tempdir("races");
    let src = write_demo(&dir);
    let out = bin().arg("races").arg(&src).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("race pair(s)"), "{stdout}");
    assert!(stdout.contains("'g'"), "{stdout}");
}

#[test]
fn record_then_replay_round_trips_through_the_log_file() {
    let dir = tempdir("roundtrip");
    let src = write_demo(&dir);
    let log = dir.join("run.chimlog");
    let rec = bin()
        .args(["record"])
        .arg(&src)
        .args(["-o"])
        .arg(&log)
        .args(["--seed", "5"])
        .output()
        .expect("spawn record");
    assert!(rec.status.success(), "{rec:?}");
    assert!(log.exists());
    let rec_out = String::from_utf8_lossy(&rec.stdout);
    let recorded_value = rec_out
        .lines()
        .find(|l| l.starts_with("output"))
        .expect("record printed output")
        .to_string();

    let rep = bin()
        .args(["replay"])
        .arg(&src)
        .arg(&log)
        .args(["--seed", "9876"])
        .output()
        .expect("spawn replay");
    assert!(rep.status.success(), "{rep:?}");
    let rep_out = String::from_utf8_lossy(&rep.stdout);
    assert!(rep_out.contains("replay complete"), "{rep_out}");
    assert!(
        rep_out.contains(recorded_value.as_str()),
        "replayed output must match recording:\nrecord: {rec_out}\nreplay: {rep_out}"
    );
}

#[test]
fn replay_with_wrong_program_fails_cleanly() {
    let dir = tempdir("mismatch");
    let src = write_demo(&dir);
    let log = dir.join("run.chimlog");
    assert!(bin()
        .args(["record"])
        .arg(&src)
        .args(["-o"])
        .arg(&log)
        .output()
        .expect("record")
        .status
        .success());
    // A different program: the log cannot drive it to completion.
    let other = dir.join("other.mc");
    std::fs::write(
        &other,
        "int g;
         void w(int v) { int i; for (i = 0; i < 9; i = i + 1) { g = g + v; } }
         int main() { int t; t = spawn(w, 1); t = spawn(w, 2); w(3); return g; }",
    )
    .unwrap();
    let rep = bin()
        .args(["replay"])
        .arg(&other)
        .arg(&log)
        .output()
        .expect("replay");
    assert!(
        !rep.status.success(),
        "mismatched replay must exit non-zero: {rep:?}"
    );
}

#[test]
fn unknown_command_and_missing_file_fail() {
    let out = bin().arg("frobnicate").arg("x.mc").output().expect("spawn");
    assert!(!out.status.success());
    let out = bin().arg("races").arg("/nonexistent.mc").output().expect("spawn");
    assert!(!out.status.success());
    let msg = String::from_utf8_lossy(&out.stderr);
    assert!(msg.contains("cannot read"), "{msg}");
}

#[test]
fn plan_subcommand_summarizes_instrumentation() {
    let dir = tempdir("plan");
    let src = write_demo(&dir);
    let out = bin().arg("plan").arg(&src).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("weak-locks"), "{stdout}");
    assert!(stdout.contains("sites"), "{stdout}");
}
