//! Differential pipeline test: swapping the worklist Andersen solver for
//! the retained naive fixpoint must not change anything observable
//! downstream — the race report and the weak-lock plan are byte-identical
//! (compared via their `Debug` rendering, the full structural dump).

use chimera_instrument::{instrument, OptSet};
use chimera_minic::callgraph::CallGraph;
use chimera_minic::ir::Program;
use chimera_pta::{indirect_targets, Andersen, ObjectTable, Steensgaard};
use chimera_profile::profile_runs;
use chimera_relay::{detect_races, races, AliasOracle, LocksetAnalysis, RaceReport};
use chimera_runtime::ExecConfig;

/// `chimera_relay::detect_races` with the naive Andersen solver in place of
/// the worklist one; everything downstream is the production code path.
fn detect_races_naive(p: &Program) -> RaceReport {
    let objects = ObjectTable::build(p);
    let andersen = Andersen::analyze_naive(p, &objects);
    let mut steens = Steensgaard::analyze(p, &objects);
    let cg = CallGraph::build(p, |f| indirect_targets(&andersen, p, f));
    let oracle = AliasOracle::from_steensgaard(p, &mut steens);
    let lockset = LocksetAnalysis::run(p, &cg, &oracle);
    races::find_races(p, &cg, &oracle, &lockset)
}

fn assert_pipeline_identical(p: &Program, what: &str) {
    let fast = detect_races(p);
    let naive = detect_races_naive(p);
    assert_eq!(
        format!("{fast:?}"),
        format!("{naive:?}"),
        "race report differs for {what}"
    );
    let profile = profile_runs(p, &ExecConfig::default(), &[1, 2]);
    let (prog_fast, plan_fast) = instrument(p, &fast, &profile, &OptSet::all());
    let (prog_naive, plan_naive) = instrument(p, &naive, &profile, &OptSet::all());
    assert_eq!(
        format!("{plan_fast:?}"),
        format!("{plan_naive:?}"),
        "weak-lock plan differs for {what}"
    );
    assert_eq!(
        prog_fast.weak_locks, prog_naive.weak_locks,
        "instrumented weak-lock count differs for {what}"
    );
}

#[test]
fn all_workload_fixtures_identical_under_either_solver() {
    for w in chimera_workloads::all() {
        let params = w.eval_params(2);
        let p = w.compile(&params).expect("workload compiles");
        assert_pipeline_identical(&p, w.name);
    }
}

#[test]
fn indirect_call_heavy_program_identical_under_either_solver() {
    // Function pointers exercise the on-the-fly call-graph resolution,
    // the part of the worklist solver with the most bookkeeping.
    let p = chimera_minic::compile(
        "int g; int h; lock_t m;
         void safe(int v) { lock(&m); g = g + v; unlock(&m); }
         void racy(int v) { h = h + v; }
         int main() {
            int t; int *fp;
            if (g) { fp = safe; } else { fp = racy; }
            t = spawn(racy, 1);
            fp(2);
            join(t);
            return g + h;
         }",
    )
    .unwrap();
    assert_pipeline_identical(&p, "indirect-call fixture");
}
