//! Schedule exploration: certify record/replay under hostile interleavings.
//!
//! Chimera's claim is *schedule-independence*: once a program is
//! weak-lock-instrumented, recording its sync and weak-lock order pins
//! down the execution no matter how adversarially the scheduler behaves.
//! The baseline VM only exercises clock-ordered schedules with bounded
//! jitter, which leaves the claim under-tested. This module sweeps each
//! program across the pluggable [`SchedStrategy`] seam — clock-jitter
//! baseline, PCT randomized priorities (Burckhardt et al., ASPLOS 2010),
//! and preemption-bounded switching at weak-lock and shared-access
//! boundaries — and for every `(strategy, seed)` cell it:
//!
//! 1. records the instrumented program and replays it under a *different*
//!    seed of the *same* hostile strategy, requiring observable
//!    equivalence;
//! 2. re-runs the recorded schedule with a [`SingleHolderProbe`]
//!    attached, requiring the weak-lock single-holder invariant;
//! 3. optionally cross-checks the FastTrack detector: instrumented runs
//!    must be race-free and every dynamic race on the *uninstrumented*
//!    program must appear among RELAY's static pairs.
//!
//! The report also measures how much of the schedule space the sweep
//! actually visited: distinct sync-order hashes (whole runs) and distinct
//! 32-event order prefixes, plus the number of injected perturbations.
//! A sweep where every seed collapses to one order hash is not evidence
//! of anything; the harness makes that visible instead of silent.
//!
//! The per-cell body lives in [`chimera_fleet::cell`] and is shared with
//! the fleet orchestrator (`chimera fleet`), so a fleet finding is always
//! reproducible by a one-process explore sweep of the same cell.

use crate::pipeline::Analysis;
use chimera_minic::ir::{AccessId, Program};
use chimera_runtime::{execute, par_map_jobs, ExecConfig, SchedStrategy};
use std::collections::BTreeSet;

pub use chimera_fleet::cell::{
    resolve_strategy, run_cell, ScheduleObserver, SeedOutcome, StaticPairs, PREFIX_EVENTS,
};

/// What to sweep: strategies × seeds, on a base execution configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Scheduling strategies to exercise. PCT entries with `span: 0` are
    /// auto-sized to the program's baseline retired-instruction count.
    pub strategies: Vec<SchedStrategy>,
    /// Record seeds; each replays under a derived (different) seed.
    pub seeds: Vec<u64>,
    /// Base execution configuration (costs, I/O model). `seed` and
    /// `sched` are overridden per cell.
    pub exec: ExecConfig,
    /// Also run the FastTrack detector per cell (slower; adds the
    /// DRF/static cross-check columns).
    pub check_drd: bool,
    /// Worker threads for the sweep: 0 = auto (`available_parallelism`),
    /// 1 = serial, N = exactly N. `CHIMERA_SERIAL=1` always forces
    /// serial. The report is bit-identical at every setting.
    pub jobs: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            strategies: vec![
                SchedStrategy::ClockJitter,
                SchedStrategy::pct(3),
                SchedStrategy::preempt_bound(),
            ],
            seeds: vec![1, 2, 3],
            exec: ExecConfig::default(),
            check_drd: false,
            jobs: 0,
        }
    }
}

/// All seeds of one strategy, plus coverage aggregates.
#[derive(Debug, Clone)]
pub struct StrategyReport {
    /// Strategy name (`jitter` / `pct` / `preempt-bound`).
    pub strategy: String,
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<SeedOutcome>,
    /// Distinct full-order hashes across seeds.
    pub distinct_orders: usize,
    /// Distinct 32-event order prefixes across seeds.
    pub distinct_prefixes: usize,
    /// Total perturbations injected across seeds.
    pub preemptions: u64,
    /// Cells whose replay diverged.
    pub divergences: usize,
    /// Total single-holder violations.
    pub violations: usize,
}

/// The full sweep for one program.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Program name (workload or file stem).
    pub program: String,
    /// Whether the swept program was weak-lock instrumented (divergence
    /// is a failure) or a raw racy program (divergence is the point).
    pub instrumented: bool,
    /// One entry per strategy, in configuration order.
    pub strategies: Vec<StrategyReport>,
}

impl ExploreReport {
    /// Every cell clean: replays equivalent, invariant held, DRD agreed.
    pub fn clean(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.outcomes.iter().all(SeedOutcome::clean))
    }

    /// Total diverged cells across the sweep.
    pub fn divergences(&self) -> usize {
        self.strategies.iter().map(|s| s.divergences).sum()
    }

    /// Total single-holder violations across the sweep.
    pub fn violations(&self) -> usize {
        self.strategies.iter().map(|s| s.violations).sum()
    }

    /// At least one cell diverged (what a racy uninstrumented program is
    /// expected to show somewhere in the sweep).
    pub fn any_divergence(&self) -> bool {
        self.divergences() > 0
    }

    /// Render the schedule-coverage report as JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"program\": {},\n", json_str(&self.program)));
        s.push_str(&format!("  \"instrumented\": {},\n", self.instrumented));
        s.push_str(&format!("  \"clean\": {},\n", self.clean()));
        s.push_str(&format!("  \"divergences\": {},\n", self.divergences()));
        s.push_str(&format!("  \"violations\": {},\n", self.violations()));
        s.push_str("  \"strategies\": [\n");
        for (i, st) in self.strategies.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"strategy\": {},\n", json_str(&st.strategy)));
            s.push_str(&format!("      \"seeds\": {},\n", st.outcomes.len()));
            s.push_str(&format!(
                "      \"distinct_orders\": {},\n",
                st.distinct_orders
            ));
            s.push_str(&format!(
                "      \"distinct_prefixes\": {},\n",
                st.distinct_prefixes
            ));
            s.push_str(&format!("      \"preemptions\": {},\n", st.preemptions));
            s.push_str(&format!("      \"divergences\": {},\n", st.divergences));
            s.push_str(&format!("      \"violations\": {},\n", st.violations));
            s.push_str("      \"outcomes\": [\n");
            for (j, o) in st.outcomes.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"seed\": {}, \"replay_complete\": {}, \"equivalent\": {}, \
                     \"violations\": {}, \"preemptions\": {}, \"forced_releases\": {}, \
                     \"sync_events\": {}, \"order_hash\": \"{:#018x}\", \
                     \"prefix_hash\": \"{:#018x}\"{}{}}}{}\n",
                    o.seed,
                    o.replay_complete,
                    o.equivalent,
                    o.violations.len(),
                    o.preemptions,
                    o.forced_releases,
                    o.sync_events,
                    o.order_hash,
                    o.prefix_hash,
                    o.drd_races
                        .map_or(String::new(), |n| format!(", \"drd_races\": {n}")),
                    o.drd_unpredicted
                        .map_or(String::new(), |n| format!(", \"drd_unpredicted\": {n}")),
                    if j + 1 < st.outcomes.len() { "," } else { "" },
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.strategies.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sweep an analyzed (instrumented) program. Divergences, single-holder
/// violations, instrumented dynamic races, and statically-unpredicted
/// dynamic races are all failures; [`ExploreReport::clean`] is the
/// verdict.
pub fn explore(name: &str, analysis: &Analysis, cfg: &ExploreConfig) -> ExploreReport {
    let statics: BTreeSet<(AccessId, AccessId)> =
        analysis.races.pairs.iter().map(|p| (p.a, p.b)).collect();
    sweep(
        name,
        &analysis.instrumented,
        Some((&analysis.program, &statics)),
        true,
        cfg,
    )
}

/// Sweep a raw (uninstrumented) program. A racy program is *expected* to
/// diverge for some cell — [`ExploreReport::any_divergence`] is the
/// interesting predicate here, and divergence is not counted as unclean
/// behavior of the harness itself.
pub fn explore_uninstrumented(name: &str, program: &Program, cfg: &ExploreConfig) -> ExploreReport {
    sweep(name, program, None, false, cfg)
}

fn sweep(
    name: &str,
    program: &Program,
    drd_cross: Option<(&Program, &BTreeSet<(AccessId, AccessId)>)>,
    instrumented: bool,
    cfg: &ExploreConfig,
) -> ExploreReport {
    let baseline = execute(program, &cfg.exec);
    let instrs = baseline.stats.instrs;
    // Resolve once per strategy, not per (strategy, seed) cell:
    // resolution is a pure function of (strategy, baseline instrs), so
    // hoisting it out of the seed loop cannot change any outcome.
    let resolved: Vec<SchedStrategy> = cfg
        .strategies
        .iter()
        .map(|&s| resolve_strategy(s, instrs))
        .collect();
    let combos: Vec<(usize, SchedStrategy, u64)> = resolved
        .iter()
        .enumerate()
        .flat_map(|(si, &s)| cfg.seeds.iter().map(move |&seed| (si, s, seed)))
        .collect();
    let outcomes = par_map_jobs(&combos, cfg.jobs, |&(si, sched, seed)| {
        (
            si,
            run_cell(program, drd_cross, sched, seed, &cfg.exec, cfg.check_drd),
        )
    });
    let mut strategies: Vec<StrategyReport> = cfg
        .strategies
        .iter()
        .map(|s| StrategyReport {
            strategy: s.name().to_string(),
            outcomes: Vec::new(),
            distinct_orders: 0,
            distinct_prefixes: 0,
            preemptions: 0,
            divergences: 0,
            violations: 0,
        })
        .collect();
    for (si, o) in outcomes {
        strategies[si].outcomes.push(o);
    }
    for st in &mut strategies {
        st.distinct_orders = st
            .outcomes
            .iter()
            .map(|o| o.order_hash)
            .collect::<BTreeSet<_>>()
            .len();
        st.distinct_prefixes = st
            .outcomes
            .iter()
            .map(|o| o.prefix_hash)
            .collect::<BTreeSet<_>>()
            .len();
        st.preemptions = st.outcomes.iter().map(|o| o.preemptions).sum();
        st.divergences = st.outcomes.iter().filter(|o| o.diverged()).count();
        st.violations = st.outcomes.iter().map(|o| o.violations.len()).sum();
    }
    ExploreReport {
        program: name.to_string(),
        instrumented,
        strategies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{analyze, PipelineConfig};
    use chimera_minic::compile;

    const RACY: &str = "int g;
        void w(int v) { int i; int x;
            for (i = 0; i < 80; i = i + 1) { x = g; g = x + v; } }
        int main() { int t; t = spawn(w, 1); w(2); join(t); print(g); return 0; }";

    fn small_cfg() -> ExploreConfig {
        ExploreConfig {
            seeds: vec![1, 2],
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn instrumented_racy_program_survives_adversarial_sweep() {
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        let cfg = ExploreConfig {
            check_drd: true,
            ..small_cfg()
        };
        let r = explore("racy", &a, &cfg);
        assert!(r.clean(), "{}", r.to_json());
        assert_eq!(r.strategies.len(), 3);
        for st in &r.strategies {
            assert_eq!(st.outcomes.len(), 2);
        }
    }

    #[test]
    fn uninstrumented_racy_program_diverges_somewhere() {
        let p = compile(RACY).unwrap();
        let cfg = ExploreConfig {
            seeds: vec![1, 2, 3],
            ..ExploreConfig::default()
        };
        let r = explore_uninstrumented("racy", &p, &cfg);
        assert!(
            r.any_divergence(),
            "adversarial sweep failed to expose the race: {}",
            r.to_json()
        );
        // Divergence means the *replay* broke, not the invariant probe.
        assert_eq!(r.violations(), 0, "{}", r.to_json());
    }

    #[test]
    fn adversarial_strategies_explore_distinct_orders() {
        // Needs synchronization traffic: the order hash is over sync and
        // weak-lock events, so a lock-free program has a schedule-invariant
        // stream no matter how wildly the interleaving varies.
        let contended = "int g; lock_t m;
            void w(int n) { int i; for (i = 0; i < 40; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
            int main() { int t1; int t2;
                t1 = spawn(w, 1); t2 = spawn(w, 2); w(3);
                join(t1); join(t2); print(g); return 0; }";
        let p = compile(contended).unwrap();
        let cfg = ExploreConfig {
            seeds: vec![1, 2, 3, 4],
            ..ExploreConfig::default()
        };
        let r = explore_uninstrumented("contended", &p, &cfg);
        let adversarial_orders: usize = r
            .strategies
            .iter()
            .filter(|s| s.strategy != "jitter")
            .map(|s| s.distinct_orders)
            .max()
            .unwrap();
        assert!(
            adversarial_orders > 1,
            "adversarial sweep collapsed to one schedule: {}",
            r.to_json()
        );
        let preempts: u64 = r.strategies.iter().map(|s| s.preemptions).sum();
        assert!(preempts > 0, "no perturbations injected: {}", r.to_json());
    }

    #[test]
    fn sweep_is_deterministic() {
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        let r1 = explore("racy", &a, &small_cfg());
        let r2 = explore("racy", &a, &small_cfg());
        assert_eq!(r1.to_json(), r2.to_json());
    }

    #[test]
    fn parallel_sweep_report_is_byte_identical_to_serial() {
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        let serial = explore(
            "racy",
            &a,
            &ExploreConfig {
                jobs: 1,
                ..small_cfg()
            },
        );
        let parallel = explore(
            "racy",
            &a,
            &ExploreConfig {
                jobs: 3,
                ..small_cfg()
            },
        );
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn report_json_shape_is_stable() {
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        let r = explore("racy", &a, &small_cfg());
        let j = r.to_json();
        for key in [
            "\"program\"",
            "\"instrumented\"",
            "\"clean\"",
            "\"strategies\"",
            "\"distinct_orders\"",
            "\"distinct_prefixes\"",
            "\"order_hash\"",
            "\"preemptions\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(json_str("a\"b\\c\nd").contains("\\\""));
    }

    #[test]
    fn hoisted_strategy_resolution_pins_per_cell_report() {
        // The sweep now resolves each strategy once per program; the
        // pre-hoist code resolved inside the per-seed loop. Resolution is
        // a pure function of (strategy, baseline instrs), so the report
        // must be byte-identical — pin that by rebuilding every outcome
        // with per-cell resolution and comparing debug renderings.
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        let cfg = ExploreConfig {
            check_drd: true,
            ..small_cfg()
        };
        let r = explore("racy", &a, &cfg);
        let statics: BTreeSet<(AccessId, AccessId)> =
            a.races.pairs.iter().map(|p| (p.a, p.b)).collect();
        let instrs = execute(&a.instrumented, &cfg.exec).stats.instrs;
        for (si, &strat) in cfg.strategies.iter().enumerate() {
            for (sj, &seed) in cfg.seeds.iter().enumerate() {
                let o = run_cell(
                    &a.instrumented,
                    Some((&a.program, &statics)),
                    resolve_strategy(strat, instrs),
                    seed,
                    &cfg.exec,
                    cfg.check_drd,
                );
                assert_eq!(
                    format!("{:?}", r.strategies[si].outcomes[sj]),
                    format!("{o:?}"),
                    "cell (strategy {si}, seed {seed}) drifted after hoisting"
                );
            }
        }
    }

    #[test]
    fn pct_auto_span_resolves_to_baseline_instrs() {
        assert_eq!(
            resolve_strategy(SchedStrategy::pct(3), 12_345),
            SchedStrategy::Pct {
                depth: 3,
                span: 12_345
            }
        );
        let fixed = SchedStrategy::Pct {
            depth: 2,
            span: 77,
        };
        assert_eq!(resolve_strategy(fixed, 12_345), fixed);
        assert_eq!(
            resolve_strategy(SchedStrategy::ClockJitter, 9),
            SchedStrategy::ClockJitter
        );
    }
}
