//! The `chimera` command-line tool: run the pipeline on MiniC files.
//!
//! ```text
//! chimera races <file.mc>                      # static race report
//! chimera plan <file.mc> [--evidence DIR --min-seeds N --min-strategies N
//!               -o plan.chpl]                  # instrumentation plan /
//!                                              # certified demotion plan
//! chimera run <file.mc> [--seed N] [--parallel [W]] [--no-jitter] [--json]
//!             [--plan plan.chpl [--verify]]    # execute (uninstrumented,
//!                                              # or under a certified plan)
//! chimera record <file.mc> -o <log> [--seed N] # instrument + record
//! chimera replay <file.mc> <log> [--seed N] [--bisect]
//!                                              # replay from a log file
//! chimera ir <file.mc>                         # dump the IR
//! chimera drd <file.mc> [--instrumented]       # dynamic race report
//! chimera explore [file.mc] [--strategy S] [--seeds N] [--jobs N] [--drd]
//!                 [--evidence DIR] [-o r.json] # adversarial-schedule sweep
//! chimera fleet [file.mc] [--strategy S] [--seeds N] [--jobs N] [--drd]
//!               [--dir D] [--resume] [--check-determinism] [--max-cells N]
//!               [--raw] [--evidence DIR] [-o r.json]  # exploration-cell fleet
//! ```
//!
//! `record` and `replay` must agree on the file and options so the
//! instrumented programs match; the log's byte format is
//! [`chimera_replay::ReplayLogs::to_bytes`]. With `--bisect`, a diverging
//! replay is re-examined forensically: the replayer records its own
//! journal and checkpoints alongside enforcement, and a binary search over
//! the checkpoint digests names the first mismatched chunk and event with
//! a root-cause hint (requires a v2 log).
//!
//! `run --parallel [W]` executes the flat VM's DRF-certified parallel
//! mode with `W` OS workers (default 4): speculative segment rounds are
//! evaluated by `chimera_runtime::par_map` against a frozen memory
//! snapshot and joined deterministically, so outcome, output, state hash
//! and stats are bit-identical to serial execution (`CHIMERA_SERIAL=1`
//! forces the serial engine regardless). The speculative engine only
//! arms with timing jitter off — pass `--no-jitter` to see it (and
//! parallel rounds) actually engage. `run --json` emits a
//! machine-readable report including the VM strategy counters
//! (superinstructions dispatched, batch runs, speculative rounds) and the
//! decode-time fusion table.
//!
//! `explore` sweeps the instrumented program across scheduling strategies
//! (`jitter`, `pct`, `preempt-bound`, or `all`) × `--seeds` record seeds,
//! replaying each recording under a different seed of the same hostile
//! strategy; without a file it sweeps all nine paper workloads. It exits
//! nonzero if any replay diverges or the weak-lock single-holder
//! invariant is ever violated, and writes a JSON schedule-coverage report
//! with `-o`. `--jobs N` runs the sweep on N worker threads (0 = one per
//! core; `CHIMERA_SERIAL=1` forces serial) with a bit-identical report.
//!
//! The hybrid loop: `explore --evidence DIR` (or `fleet --evidence DIR`)
//! additionally sweeps each target through `chimera_plan::gather_evidence`
//! and writes a checksummed `.chev` evidence container per program. `plan
//! --evidence DIR` then consumes the evidence — refusing with a named
//! error if coverage is below `--min-seeds`/`--min-strategies`, any cell
//! was unclean, or a dynamic race was statically unpredicted — and emits
//! a certified `.chpl` demotion plan. `run --plan plan.chpl` applies it
//! (digest-checked), executing with the demoted weak-locks stripped;
//! `--verify` re-runs FastTrack plus a hostile replay and, on any
//! contradiction, names the demoted pair it refutes.
//!
//! `fleet` scales the same per-cell pipeline to campaign size: the full
//! `programs × strategies × seeds` grid runs work-stealing across `--jobs`
//! workers, every outcome is journaled under a durable cell key, and
//! interesting cells (new schedule coverage, divergences, preemption-heavy
//! runs, violations) feed a persistent seed corpus. `--dir D` holds
//! `journal.chfj` + `corpus.chfc`; `--resume` skips journaled cells (an
//! interrupted or `--max-cells`-budgeted campaign continues where it
//! left off, and the final report is byte-identical to a one-shot run);
//! `--check-determinism` runs every cell twice and diffs the state and
//! order hashes, kimberlite-style; `--raw` sweeps the program
//! *uninstrumented*, where divergence is the expected, flagged finding.

use chimera::{analyze, ExploreConfig, OptSet, PipelineConfig};
use chimera_minic::compile;
use chimera_runtime::{execute, ExecConfig, SchedStrategy, ThreadId};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("chimera: {msg}");
            ExitCode::from(1)
        }
    }
}

struct Cli {
    command: String,
    file: Option<String>,
    extra: Option<String>,
    out: Option<String>,
    seed: u64,
    naive: bool,
    opt: bool,
    instrumented: bool,
    strategy: String,
    seeds: u64,
    drd: bool,
    bisect: bool,
    parallel: u32,
    json: bool,
    no_jitter: bool,
    jobs: usize,
    dir: Option<String>,
    resume: bool,
    check_determinism: bool,
    max_cells: Option<u64>,
    raw: bool,
    evidence: Option<String>,
    min_seeds: u32,
    min_strategies: u32,
    plan_file: Option<String>,
    verify: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(
            "usage: chimera <races|plan|run|record|replay|ir|drd|explore|fleet> <file.mc> [...]"
                .into(),
        );
    }
    let mut cli = Cli {
        command: argv[0].clone(),
        file: None,
        extra: None,
        out: None,
        seed: 0,
        naive: false,
        opt: false,
        instrumented: false,
        strategy: "all".to_string(),
        seeds: 3,
        drd: false,
        bisect: false,
        parallel: 1,
        json: false,
        no_jitter: false,
        jobs: 0,
        dir: None,
        resume: false,
        check_determinism: false,
        max_cells: None,
        raw: false,
        evidence: None,
        min_seeds: 3,
        min_strategies: 2,
        plan_file: None,
        verify: false,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                cli.seed = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
                i += 2;
            }
            "-o" | "--out" => {
                cli.out = Some(argv.get(i + 1).cloned().ok_or("-o needs a path")?);
                i += 2;
            }
            "--naive" => {
                cli.naive = true;
                i += 1;
            }
            "--opt" => {
                cli.opt = true;
                i += 1;
            }
            "--instrumented" => {
                cli.instrumented = true;
                i += 1;
            }
            "--strategy" => {
                cli.strategy = argv
                    .get(i + 1)
                    .cloned()
                    .ok_or("--strategy needs jitter|pct|preempt-bound|all")?;
                i += 2;
            }
            "--seeds" => {
                cli.seeds = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seeds needs a number")?;
                i += 2;
            }
            "--drd" => {
                cli.drd = true;
                i += 1;
            }
            "--bisect" => {
                cli.bisect = true;
                i += 1;
            }
            "--parallel" => {
                // Optional worker count: `--parallel 8` or bare
                // `--parallel` (4 workers).
                if let Some(w) = argv.get(i + 1).and_then(|v| v.parse::<u32>().ok()) {
                    cli.parallel = w.max(1);
                    i += 2;
                } else {
                    cli.parallel = 4;
                    i += 1;
                }
            }
            "--json" => {
                cli.json = true;
                i += 1;
            }
            "--jobs" => {
                cli.jobs = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--jobs needs a number (0 = one worker per core)")?;
                i += 2;
            }
            "--dir" => {
                cli.dir = Some(argv.get(i + 1).cloned().ok_or("--dir needs a path")?);
                i += 2;
            }
            "--resume" => {
                cli.resume = true;
                i += 1;
            }
            "--check-determinism" => {
                cli.check_determinism = true;
                i += 1;
            }
            "--max-cells" => {
                cli.max_cells = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-cells needs a number")?,
                );
                i += 2;
            }
            "--raw" => {
                cli.raw = true;
                i += 1;
            }
            "--evidence" => {
                cli.evidence =
                    Some(argv.get(i + 1).cloned().ok_or("--evidence needs a directory")?);
                i += 2;
            }
            "--min-seeds" => {
                cli.min_seeds = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-seeds needs a number")?;
                i += 2;
            }
            "--min-strategies" => {
                cli.min_strategies = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-strategies needs a number")?;
                i += 2;
            }
            "--plan" => {
                cli.plan_file = Some(argv.get(i + 1).cloned().ok_or("--plan needs a path")?);
                i += 2;
            }
            "--verify" => {
                cli.verify = true;
                i += 1;
            }
            "--no-jitter" => {
                // Timing jitter off. This is what arms the speculative
                // segment engine (and with --parallel its OS-thread
                // dispatch): hot commits must draw no RNG.
                cli.no_jitter = true;
                i += 1;
            }
            arg => {
                if cli.file.is_none() {
                    cli.file = Some(arg.to_string());
                } else if cli.extra.is_none() {
                    cli.extra = Some(arg.to_string());
                } else {
                    return Err(format!("unexpected argument '{arg}'"));
                }
                i += 1;
            }
        }
    }
    Ok(cli)
}

fn run() -> Result<(), String> {
    let cli = parse_cli()?;
    if cli.command == "explore" {
        return run_explore(&cli);
    }
    if cli.command == "fleet" {
        return run_fleet_cmd(&cli);
    }
    let path = cli.file.clone().ok_or("missing <file.mc> argument")?;
    let source =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut program = compile(&source).map_err(|e| format!("{path}: {e}"))?;
    if cli.opt {
        let n = chimera_minic::opt::optimize(&mut program);
        eprintln!("optimizer: {n} instruction(s) simplified or removed");
    }
    let program = program;

    let opts = if cli.naive {
        OptSet::naive()
    } else {
        OptSet::all()
    };
    let exec = ExecConfig {
        seed: cli.seed,
        parallelism: cli.parallel,
        jitter: if cli.no_jitter {
            chimera_runtime::Jitter::none()
        } else {
            chimera_runtime::Jitter::default()
        },
        ..ExecConfig::default()
    };

    match cli.command.as_str() {
        "races" => {
            let report = chimera_relay::detect_races(&program);
            print!("{}", report.describe(&program));
            println!("{} race pair(s)", report.pairs.len());
            Ok(())
        }
        "ir" => {
            print!("{}", chimera_minic::pretty::program_to_string(&program));
            Ok(())
        }
        "plan" => {
            let analysis = analyze(
                &program,
                &PipelineConfig {
                    opts,
                    ..PipelineConfig::default()
                },
            );
            if let Some(dir) = &cli.evidence {
                // Evidence-driven path: find this program's evidence
                // container, demote what the hostile sweep certified
                // race-free, and write the checksummed plan.
                let digest = chimera::fleet::cell::program_digest(&analysis.program);
                let ev = chimera::Evidence::find(std::path::Path::new(dir), digest)?;
                let thresholds = chimera::Thresholds {
                    min_seeds: cli.min_seeds,
                    min_strategies: cli.min_strategies,
                };
                let plan = chimera::demote(&ev, &thresholds).map_err(|e| e.to_string())?;
                println!("{}", plan.describe());
                for d in &plan.demotions {
                    println!(
                        "  demote ({}, {}) — race-free across {} evidence cell(s)",
                        d.pair.0,
                        d.pair.1,
                        d.cells.len()
                    );
                }
                for k in &plan.kept {
                    println!("  keep   ({}, {}) — dynamically confirmed racy", k.0, k.1);
                }
                let out = cli.out.clone().unwrap_or_else(|| "plan.chpl".to_string());
                plan.save(std::path::Path::new(&out))?;
                println!("wrote {out}");
                return Ok(());
            }
            let p = &analysis.plan;
            println!("race pairs      : {}", analysis.races.pairs.len());
            println!("weak-locks      : {}", p.n_weak_locks);
            println!("cliques         : {}", p.stats.cliques);
            println!(
                "sites           : {} function, {} loop, {} bb, {} instruction",
                p.func_locks.values().map(Vec::len).sum::<usize>(),
                p.loop_locks.values().map(Vec::len).sum::<usize>(),
                p.bb_locks.values().map(Vec::len).sum::<usize>(),
                p.instr_locks.values().map(Vec::len).sum::<usize>(),
            );
            for (f, locks) in &p.func_locks {
                println!(
                    "  func-lock {:?} on {}",
                    locks,
                    analysis.program.funcs[f.index()].name
                );
            }
            Ok(())
        }
        "run" => {
            if let Some(plan_path) = &cli.plan_file {
                // Execute under a certified demotion plan: re-analyze,
                // digest-check the plan against this program, and run the
                // thinner instrumentation it certifies.
                let plan = chimera::CertifiedPlan::load(std::path::Path::new(plan_path))?;
                let analysis = analyze(
                    &program,
                    &PipelineConfig {
                        opts: opts.clone(),
                        ..PipelineConfig::default()
                    },
                );
                let (planned, iplan) = chimera::apply_plan(
                    &analysis.program,
                    &analysis.races,
                    &analysis.profile,
                    &opts,
                    &plan,
                )?;
                println!(
                    "plan: {} of {} pair(s) demoted; weak-locks {} (full instrumentation: {})",
                    iplan.stats.pairs_demoted,
                    plan.static_pairs.len(),
                    planned.weak_locks,
                    analysis.instrumented.weak_locks,
                );
                let r = execute(&planned, &exec);
                if cli.json {
                    print!("{}", run_json(&planned, &r, &exec));
                } else {
                    report_exec(&r);
                }
                if cli.verify {
                    chimera::verify_under_plan(&planned, &plan, &exec)?;
                    println!(
                        "verified under plan: FastTrack race-free, hostile replay equivalent"
                    );
                }
                return Ok(());
            }
            let r = execute(&program, &exec);
            if cli.json {
                print!("{}", run_json(&program, &r, &exec));
            } else {
                report_exec(&r);
            }
            Ok(())
        }
        "record" => {
            let out = cli.out.clone().ok_or("record needs -o <logfile>")?;
            let analysis = analyze(
                &program,
                &PipelineConfig {
                    opts,
                    ..PipelineConfig::default()
                },
            );
            let rec = chimera_replay::record(&analysis.instrumented, &exec);
            report_exec(&rec.result);
            let bytes = rec.logs.to_bytes();
            std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
            let (ikb, okb) = rec.logs.compressed_sizes();
            println!(
                "wrote {out}: {} bytes raw (est. compressed: input {ikb} B + order {okb} B)",
                bytes.len()
            );
            Ok(())
        }
        "replay" => {
            let log_path = cli.extra.clone().ok_or("replay needs <logfile>")?;
            let bytes = std::fs::read(&log_path)
                .map_err(|e| format!("cannot read {log_path}: {e}"))?;
            let logs = chimera_replay::ReplayLogs::from_bytes(&bytes)
                .map_err(|e| format!("{log_path}: {e}"))?;
            let analysis = analyze(
                &program,
                &PipelineConfig {
                    opts,
                    ..PipelineConfig::default()
                },
            );
            if cli.bisect {
                if logs.journal.is_empty() && logs.sync_log_entries > 0 {
                    return Err(format!(
                        "{log_path} is a v1 log with no journal or checkpoints; \
                         re-record with this build to enable bisection"
                    ));
                }
                let rep = chimera_replay::replay_bisect(&analysis.instrumented, &logs, &exec);
                report_exec(&rep.result);
                match chimera_replay::localize_divergence(&logs, &rep.observed) {
                    None => {
                        println!(
                            "replay conformant: {} chunk(s), {} checkpoint(s) verified",
                            logs.chunk_count(),
                            logs.checkpoints.len()
                        );
                        if rep.complete {
                            Ok(())
                        } else {
                            Err("replay stalled without journal divergence \
                                 (log truncated?)"
                                .into())
                        }
                    }
                    Some(d) => {
                        println!("{d}");
                        Err(format!(
                            "replay diverged at event {} (chunk {}): {}",
                            d.event, d.chunk, d.cause
                        ))
                    }
                }
            } else {
                let rep = chimera_replay::replay(&analysis.instrumented, &logs, &exec);
                report_exec(&rep.result);
                if rep.complete {
                    println!("replay complete: every logged event consumed");
                    Ok(())
                } else {
                    Err("replay diverged (did record/replay use the same file and options? \
                         try --bisect for forensics)"
                        .into())
                }
            }
        }
        "drd" => {
            // Dynamic (FastTrack) race detection over one execution. With
            // --instrumented the weak-lock-instrumented program runs
            // instead — the DRF-equivalence check: it should be race-free.
            let (target, label) = if cli.instrumented {
                let analysis = analyze(
                    &program,
                    &PipelineConfig {
                        opts,
                        ..PipelineConfig::default()
                    },
                );
                (analysis.instrumented.clone(), "instrumented")
            } else {
                (program.clone(), "uninstrumented")
            };
            let run = chimera::drd::detect(&target, &exec);
            report_exec(&run.result);
            print!("{}", run.report.describe(&target));
            println!(
                "{label}: {} racy pair(s), {} dynamic race observation(s)",
                run.report.pairs.len(),
                run.report.races
            );
            if run.report.is_race_free() {
                println!("execution is data-race-free");
                if let Some(cert) = run.certificate(&exec) {
                    println!("segment certificate: {}", cert.to_json());
                }
            }
            Ok(())
        }
        other => Err(format!(
            "unknown command '{other}' (races|plan|run|record|replay|ir|drd|explore|fleet)"
        )),
    }
}

/// `chimera explore`: sweep one file (or all nine workloads) across
/// adversarial scheduling strategies and certify replay under each.
fn run_explore(cli: &Cli) -> Result<(), String> {
    let strategies = match cli.strategy.as_str() {
        "all" => vec![
            SchedStrategy::ClockJitter,
            SchedStrategy::pct(3),
            SchedStrategy::preempt_bound(),
        ],
        name => vec![SchedStrategy::parse(name)
            .ok_or_else(|| format!("unknown strategy '{name}' (jitter|pct|preempt-bound|all)"))?],
    };
    let cfg = ExploreConfig {
        strategies,
        seeds: (1..=cli.seeds.max(1)).collect(),
        exec: ExecConfig {
            seed: cli.seed,
            ..ExecConfig::default()
        },
        check_drd: cli.drd,
        jobs: cli.jobs,
    };
    let opts = if cli.naive {
        OptSet::naive()
    } else {
        OptSet::all()
    };
    let pipeline = PipelineConfig {
        opts,
        ..PipelineConfig::default()
    };

    let mut targets: Vec<(String, chimera_minic::ir::Program)> = Vec::new();
    if let Some(path) = &cli.file {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program = compile(&source).map_err(|e| format!("{path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        targets.push((name, program));
    } else {
        for w in chimera::workloads::all() {
            let p = w
                .compile(&w.profile_params(0))
                .map_err(|e| format!("{}: {e}", w.name))?;
            targets.push((w.name.to_string(), p));
        }
    }

    let gather = cli.evidence.as_ref().map(|dir| {
        (
            std::path::PathBuf::from(dir),
            chimera::GatherConfig {
                strategies: cfg.strategies.clone(),
                seeds: cfg.seeds.clone(),
                exec: cfg.exec,
                jobs: cfg.jobs,
            },
        )
    });

    let mut reports = Vec::new();
    let mut failed = false;
    for (name, program) in &targets {
        let analysis = analyze(program, &pipeline);
        if let Some((dir, gcfg)) = &gather {
            let statics: Vec<_> = analysis.races.pairs.iter().map(|p| (p.a, p.b)).collect();
            let ev = chimera::gather_evidence(
                name,
                &analysis.program,
                &analysis.instrumented,
                &statics,
                gcfg,
            );
            let path = ev.save(dir)?;
            println!(
                "{name:>8} evidence: {} cell(s), {} static pair(s), {} confirmed racy -> {}",
                ev.cells.len(),
                ev.static_pairs.len(),
                ev.confirmed_racy.len(),
                path.display()
            );
        }
        let report = chimera::explore(name, &analysis, &cfg);
        for st in &report.strategies {
            println!(
                "{name:>8} {:>13}: {} seed(s), {} divergence(s), {} violation(s), \
                 {} distinct order(s) ({} prefix(es)), {} preemption(s)",
                st.strategy,
                st.outcomes.len(),
                st.divergences,
                st.violations,
                st.distinct_orders,
                st.distinct_prefixes,
                st.preemptions,
            );
        }
        failed |= !report.clean();
        reports.push(report);
    }

    if let Some(out) = &cli.out {
        let mut json = String::from("[\n");
        for (i, r) in reports.iter().enumerate() {
            json.push_str(&r.to_json());
            if i + 1 < reports.len() {
                let end = json.trim_end_matches('\n').len();
                json.truncate(end);
                json.push_str(",\n");
            }
        }
        json.push_str("]\n");
        std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }

    if failed {
        return Err("schedule exploration found divergences or invariant violations".into());
    }
    println!(
        "explored {} program(s): all replays equivalent, single-holder invariant held",
        reports.len()
    );
    Ok(())
}

/// `chimera fleet`: run the full exploration-cell grid work-stealing,
/// journal every outcome, harvest interesting cells into the seed corpus,
/// and report grid-wide schedule coverage.
fn run_fleet_cmd(cli: &Cli) -> Result<(), String> {
    use chimera::{run_fleet, FleetConfig, FleetTarget};

    let strategies = match cli.strategy.as_str() {
        "all" => vec![
            SchedStrategy::ClockJitter,
            SchedStrategy::pct(3),
            SchedStrategy::preempt_bound(),
        ],
        name => vec![SchedStrategy::parse(name)
            .ok_or_else(|| format!("unknown strategy '{name}' (jitter|pct|preempt-bound|all)"))?],
    };
    let opts = if cli.naive {
        OptSet::naive()
    } else {
        OptSet::all()
    };
    let pipeline = PipelineConfig {
        opts,
        ..PipelineConfig::default()
    };

    // Build the target list: one file, or all nine paper workloads.
    let mut sources: Vec<(String, chimera_minic::ir::Program)> = Vec::new();
    if let Some(path) = &cli.file {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program = compile(&source).map_err(|e| format!("{path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        sources.push((name, program));
    } else {
        for w in chimera::workloads::all() {
            let p = w
                .compile(&w.profile_params(0))
                .map_err(|e| format!("{}: {e}", w.name))?;
            sources.push((w.name.to_string(), p));
        }
    }
    if cli.raw && cli.evidence.is_some() {
        return Err(
            "--evidence needs the instrumented pipeline; it cannot be combined with --raw".into(),
        );
    }
    let mut targets: Vec<FleetTarget> = Vec::new();
    let mut evidence_inputs: Vec<(String, chimera::Analysis)> = Vec::new();
    for (name, program) in sources {
        if cli.raw {
            targets.push(FleetTarget::raw(&name, program));
        } else {
            let analysis = analyze(&program, &pipeline);
            let statics = analysis.races.pairs.iter().map(|p| (p.a, p.b)).collect();
            targets.push(FleetTarget {
                name: name.clone(),
                program: analysis.instrumented.clone(),
                cross: Some((analysis.program.clone(), statics)),
                expect_divergence: false,
            });
            if cli.evidence.is_some() {
                evidence_inputs.push((name, analysis));
            }
        }
    }

    let cfg = FleetConfig {
        strategies,
        seeds: (1..=cli.seeds.max(1)).collect(),
        exec: ExecConfig {
            seed: cli.seed,
            ..ExecConfig::default()
        },
        check_drd: cli.drd,
        check_determinism: cli.check_determinism,
        jobs: cli.jobs,
        batch: 0,
        max_cells: cli.max_cells,
        dir: cli.dir.as_ref().map(std::path::PathBuf::from),
        resume: cli.resume,
    };

    let started = std::time::Instant::now();
    let run = run_fleet(&targets, &cfg)?;
    let elapsed = started.elapsed();
    let report = &run.report;

    for t in &report.targets {
        for st in &t.strategies {
            println!(
                "{:>12} {:>13}: {} cell(s), {} divergence(s), {} violation(s), \
                 {} nondeterministic, {} distinct order(s) ({} prefix(es))",
                t.name,
                st.strategy,
                st.cells,
                st.divergences,
                st.violations,
                st.nondeterministic,
                st.distinct_orders,
                st.distinct_prefixes,
            );
        }
    }
    println!(
        "grid {} cell(s): {} covered, {} executed now, {} journal hit(s), {} budget-deferred",
        report.grid, report.covered, run.executed, run.journal_hits, run.truncated
    );
    println!(
        "coverage: {} distinct order(s), {} distinct prefix(es); corpus {} (+{} this run); \
         journal {}",
        report.distinct_orders,
        report.distinct_prefixes,
        report.corpus_total,
        run.corpus_added,
        run.journal_total
    );
    if report.flagged > 0 {
        println!("flagged {} cell(s) for the corpus triage queue", report.flagged);
    }
    // Wall-clock throughput goes to stderr: stdout stays a deterministic
    // function of the grid so resumed runs can be diffed against one-shot.
    let secs = elapsed.as_secs_f64();
    if run.executed > 0 && secs > 0.0 {
        eprintln!(
            "executed {} cell(s) in {:.2}s ({:.1} cells/s, jobs={})",
            run.executed,
            secs,
            run.executed as f64 / secs,
            cli.jobs
        );
    }

    if let Some(out) = &cli.out {
        std::fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }

    // Evidence export runs its own gather sweep (the fleet journal stores
    // only counts, not pair identities), written even when the grid fails
    // — unclean cells are themselves evidence.
    if let Some(dir) = &cli.evidence {
        let dir = std::path::PathBuf::from(dir);
        let gcfg = chimera::GatherConfig {
            strategies: cfg.strategies.clone(),
            seeds: cfg.seeds.clone(),
            exec: cfg.exec,
            jobs: cfg.jobs,
        };
        for (name, analysis) in &evidence_inputs {
            let statics: Vec<_> = analysis.races.pairs.iter().map(|p| (p.a, p.b)).collect();
            let ev = chimera::gather_evidence(
                name,
                &analysis.program,
                &analysis.instrumented,
                &statics,
                &gcfg,
            );
            let path = ev.save(&dir)?;
            println!(
                "{name:>12} evidence: {} cell(s), {} static pair(s), {} confirmed racy -> {}",
                ev.cells.len(),
                ev.static_pairs.len(),
                ev.confirmed_racy.len(),
                path.display()
            );
        }
    }

    if !report.passed() {
        return Err("fleet found unexpected divergences, violations, or nondeterminism".into());
    }
    println!("fleet passed: every instrumented cell replayed deterministically");
    Ok(())
}

/// `chimera run --json`: one JSON object with the execution result, the
/// VM strategy counters (how the flat engine actually ran the program),
/// and the decode-time fusion table that drove the superinstruction pass.
fn run_json(
    program: &chimera_minic::ir::Program,
    r: &chimera_runtime::ExecResult,
    exec: &ExecConfig,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"outcome\": \"{:?}\",\n", r.outcome));
    s.push_str(&format!("  \"cycles\": {},\n", r.makespan));
    s.push_str(&format!("  \"state_hash\": \"{:016x}\",\n", r.state_hash));
    s.push_str(&format!("  \"parallelism\": {},\n", exec.parallelism));
    let out: Vec<String> = r
        .output
        .iter()
        .map(|(t, v)| format!("[{}, {}]", t.0, v))
        .collect();
    s.push_str(&format!("  \"output\": [{}],\n", out.join(", ")));
    s.push_str(&format!(
        "  \"stats\": {{ \"instrs\": {}, \"mem_ops\": {}, \"sync_ops\": {}, \"syscalls\": {}, \"threads\": {} }},\n",
        r.stats.instrs, r.stats.mem_ops, r.stats.sync_ops, r.stats.syscalls, r.stats.threads
    ));
    let vm = &r.stats.vm;
    s.push_str(&format!(
        "  \"vm\": {{ \"fused_ops\": {}, \"batch_runs\": {}, \"batched_ops\": {}, \
         \"spec_rounds\": {}, \"spec_segments\": {}, \"spec_ops\": {}, \
         \"spec_discards\": {}, \"par_rounds\": {} }},\n",
        vm.fused_ops,
        vm.batch_runs,
        vm.batched_ops,
        vm.spec_rounds,
        vm.spec_segments,
        vm.spec_ops,
        vm.spec_discards,
        vm.par_rounds
    ));
    let fusion = chimera_runtime::fusion_summary(program);
    s.push_str(&format!(
        "  \"fusion\": {{ \"fused_sites\": {}, \"patterns\": [",
        fusion.fused_sites
    ));
    let pats: Vec<String> = fusion
        .rows
        .iter()
        .map(|(a, b, pairs, fused)| {
            format!("{{ \"pair\": \"{a}+{b}\", \"static_pairs\": {pairs}, \"fused_sites\": {fused} }}")
        })
        .collect();
    s.push_str(&pats.join(", "));
    s.push_str("] }\n}\n");
    s
}

fn report_exec(r: &chimera_runtime::ExecResult) {
    println!("outcome : {:?}", r.outcome);
    println!("cycles  : {}", r.makespan);
    let main_out = r.output_of(ThreadId(0));
    if !main_out.is_empty() {
        println!("output  : {main_out:?}");
    }
    for t in 1..r.stats.threads {
        let o = r.output_of(ThreadId(t as u32));
        if !o.is_empty() {
            println!("output T{t}: {o:?}");
        }
    }
}
