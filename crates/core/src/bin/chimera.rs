//! The `chimera` command-line tool: run the pipeline on MiniC files.
//!
//! ```text
//! chimera races <file.mc>                      # static race report
//! chimera plan <file.mc>                       # instrumentation plan
//! chimera run <file.mc> [--seed N]             # execute (uninstrumented)
//! chimera record <file.mc> -o <log> [--seed N] # instrument + record
//! chimera replay <file.mc> <log> [--seed N]    # replay from a log file
//! chimera ir <file.mc>                         # dump the IR
//! chimera drd <file.mc> [--instrumented]       # dynamic race report
//! ```
//!
//! `record` and `replay` must agree on the file and options so the
//! instrumented programs match; the log's byte format is
//! [`chimera_replay::ReplayLogs::to_bytes`].

use chimera::{analyze, OptSet, PipelineConfig};
use chimera_minic::compile;
use chimera_runtime::{execute, ExecConfig, ThreadId};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("chimera: {msg}");
            ExitCode::from(1)
        }
    }
}

struct Cli {
    command: String,
    file: Option<String>,
    extra: Option<String>,
    out: Option<String>,
    seed: u64,
    naive: bool,
    opt: bool,
    instrumented: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(
            "usage: chimera <races|plan|run|record|replay|ir|drd> <file.mc> [...]".into(),
        );
    }
    let mut cli = Cli {
        command: argv[0].clone(),
        file: None,
        extra: None,
        out: None,
        seed: 0,
        naive: false,
        opt: false,
        instrumented: false,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                cli.seed = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
                i += 2;
            }
            "-o" | "--out" => {
                cli.out = Some(argv.get(i + 1).cloned().ok_or("-o needs a path")?);
                i += 2;
            }
            "--naive" => {
                cli.naive = true;
                i += 1;
            }
            "--opt" => {
                cli.opt = true;
                i += 1;
            }
            "--instrumented" => {
                cli.instrumented = true;
                i += 1;
            }
            arg => {
                if cli.file.is_none() {
                    cli.file = Some(arg.to_string());
                } else if cli.extra.is_none() {
                    cli.extra = Some(arg.to_string());
                } else {
                    return Err(format!("unexpected argument '{arg}'"));
                }
                i += 1;
            }
        }
    }
    Ok(cli)
}

fn run() -> Result<(), String> {
    let cli = parse_cli()?;
    let path = cli.file.clone().ok_or("missing <file.mc> argument")?;
    let source =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut program = compile(&source).map_err(|e| format!("{path}: {e}"))?;
    if cli.opt {
        let n = chimera_minic::opt::optimize(&mut program);
        eprintln!("optimizer: {n} instruction(s) simplified or removed");
    }
    let program = program;

    let opts = if cli.naive {
        OptSet::naive()
    } else {
        OptSet::all()
    };
    let exec = ExecConfig {
        seed: cli.seed,
        ..ExecConfig::default()
    };

    match cli.command.as_str() {
        "races" => {
            let report = chimera_relay::detect_races(&program);
            print!("{}", report.describe(&program));
            println!("{} race pair(s)", report.pairs.len());
            Ok(())
        }
        "ir" => {
            print!("{}", chimera_minic::pretty::program_to_string(&program));
            Ok(())
        }
        "plan" => {
            let analysis = analyze(
                &program,
                &PipelineConfig {
                    opts,
                    ..PipelineConfig::default()
                },
            );
            let p = &analysis.plan;
            println!("race pairs      : {}", analysis.races.pairs.len());
            println!("weak-locks      : {}", p.n_weak_locks);
            println!("cliques         : {}", p.stats.cliques);
            println!(
                "sites           : {} function, {} loop, {} bb, {} instruction",
                p.func_locks.values().map(Vec::len).sum::<usize>(),
                p.loop_locks.values().map(Vec::len).sum::<usize>(),
                p.bb_locks.values().map(Vec::len).sum::<usize>(),
                p.instr_locks.values().map(Vec::len).sum::<usize>(),
            );
            for (f, locks) in &p.func_locks {
                println!(
                    "  func-lock {:?} on {}",
                    locks,
                    analysis.program.funcs[f.index()].name
                );
            }
            Ok(())
        }
        "run" => {
            let r = execute(&program, &exec);
            report_exec(&r);
            Ok(())
        }
        "record" => {
            let out = cli.out.clone().ok_or("record needs -o <logfile>")?;
            let analysis = analyze(
                &program,
                &PipelineConfig {
                    opts,
                    ..PipelineConfig::default()
                },
            );
            let rec = chimera_replay::record(&analysis.instrumented, &exec);
            report_exec(&rec.result);
            let bytes = rec.logs.to_bytes();
            std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
            let (ikb, okb) = rec.logs.compressed_sizes();
            println!(
                "wrote {out}: {} bytes raw (est. compressed: input {ikb} B + order {okb} B)",
                bytes.len()
            );
            Ok(())
        }
        "replay" => {
            let log_path = cli.extra.clone().ok_or("replay needs <logfile>")?;
            let bytes = std::fs::read(&log_path)
                .map_err(|e| format!("cannot read {log_path}: {e}"))?;
            let logs = chimera_replay::ReplayLogs::from_bytes(&bytes)
                .map_err(|e| format!("{log_path}: {e}"))?;
            let analysis = analyze(
                &program,
                &PipelineConfig {
                    opts,
                    ..PipelineConfig::default()
                },
            );
            let rep = chimera_replay::replay(&analysis.instrumented, &logs, &exec);
            report_exec(&rep.result);
            if rep.complete {
                println!("replay complete: every logged event consumed");
                Ok(())
            } else {
                Err("replay diverged (did record/replay use the same file and options?)"
                    .into())
            }
        }
        "drd" => {
            // Dynamic (FastTrack) race detection over one execution. With
            // --instrumented the weak-lock-instrumented program runs
            // instead — the DRF-equivalence check: it should be race-free.
            let (target, label) = if cli.instrumented {
                let analysis = analyze(
                    &program,
                    &PipelineConfig {
                        opts,
                        ..PipelineConfig::default()
                    },
                );
                (analysis.instrumented.clone(), "instrumented")
            } else {
                (program.clone(), "uninstrumented")
            };
            let run = chimera::drd::detect(&target, &exec);
            report_exec(&run.result);
            print!("{}", run.report.describe(&target));
            println!(
                "{label}: {} racy pair(s), {} dynamic race observation(s)",
                run.report.pairs.len(),
                run.report.races
            );
            if run.report.is_race_free() {
                println!("execution is data-race-free");
            }
            Ok(())
        }
        other => Err(format!(
            "unknown command '{other}' (races|plan|run|record|replay|ir|drd)"
        )),
    }
}

fn report_exec(r: &chimera_runtime::ExecResult) {
    println!("outcome : {:?}", r.outcome);
    println!("cycles  : {}", r.makespan);
    let main_out = r.output_of(ThreadId(0));
    if !main_out.is_empty() {
        println!("output  : {main_out:?}");
    }
    for t in 1..r.stats.threads {
        let o = r.output_of(ThreadId(t as u32));
        if !o.is_empty() {
            println!("output T{t}: {o:?}");
        }
    }
}
