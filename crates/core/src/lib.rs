//! **Chimera** — hybrid program analysis for deterministic record & replay
//! (reproduction of Lee, Chen, Flinn, Narayanasamy, PLDI 2012).
//!
//! Chimera makes an arbitrary multithreaded program deterministically
//! replayable by transforming it into a *data-race-free-under-weak-locks*
//! program: a sound static race detector finds every potential race, and
//! each one is guarded by a weak-lock whose granularity is chosen by
//! profiling (function-level clique locks for never-concurrent code) and
//! symbolic bounds analysis (ranged loop-locks for partitioned array
//! work). Recording then only needs inputs, program-synchronization order,
//! and weak-lock order.
//!
//! This crate is the facade over the workspace:
//!
//! | layer | crate |
//! |---|---|
//! | C-like front end + IR | [`chimera_minic`] |
//! | points-to analyses | [`chimera_pta`] |
//! | static race detector | [`chimera_relay`] |
//! | symbolic bounds | [`chimera_bounds`] |
//! | profiler | [`chimera_profile`] |
//! | instrumenter | [`chimera_instrument`] |
//! | virtual machine | [`chimera_runtime`] |
//! | record/replay | [`chimera_replay`] |
//! | benchmarks | [`chimera_workloads`] |
//! | fleet orchestrator | [`chimera_fleet`] |
//! | evidence-driven demotion | [`chimera_plan`] |
//!
//! # Quickstart
//!
//! ```
//! use chimera::{analyze, measure, PipelineConfig};
//! use chimera_minic::compile;
//! use chimera_runtime::ExecConfig;
//!
//! // A racy program: unsynchronized read-modify-write on `g`.
//! let program = compile(
//!     "int g;
//!      void w(int v) { int i; int x;
//!          for (i = 0; i < 50; i = i + 1) { x = g; g = x + v; } }
//!      int main() { int t; t = spawn(w, 1); w(2); join(t); print(g); return 0; }",
//! )
//! .unwrap();
//!
//! // Detect races, profile, instrument with weak-locks...
//! let analysis = analyze(&program, &PipelineConfig::default());
//! assert!(analysis.instrumented.weak_locks > 0);
//!
//! // ...then record once and replay under different timing: identical.
//! let m = measure(&analysis, &ExecConfig::default(), 42);
//! assert!(m.deterministic);
//! ```

#![warn(missing_docs)]

pub mod experiment;
pub mod explore;
pub mod pipeline;

pub use explore::{
    explore, explore_uninstrumented, ExploreConfig, ExploreReport, ScheduleObserver, SeedOutcome,
    StrategyReport,
};
pub use experiment::{
    ablation_row, analyze_workload, fig5_overheads, fig6_fractions, fig7_breakdown,
    fig8_scalability, figure5_configs, profile_sensitivity, profile_workload, table2_row,
    threshold_sweep, AblationRow, Breakdown, Table2Row,
};
pub use pipeline::{
    analyze, analyze_with_profile, certify_drf, measure, measure_trials, Analysis,
    DrfCertificate, Measurement, PipelineConfig, TrialSummary,
};

pub use chimera_fleet::{
    run_fleet, CellKey, CellOutcome, Corpus, FleetConfig, FleetReport, FleetRun, FleetTarget,
    Interest, Journal,
};

pub use chimera_plan::{
    apply_plan, demote, gather_evidence, verify_under_plan, CertifiedPlan, Evidence, GatherConfig,
    Thresholds,
};

// Re-export the member crates for one-stop access.
pub use chimera_bounds as bounds;
pub use chimera_drd as drd;
pub use chimera_fleet as fleet;
pub use chimera_instrument as instrument;
pub use chimera_instrument::OptSet;
pub use chimera_minic as minic;
pub use chimera_plan as planning;
pub use chimera_profile as profile;
pub use chimera_pta as pta;
pub use chimera_relay as relay;
pub use chimera_replay as replay;
pub use chimera_runtime as runtime;
pub use chimera_workloads as workloads;
