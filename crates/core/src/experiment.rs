//! The evaluation harness: everything needed to regenerate the paper's
//! Table 1, Table 2, and Figures 5–8 on the MiniC workloads.

use crate::pipeline::{analyze_with_profile, measure_trials, Analysis, PipelineConfig};
use chimera_instrument::OptSet;
use chimera_minic::ir::LockGranularity;
use chimera_profile::{profile_runs, ProfileData};
use chimera_runtime::ExecConfig;
use chimera_workloads::Workload;
use std::collections::BTreeMap;

/// The paper's four optimization configurations, labeled as in Figure 5.
pub fn figure5_configs() -> Vec<(&'static str, OptSet)> {
    vec![
        ("instr", OptSet::naive()),
        ("inst+func", OptSet::func_only()),
        ("inst+loop", OptSet::loop_only()),
        ("inst+bb+loop+func", OptSet::all()),
    ]
}

/// Profile a workload the way the paper does (§7.1): several runs over
/// *profile-environment* inputs that differ from the evaluation input,
/// merged into one [`ProfileData`].
pub fn profile_workload(w: &Workload, runs: u32, exec: &ExecConfig) -> ProfileData {
    let mut merged = ProfileData::default();
    for v in 0..runs {
        let params = w.profile_params(v);
        let program = w
            .compile(&params)
            .expect("workload templates are valid for profile params");
        merged.merge(&profile_runs(
            &program,
            exec,
            &[1000 + v as u64 * 31, 2000 + v as u64 * 17],
        ));
    }
    merged
}

/// Analyze one workload at its evaluation input.
pub fn analyze_workload(
    w: &Workload,
    workers: u32,
    opts: &OptSet,
    profile_runs_count: u32,
    exec: &ExecConfig,
) -> Analysis {
    let profile = profile_workload(w, profile_runs_count, exec);
    let program = w
        .compile(&w.eval_params(workers))
        .expect("workload templates are valid for eval params");
    let cfg = PipelineConfig {
        opts: opts.clone(),
        profile_seeds: Vec::new(),
        exec: *exec,
    };
    analyze_with_profile(&program, profile, &cfg)
}

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Default)]
pub struct Table2Row {
    /// Workload name.
    pub name: String,
    /// DRF log: recorded system-call/input events.
    pub syscall_logs: u64,
    /// DRF log: program synchronization order entries.
    pub sync_logs: u64,
    /// Weak-lock log entries at instruction granularity.
    pub instr_logs: u64,
    /// Weak-lock log entries at basic-block granularity.
    pub bb_logs: u64,
    /// Weak-lock log entries at loop granularity.
    pub loop_logs: u64,
    /// Weak-lock log entries at function granularity.
    pub func_logs: u64,
    /// Baseline (uninstrumented) virtual runtime.
    pub original_time: u64,
    /// Recording virtual runtime.
    pub record_time: u64,
    /// Mean recording overhead (x).
    pub record_overhead: f64,
    /// Mean replay overhead (x).
    pub replay_overhead: f64,
    /// Estimated compressed input-log size in bytes.
    pub input_log_bytes: usize,
    /// Estimated compressed order-log size in bytes.
    pub order_log_bytes: usize,
    /// Every trial replayed deterministically.
    pub deterministic: bool,
}

/// Evaluate one workload into a Table 2 row (all optimizations on).
pub fn table2_row(
    w: &Workload,
    workers: u32,
    trials: u32,
    profile_runs_count: u32,
    exec: &ExecConfig,
) -> Table2Row {
    let analysis = analyze_workload(w, workers, &OptSet::all(), profile_runs_count, exec);
    let summary = measure_trials(&analysis, exec, trials);
    let m = summary.last.as_ref().expect("trials >= 1");
    let logs = &m.recording.logs;
    let (input_log_bytes, order_log_bytes) = logs.compressed_sizes();
    Table2Row {
        name: w.name.to_string(),
        syscall_logs: logs.input_log_entries,
        sync_logs: logs.sync_log_entries,
        instr_logs: logs.weak_entries(LockGranularity::Instruction),
        bb_logs: logs.weak_entries(LockGranularity::BasicBlock),
        loop_logs: logs.weak_entries(LockGranularity::Loop),
        func_logs: logs.weak_entries(LockGranularity::Function),
        original_time: m.baseline.makespan,
        record_time: m.recording.result.makespan,
        record_overhead: summary.record_overhead,
        replay_overhead: summary.replay_overhead,
        input_log_bytes,
        order_log_bytes,
        deterministic: summary.all_deterministic,
    }
}

/// Figure 5: recording overhead per optimization configuration.
pub fn fig5_overheads(
    w: &Workload,
    workers: u32,
    trials: u32,
    profile_runs_count: u32,
    exec: &ExecConfig,
) -> BTreeMap<&'static str, f64> {
    figure5_configs()
        .into_iter()
        .map(|(label, opts)| {
            let a = analyze_workload(w, workers, &opts, profile_runs_count, exec);
            let s = measure_trials(&a, exec, trials);
            (label, s.record_overhead)
        })
        .collect()
}

/// Figure 6: dynamic weak-lock operations as a fraction of dynamic memory
/// operations, per optimization configuration.
pub fn fig6_fractions(
    w: &Workload,
    workers: u32,
    profile_runs_count: u32,
    exec: &ExecConfig,
) -> BTreeMap<&'static str, f64> {
    figure5_configs()
        .into_iter()
        .map(|(label, opts)| {
            let a = analyze_workload(w, workers, &opts, profile_runs_count, exec);
            let s = measure_trials(&a, exec, 1);
            let stats = &s.last.as_ref().expect("one trial").recording.result.stats;
            (label, stats.weak_op_fraction())
        })
        .collect()
}

/// Figure 7 breakdown for one workload: per-granularity logging cycles and
/// contention cycles. Contention is measured the paper's way: the
/// difference between a recording with real weak-lock semantics and one
/// where every acquire succeeds immediately.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    /// Logging cycles charged per granularity.
    pub log_cycles: BTreeMap<LockGranularity, u64>,
    /// Contention (blocked) cycles per granularity.
    pub wait_cycles: BTreeMap<LockGranularity, u64>,
    /// Total makespan with real semantics.
    pub makespan: u64,
    /// Makespan with always-succeeding acquires.
    pub makespan_no_contention: u64,
}

/// Measure the Figure 7 breakdown.
pub fn fig7_breakdown(
    w: &Workload,
    workers: u32,
    profile_runs_count: u32,
    exec: &ExecConfig,
) -> Breakdown {
    let a = analyze_workload(w, workers, &OptSet::all(), profile_runs_count, exec);
    let seed = 100;
    let real = chimera_replay::record(
        &a.instrumented,
        &ExecConfig {
            seed,
            ..*exec
        },
    );
    let free = chimera_replay::record(
        &a.instrumented,
        &ExecConfig {
            seed,
            weak_always_succeed: true,
            ..*exec
        },
    );
    Breakdown {
        log_cycles: real.result.stats.weak_log_cycles.clone(),
        wait_cycles: real.result.stats.weak_wait.clone(),
        makespan: real.result.makespan,
        makespan_no_contention: free.result.makespan,
    }
}

/// Figure 8: overhead at 2, 4, and 8 worker threads.
pub fn fig8_scalability(
    w: &Workload,
    trials: u32,
    profile_runs_count: u32,
    exec: &ExecConfig,
) -> Vec<(u32, f64)> {
    [2u32, 4, 8]
        .into_iter()
        .map(|workers| {
            let a = analyze_workload(w, workers, &OptSet::all(), profile_runs_count, exec);
            let s = measure_trials(&a, exec, trials);
            (workers, s.record_overhead)
        })
        .collect()
}

/// One row of the ablation study (DESIGN.md §5): Chimera vs the
/// LEAP-style baseline, and the race-report sizes under the two points-to
/// configurations.
#[derive(Debug, Clone, Default)]
pub struct AblationRow {
    /// Workload name.
    pub name: String,
    /// Race pairs with the paper's Steensgaard aliasing.
    pub races_steensgaard: usize,
    /// Race pairs with inclusion-based (Andersen) aliasing.
    pub races_andersen: usize,
    /// Chimera recording overhead (all optimizations).
    pub chimera_overhead: f64,
    /// LEAP-style baseline recording overhead (every shared access,
    /// instruction granularity, no race detection).
    pub leap_overhead: f64,
    /// Dynamic weak-lock acquisitions under Chimera.
    pub chimera_ops: u64,
    /// Dynamic weak-lock acquisitions under the LEAP baseline.
    pub leap_ops: u64,
}

/// Run the ablation comparisons for one workload.
pub fn ablation_row(
    w: &Workload,
    workers: u32,
    profile_runs_count: u32,
    exec: &ExecConfig,
) -> AblationRow {
    let program = w
        .compile(&w.eval_params(workers))
        .expect("workload templates are valid");
    let races_s = chimera_relay::detect_races(&program);
    let races_a = chimera_relay::detect_races_with_andersen(&program);

    let analysis = analyze_workload(w, workers, &OptSet::all(), profile_runs_count, exec);
    let chimera = crate::pipeline::measure(&analysis, exec, 100);

    let leap_plan = chimera_instrument::plan_leap_baseline(&program);
    let leap_prog = chimera_instrument::apply(&program, &leap_plan);
    let base = chimera_runtime::execute(
        &program,
        &ExecConfig {
            seed: 100,
            ..*exec
        },
    );
    let leap_rec = chimera_replay::record(
        &leap_prog,
        &ExecConfig {
            seed: 100,
            ..*exec
        },
    );
    let leap_overhead = if base.makespan == 0 {
        0.0
    } else {
        leap_rec.result.makespan as f64 / base.makespan as f64
    };
    AblationRow {
        name: w.name.to_string(),
        races_steensgaard: races_s.pairs.len(),
        races_andersen: races_a.pairs.len(),
        chimera_overhead: chimera.record_overhead,
        leap_overhead,
        chimera_ops: chimera.recording.result.stats.total_weak_acquires(),
        leap_ops: leap_rec.result.stats.total_weak_acquires(),
    }
}

/// §5.3's loop-body-threshold sensitivity: recording overhead as the
/// threshold sweeps (the knob that trades per-iteration lock operations
/// against loop serialization).
pub fn threshold_sweep(
    w: &Workload,
    workers: u32,
    thresholds: &[f64],
    exec: &ExecConfig,
) -> Vec<(f64, f64)> {
    thresholds
        .iter()
        .map(|&t| {
            let opts = OptSet {
                loop_body_threshold: t,
                ..OptSet::all()
            };
            let a = analyze_workload(w, workers, &opts, 4, exec);
            let s = measure_trials(&a, exec, 2);
            (t, s.record_overhead)
        })
        .collect()
}

/// §7.3's profile-sensitivity study: concurrent-pair count as a function
/// of the number of profile runs (saturates after a handful).
pub fn profile_sensitivity(
    w: &Workload,
    max_runs: u32,
    exec: &ExecConfig,
) -> Vec<(u32, usize)> {
    let mut merged = ProfileData::default();
    let mut out = Vec::new();
    for v in 0..max_runs {
        let params = w.profile_params(v);
        let program = w.compile(&params).expect("valid profile params");
        merged.merge(&profile_runs(&program, exec, &[5000 + v as u64 * 13]));
        out.push((v + 1, merged.concurrent.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_workloads::by_name;

    fn fast_exec() -> ExecConfig {
        ExecConfig::default()
    }

    #[test]
    fn table2_row_for_radix_is_sane() {
        let w = by_name("radix").unwrap();
        let row = table2_row(&w, 2, 1, 2, &fast_exec());
        assert!(row.deterministic, "radix must replay deterministically");
        assert!(row.record_overhead >= 1.0);
        assert!(row.loop_logs > 0, "radix is the loop-lock showcase: {row:?}");
        assert!(row.syscall_logs >= 1);
    }

    #[test]
    fn fig5_ordering_naive_worst_for_apache() {
        let w = by_name("apache").unwrap();
        let o = fig5_overheads(&w, 2, 1, 2, &fast_exec());
        assert!(
            o["instr"] >= o["inst+bb+loop+func"],
            "naive {} vs all {}",
            o["instr"],
            o["inst+bb+loop+func"]
        );
    }

    #[test]
    fn fig6_fraction_drops_with_optimizations() {
        let w = by_name("radix").unwrap();
        let f = fig6_fractions(&w, 2, 2, &fast_exec());
        assert!(f["instr"] > f["inst+bb+loop+func"]);
        assert!(f["instr"] > 0.0);
    }

    #[test]
    fn fig7_breakdown_measures_contention() {
        let w = by_name("fft").unwrap();
        let b = fig7_breakdown(&w, 2, 2, &fast_exec());
        assert!(b.makespan >= b.makespan_no_contention);
    }

    #[test]
    fn ablation_row_shows_chimera_beating_leap_on_ops() {
        let w = by_name("radix").unwrap();
        let row = ablation_row(&w, 2, 2, &fast_exec());
        assert!(
            row.leap_ops > row.chimera_ops,
            "LEAP instruments more: {row:?}"
        );
        assert!(row.races_andersen <= row.races_steensgaard);
    }

    #[test]
    fn profile_sensitivity_is_monotone() {
        let w = by_name("pfscan").unwrap();
        let pts = profile_sensitivity(&w, 4, &fast_exec());
        for win in pts.windows(2) {
            assert!(win[1].1 >= win[0].1, "pair count must be monotone: {pts:?}");
        }
    }
}
