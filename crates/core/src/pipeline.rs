//! The end-to-end Chimera pipeline (the paper's Figure 1).
//!
//! ```text
//! program --RELAY--> race pairs --+--> profiling: non-concurrent funcs
//!                                 +--> symbolic bounds for racy loops
//!                                 v
//!                     weak-lock plan --> instrumented program
//!                                 v
//!                record (log inputs + sync + weak-lock order) --> replay
//! ```

use chimera_drd::{detect, DrfReport};
use chimera_instrument::{instrument, OptSet, Plan};
use chimera_minic::ir::{AccessId, Program};
use chimera_profile::{profile_runs, ProfileData};
use chimera_relay::{detect_races, RaceReport};
use chimera_replay::{record, replay, verify_determinism, Recording, ReplayRun};
use chimera_runtime::{execute, ExecConfig, ExecResult};
use std::collections::BTreeSet;

/// Configuration for [`analyze`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Optimization set (Figure 5's four configurations).
    pub opts: OptSet,
    /// Seeds for profile runs on the program itself (the paper used 20
    /// runs; pass more seeds for more coverage).
    pub profile_seeds: Vec<u64>,
    /// Base execution configuration (costs, I/O model).
    pub exec: ExecConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            opts: OptSet::all(),
            profile_seeds: (1..=5).collect(),
            exec: ExecConfig::default(),
        }
    }
}

/// Everything the static+profile side of Chimera produces for a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The original program.
    pub program: Program,
    /// The weak-lock-instrumented program.
    pub instrumented: Program,
    /// RELAY's race report.
    pub races: RaceReport,
    /// Merged profile facts.
    pub profile: ProfileData,
    /// The instrumentation plan.
    pub plan: Plan,
}

/// Run static race detection, profiling, planning, and instrumentation.
///
/// Profiling runs the program itself over `profile_seeds`; to profile
/// separate input variants (as Table 1 does), merge their
/// [`ProfileData`] first and call [`analyze_with_profile`].
pub fn analyze(program: &Program, cfg: &PipelineConfig) -> Analysis {
    let profile = profile_runs(program, &cfg.exec, &cfg.profile_seeds);
    analyze_with_profile(program, profile, cfg)
}

/// Like [`analyze`] but with externally collected profile data (e.g.
/// merged over several input variants of the same source).
pub fn analyze_with_profile(
    program: &Program,
    profile: ProfileData,
    cfg: &PipelineConfig,
) -> Analysis {
    let races = detect_races(program);
    let (instrumented, plan) = instrument(program, &races, &profile, &cfg.opts);
    Analysis {
        program: program.clone(),
        instrumented,
        races,
        profile,
        plan,
    }
}

/// One record/replay measurement at a given seed.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Uninstrumented, unlogged run (the "original time").
    pub baseline: ExecResult,
    /// The recording (instrumented + all logging costs).
    pub recording: Recording,
    /// The replay, run under a different seed.
    pub replay: ReplayRun,
    /// `recording.makespan / baseline.makespan`.
    pub record_overhead: f64,
    /// `replay.makespan / baseline.makespan`.
    pub replay_overhead: f64,
    /// Did the replay reproduce the recording exactly?
    pub deterministic: bool,
}

/// Record the instrumented program and replay it under a different seed,
/// comparing against the uninstrumented baseline.
pub fn measure(analysis: &Analysis, exec: &ExecConfig, seed: u64) -> Measurement {
    let base_cfg = ExecConfig {
        seed,
        ..*exec
    };
    let baseline = execute(&analysis.program, &base_cfg);
    let recording = record(&analysis.instrumented, &base_cfg);
    let replay_cfg = ExecConfig {
        seed: seed.wrapping_mul(0x9e3779b9).wrapping_add(1),
        ..*exec
    };
    let rep = replay(&analysis.instrumented, &recording.logs, &replay_cfg);
    let deterministic =
        rep.complete && verify_determinism(&recording.result, &rep.result).equivalent;
    let record_overhead = ratio(recording.result.makespan, baseline.makespan);
    let replay_overhead = ratio(rep.result.makespan, baseline.makespan);
    Measurement {
        baseline,
        recording,
        replay: rep,
        record_overhead,
        replay_overhead,
        deterministic,
    }
}

/// Mean record/replay overheads over several trials (the paper reports the
/// mean of five).
#[derive(Debug, Clone, Default)]
pub struct TrialSummary {
    /// Mean recording overhead (x).
    pub record_overhead: f64,
    /// Mean replay overhead (x).
    pub replay_overhead: f64,
    /// All trials replayed deterministically.
    pub all_deterministic: bool,
    /// The last trial's full measurement (for logs/stats inspection).
    pub last: Option<Measurement>,
}

/// Run `trials` seeded measurements and average.
///
/// Trials are independent, so they run in parallel via
/// [`chimera_runtime::par_map`] (set `CHIMERA_SERIAL=1` to force a serial
/// loop). The summary folds in trial order, so the floating-point sums —
/// and therefore the reported means — are bit-identical to the serial
/// loop's.
pub fn measure_trials(analysis: &Analysis, exec: &ExecConfig, trials: u32) -> TrialSummary {
    let seeds: Vec<u64> = (0..trials.max(1)).map(|t| 100 + t as u64 * 7).collect();
    let measurements =
        chimera_runtime::par_map(&seeds, |&seed| measure(analysis, exec, seed));
    let mut sum_rec = 0.0;
    let mut sum_rep = 0.0;
    let mut all_det = true;
    let mut last = None;
    for m in measurements {
        sum_rec += m.record_overhead;
        sum_rep += m.replay_overhead;
        all_det &= m.deterministic;
        last = Some(m);
    }
    let n = seeds.len() as f64;
    TrialSummary {
        record_overhead: sum_rec / n,
        replay_overhead: sum_rep / n,
        all_deterministic: all_det,
        last,
    }
}

/// The DRF-equivalence certificate for one analyzed program, plus the
/// dynamic-vs-static precision join.
///
/// Chimera's replay correctness rests on the instrumented program being
/// data-race-free (every surviving race is serialized by a weak-lock), so
/// that logging the sync order alone pins down the execution. This stage
/// checks the claim dynamically: the uninstrumented and instrumented
/// programs each run under the FastTrack detector across several seeds,
/// and the certificate *holds* iff no instrumented run shows a race.
///
/// Because dynamic races carry static [`AccessId`] provenance, the same
/// runs double as a soundness/precision probe of RELAY: every dynamic
/// pair must appear among the static candidates (`missed` is empty), and
/// the fraction of static candidates never dynamically confirmed is an
/// upper bound estimate of the static false-positive ratio.
#[derive(Debug, Clone)]
pub struct DrfCertificate {
    /// Seeds the certificate covers.
    pub seeds: Vec<u64>,
    /// Union of dynamic races on the *uninstrumented* program.
    pub uninstrumented: DrfReport,
    /// Union of dynamic races on the *instrumented* program (empty iff
    /// the certificate holds).
    pub instrumented: DrfReport,
    /// Dynamic pairs also predicted statically.
    pub joined: usize,
    /// Dynamic pairs RELAY did *not* predict — a static soundness bug if
    /// nonempty.
    pub missed: Vec<(AccessId, AccessId)>,
    /// Static candidates never dynamically confirmed on these seeds.
    pub static_only: usize,
    /// `static_only / static total` (0 when there are no static pairs):
    /// the observed upper bound on RELAY's false-positive ratio.
    pub false_positive_ratio: f64,
}

impl DrfCertificate {
    /// Did every instrumented run come out race-free?
    pub fn holds(&self) -> bool {
        self.instrumented.is_race_free()
    }

    /// Is every dynamic race statically predicted (RELAY sound on these
    /// runs)?
    pub fn static_sound(&self) -> bool {
        self.missed.is_empty()
    }
}

/// Run the DRF-equivalence stage: detect races dynamically on the
/// uninstrumented and instrumented programs across `seeds` and join the
/// uninstrumented findings against RELAY's static candidates.
///
/// Seeds are independent, so the 2×`seeds` detector runs fan out via
/// [`chimera_runtime::par_map`] (`CHIMERA_SERIAL=1` forces a serial
/// loop); reports merge in seed order, so the result is identical either
/// way.
pub fn certify_drf(analysis: &Analysis, exec: &ExecConfig, seeds: &[u64]) -> DrfCertificate {
    let runs = chimera_runtime::par_map(seeds, |&seed| {
        let cfg = ExecConfig {
            seed,
            ..*exec
        };
        let u = detect(&analysis.program, &cfg);
        let i = detect(&analysis.instrumented, &cfg);
        (u.report, i.report)
    });
    let mut uninstrumented = DrfReport::default();
    let mut instrumented = DrfReport::default();
    for (u, i) in &runs {
        uninstrumented.merge(u);
        instrumented.merge(i);
    }
    let statics: BTreeSet<(AccessId, AccessId)> =
        analysis.races.pairs.iter().map(|p| (p.a, p.b)).collect();
    let missed: Vec<(AccessId, AccessId)> = uninstrumented
        .pairs
        .iter()
        .copied()
        .filter(|p| !statics.contains(p))
        .collect();
    let joined = uninstrumented.pairs.len() - missed.len();
    let static_only = statics.len() - joined;
    let false_positive_ratio = if statics.is_empty() {
        0.0
    } else {
        static_only as f64 / statics.len() as f64
    };
    DrfCertificate {
        seeds: seeds.to_vec(),
        uninstrumented,
        instrumented,
        joined,
        missed,
        static_only,
        false_positive_ratio,
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    const RACY: &str = "int g;
        void w(int v) { int i; int x;
            for (i = 0; i < 80; i = i + 1) { x = g; g = x + v; } }
        int main() { int t; t = spawn(w, 1); w(2); join(t); print(g); return 0; }";

    #[test]
    fn full_pipeline_produces_deterministic_replay() {
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        assert!(!a.races.pairs.is_empty());
        assert!(a.instrumented.weak_locks > 0);
        let m = measure(&a, &ExecConfig::default(), 42);
        assert!(m.deterministic, "replay diverged");
        assert!(m.record_overhead >= 1.0);
    }

    #[test]
    fn trials_average_and_stay_deterministic() {
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        let s = measure_trials(&a, &ExecConfig::default(), 3);
        assert!(s.all_deterministic);
        assert!(s.record_overhead > 0.5);
        assert!(s.last.is_some());
    }

    #[test]
    fn parallel_trials_match_serial_reconstruction() {
        // measure_trials fans seeds out across threads but folds in trial
        // order; rebuilding the summary with an explicit serial loop must
        // give bit-identical overheads and the same last measurement.
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        let exec = ExecConfig::default();
        let trials = 4u32;
        let s = measure_trials(&a, &exec, trials);
        let mut sum_rec = 0.0;
        let mut sum_rep = 0.0;
        let mut all_det = true;
        let mut last = None;
        for t in 0..trials {
            let m = measure(&a, &exec, 100 + t as u64 * 7);
            sum_rec += m.record_overhead;
            sum_rep += m.replay_overhead;
            all_det &= m.deterministic;
            last = Some(m);
        }
        assert_eq!(s.record_overhead, sum_rec / trials as f64);
        assert_eq!(s.replay_overhead, sum_rep / trials as f64);
        assert_eq!(s.all_deterministic, all_det);
        let (sl, l) = (s.last.unwrap(), last.unwrap());
        assert_eq!(sl.baseline.makespan, l.baseline.makespan);
        assert_eq!(sl.recording.result.makespan, l.recording.result.makespan);
        assert_eq!(sl.deterministic, l.deterministic);
    }

    #[test]
    fn race_free_program_needs_no_weak_locks() {
        let p = compile(
            "int g; lock_t m;
             void w(int v) { lock(&m); g = g + v; unlock(&m); }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                          lock(&m); print(g); unlock(&m); return 0; }",
        )
        .unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        assert!(a.races.pairs.is_empty());
        assert_eq!(a.instrumented.weak_locks, 0);
        // Recording still works (DRF logs only) and replays.
        let m = measure(&a, &ExecConfig::default(), 7);
        assert!(m.deterministic);
    }

    #[test]
    fn drf_certificate_holds_for_instrumented_racy_program() {
        let p = compile(RACY).unwrap();
        let a = analyze(&p, &PipelineConfig::default());
        let c = certify_drf(&a, &ExecConfig::default(), &[1, 42]);
        assert!(!c.uninstrumented.is_race_free(), "expected dynamic races");
        assert!(
            c.holds(),
            "instrumented run still racy: {:?}",
            c.instrumented.pairs
        );
        assert!(c.static_sound(), "RELAY missed dynamic pairs: {:?}", c.missed);
        assert!(c.joined >= 1);
        assert!((0.0..=1.0).contains(&c.false_positive_ratio));
    }

    #[test]
    fn naive_opts_cost_more_than_all_opts() {
        let p = compile(RACY).unwrap();
        let naive = analyze(
            &p,
            &PipelineConfig {
                opts: OptSet::naive(),
                ..PipelineConfig::default()
            },
        );
        let smart = analyze(&p, &PipelineConfig::default());
        let mn = measure_trials(&naive, &ExecConfig::default(), 2);
        let ms = measure_trials(&smart, &ExecConfig::default(), 2);
        assert!(
            mn.record_overhead >= ms.record_overhead,
            "naive {} < optimized {}",
            mn.record_overhead,
            ms.record_overhead
        );
    }
}
