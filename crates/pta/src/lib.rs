//! Points-to analysis for MiniC IR: Steensgaard's unification-based
//! analysis and Andersen's inclusion-based analysis.
//!
//! RELAY (the static race detector Chimera builds on) resolves function
//! pointers with Andersen's inclusion-based analysis and performs lvalue
//! alias queries with Steensgaard's unification-based analysis (paper §6.2).
//! Both are flow- and context-insensitive and field-insensitive over the
//! cell-granular MiniC heap — deliberately matching the precision class of
//! the original so that the *kinds* of false races Chimera's optimizations
//! must remove actually appear.
//!
//! # Quickstart
//!
//! ```
//! use chimera_minic::compile;
//! use chimera_pta::{Andersen, ObjectTable, Steensgaard};
//!
//! let p = compile(
//!     "int g;
//!      int main() { int *q; q = &g; *q = 3; return 0; }",
//! )
//! .unwrap();
//! let objects = ObjectTable::build(&p);
//! let andersen = Andersen::analyze(&p, &objects);
//! let steens = Steensgaard::analyze(&p, &objects);
//! // Both agree the store through q reaches global g.
//! let main = p.main();
//! let q = p.funcs[main.index()].locals.iter().position(|l| l.name == "q").unwrap();
//! let pts = andersen.points_to(main, chimera_minic::LocalId(q as u32));
//! assert_eq!(pts.len(), 1);
//! let _ = steens;
//! ```

#![warn(missing_docs)]

pub mod andersen;
pub mod bitset;
pub mod obj;
pub mod steensgaard;

pub use andersen::Andersen;
pub use bitset::PtsSet;
pub use obj::{AbsObj, ObjId, ObjectTable};
pub use steensgaard::Steensgaard;

use chimera_minic::ir::{FuncId, Instr, Program};
use std::collections::BTreeSet;

/// Resolve the possible targets of indirect calls/spawns in `func` using
/// Andersen points-to facts: any function object flowing into the
/// function-pointer operand of an indirect call site in `func`.
///
/// This is the resolver handed to
/// [`chimera_minic::callgraph::CallGraph::build`].
pub fn indirect_targets(
    andersen: &Andersen,
    program: &Program,
    func: FuncId,
) -> Vec<FuncId> {
    let mut out = BTreeSet::new();
    let f = &program.funcs[func.index()];
    for b in &f.blocks {
        for i in &b.instrs {
            let callee_op = match i {
                Instr::Call {
                    callee: chimera_minic::ir::Callee::Indirect(op),
                    ..
                }
                | Instr::Spawn {
                    callee: chimera_minic::ir::Callee::Indirect(op),
                    ..
                } => *op,
                _ => continue,
            };
            if let chimera_minic::ir::Operand::Local(l) = callee_op {
                for oid in andersen.points_to(func, l) {
                    if let AbsObj::Func(target) = andersen.objects().get(*oid) {
                        out.insert(target);
                    }
                }
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use chimera_minic::{compile, AccessId};
    use chimera_testkit::prop::{self, Gen, Source};

    /// Generate small pointer-heavy programs: three globals, two scalar
    /// locals, three pointer locals, and a random mix of copies,
    /// address-takes, stores-through, and loads-through.
    fn pointer_program_gen() -> Gen<String> {
        fn stmt(s: &mut Source) -> String {
            let ptr = |s: &mut Source| ["p", "q", "r"][s.index(3)];
            let tgt = |s: &mut Source| ["g0", "g1", "g2", "a", "b"][s.index(5)];
            match s.index(4) {
                0 => format!("{} = {};", ptr(s), ptr(s)),
                1 => format!("{} = &{};", ptr(s), tgt(s)),
                2 => format!("*{} = {};", ptr(s), s.int(0i64..100)),
                _ => format!("a = *{};", ptr(s)),
            }
        }
        Gen::new(|s| {
            let n = s.int(1usize..12);
            let body: String = (0..n).map(|_| format!("    {}\n", stmt(s))).collect();
            format!(
                "int g0; int g1; int g2;\nint main() {{\n    int a; int b;\n    int *p; int *q; int *r;\n    p = &g0; q = &g1; r = &g2;\n{body}    return 0;\n}}\n"
            )
        })
    }

    /// Andersen's inclusion-based analysis refines Steensgaard's
    /// unification-based one: for every memory access, the object set
    /// Andersen reports is a subset of Steensgaard's (§3.3's precision
    /// ordering).
    #[test]
    fn andersen_refines_steensgaard_on_generated_programs() {
        prop::check(
            "andersen_refines_steensgaard_on_generated_programs",
            &pointer_program_gen(),
            |src| {
                let p = compile(src).expect("generated source is valid");
                let objects = ObjectTable::build(&p);
                let andersen = Andersen::analyze(&p, &objects);
                let steens = Steensgaard::analyze(&p, &objects);
                for i in 0..p.accesses.len() {
                    let id = AccessId(i as u32);
                    let fine = andersen.objects_of_access(id);
                    let coarse = steens.objects_of_access(id);
                    if !fine.is_subset(coarse) {
                        return Err(format!(
                            "access {i}: andersen {fine:?} not within steensgaard {coarse:?} for:\n{src}"
                        ));
                    }
                }
                Ok(())
            },
        );
    }

    /// Generate whole programs exercising every constraint kind the solver
    /// has: copies, address-takes, loads/stores through pointers, double
    /// indirection, malloc, direct and indirect calls, spawns, and
    /// pointer-returning helpers.
    fn solver_program_gen() -> Gen<String> {
        fn stmt(s: &mut Source) -> String {
            let ptr = |s: &mut Source| ["p", "q", "r"][s.index(3)];
            let tgt = |s: &mut Source| ["g0", "g1", "g2", "a", "b"][s.index(5)];
            let helper = |s: &mut Source| ["s0", "s1"][s.index(2)];
            match s.index(11) {
                0 => format!("{} = {};", ptr(s), ptr(s)),
                1 => format!("{} = &{};", ptr(s), tgt(s)),
                2 => format!("*{} = {};", ptr(s), s.int(0i64..100)),
                3 => format!("a = *{};", ptr(s)),
                4 => format!("{} = malloc(4);", ptr(s)),
                5 => format!("*pp = {};", ptr(s)),
                6 => format!("{} = *pp;", ptr(s)),
                7 => format!("{}({});", helper(s), ptr(s)),
                8 => format!("fp = {};", helper(s)),
                9 => format!("fp({});", ptr(s)),
                _ => format!("{} = get({});", ptr(s), ptr(s)),
            }
        }
        Gen::new(|s| {
            let n = s.int(1usize..16);
            let body: String = (0..n).map(|_| format!("    {}\n", stmt(s))).collect();
            format!(
                "int g0; int g1; int g2; int *keep;\n\
                 void s0(int *p) {{ int *q; q = p; *q = 11; keep = q; }}\n\
                 void s1(int *p) {{ keep = p; *p = 22; keep = &g1; }}\n\
                 int *get(int *p) {{ return p; }}\n\
                 int main() {{\n    int a; int b; int t;\n    int *p; int *q; int *r; int **pp;\n    int *fp;\n    p = &g0; q = &g1; r = &g2; pp = malloc(1); fp = s0;\n    t = spawn(s1, q);\n{body}    return 0;\n}}\n"
            )
        })
    }

    /// The worklist solver is a pure performance rewrite: on generated
    /// programs spanning every constraint kind it must produce exactly the
    /// same points-to set for every local and the same object set for
    /// every access as the retained naive fixpoint.
    #[test]
    fn worklist_solver_matches_naive_on_generated_programs() {
        use chimera_minic::LocalId;
        prop::check(
            "worklist_solver_matches_naive_on_generated_programs",
            &solver_program_gen(),
            |src| {
                let p = compile(src).expect("generated source is valid");
                let objects = ObjectTable::build(&p);
                let fast = Andersen::analyze(&p, &objects);
                let naive = Andersen::analyze_naive(&p, &objects);
                for f in &p.funcs {
                    for li in 0..f.locals.len() {
                        let (fid, l) = (f.id, LocalId(li as u32));
                        let a = fast.points_to(fid, l);
                        let b = naive.points_to(fid, l);
                        if a != b {
                            return Err(format!(
                                "{}::{} differs: worklist {a:?} vs naive {b:?} for:\n{src}",
                                f.name, f.locals[li].name
                            ));
                        }
                    }
                }
                for i in 0..p.accesses.len() {
                    let id = AccessId(i as u32);
                    if fast.objects_of_access(id) != naive.objects_of_access(id) {
                        return Err(format!(
                            "access {i} differs: worklist {:?} vs naive {:?} for:\n{src}",
                            fast.objects_of_access(id),
                            naive.objects_of_access(id)
                        ));
                    }
                }
                Ok(())
            },
        );
    }

    /// Every pointer dereference resolves to at least one abstract object
    /// under Andersen — the generator always initializes pointers, so an
    /// empty set would mean the analysis dropped a flow edge.
    #[test]
    fn derefs_always_resolve_on_generated_programs() {
        prop::check(
            "derefs_always_resolve_on_generated_programs",
            &pointer_program_gen(),
            |src| {
                let p = compile(src).expect("generated source is valid");
                let objects = ObjectTable::build(&p);
                let andersen = Andersen::analyze(&p, &objects);
                for i in 0..p.accesses.len() {
                    let id = AccessId(i as u32);
                    if andersen.objects_of_access(id).is_empty() {
                        return Err(format!("access {i} resolves to nothing in:\n{src}"));
                    }
                }
                Ok(())
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    #[test]
    fn indirect_call_targets_resolved_precisely() {
        let p = compile(
            "int a(int x) { return x; }
             int b(int x) { return x; }
             int main() { int *fp; int *unused; fp = a; unused = b; return fp(1); }",
        )
        .unwrap();
        let objects = ObjectTable::build(&p);
        let andersen = Andersen::analyze(&p, &objects);
        let targets = indirect_targets(&andersen, &p, p.main());
        let a = p.func_by_name("a").unwrap().id;
        assert_eq!(targets, vec![a], "only 'a' flows into fp");
    }
}
