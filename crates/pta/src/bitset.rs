//! Dense bitsets over `u64` words — the points-to set representation of
//! the worklist Andersen solver.
//!
//! Points-to analysis spends essentially all of its time unioning one
//! node's set into another's and iterating freshly added elements. A
//! `BTreeSet<ObjId>` pays an allocation and pointer-chasing tax per element
//! on both operations; a dense word array makes a union a handful of `|=`
//! over machine words and membership a shift and a mask. Object ids are
//! already dense (the [`crate::ObjectTable`] numbers them contiguously),
//! so the representation wastes no space.

const WORD_BITS: usize = 64;

/// A fixed-universe dense bitset. Elements are `usize` indices below the
/// universe size given at construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PtsSet {
    words: Vec<u64>,
}

impl PtsSet {
    /// An empty set over a universe of `universe` elements.
    pub fn new(universe: usize) -> PtsSet {
        PtsSet {
            words: vec![0; universe.div_ceil(WORD_BITS)],
        }
    }

    /// Insert `i`, returning `true` if it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let old = self.words[w];
        self.words[w] = old | mask;
        old & mask == 0
    }

    /// Is `i` a member?
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self |= other`; returns `true` if `self` changed. Both sets must
    /// share a universe size.
    pub fn union_from(&mut self, other: &PtsSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut changed = 0u64;
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            let old = *d;
            *d = old | s;
            changed |= *d ^ old;
        }
        changed != 0
    }

    /// `self &= other` (intersection, in place).
    pub fn intersect_with(&mut self, other: &PtsSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            *d &= s;
        }
    }

    /// `self ∖ other` as a new set — the *delta* the worklist solver
    /// propagates.
    pub fn minus(&self, other: &PtsSet) -> PtsSet {
        let mut out = PtsSet::default();
        out.assign_minus(self, other);
        out
    }

    /// Set `self` to `a ∖ b`, reusing this set's allocation. The solver
    /// calls this once per worklist pop, so avoiding a fresh `Vec` here
    /// matters.
    pub fn assign_minus(&mut self, a: &PtsSet, b: &PtsSet) {
        debug_assert_eq!(a.words.len(), b.words.len());
        self.words.clear();
        self.words
            .extend(a.words.iter().zip(&b.words).map(|(x, y)| x & !y));
    }

    /// Elements of `self` not in `earlier`, in ascending order — the
    /// *delta* the worklist solver propagates.
    pub fn difference<'a>(&'a self, earlier: &'a PtsSet) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.words.len(), earlier.words.len());
        BitIter {
            words: Diff {
                a: &self.words,
                b: &earlier.words,
            },
            word_idx: 0,
            current: 0,
            primed: false,
        }
    }

    /// All elements, in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        BitIter {
            words: All { a: &self.words },
            word_idx: 0,
            current: 0,
            primed: false,
        }
    }
}

/// Word-stream abstraction so `iter` and `difference` share one bit walker.
trait WordStream {
    fn word(&self, i: usize) -> Option<u64>;
}

struct All<'a> {
    a: &'a [u64],
}

impl WordStream for All<'_> {
    fn word(&self, i: usize) -> Option<u64> {
        self.a.get(i).copied()
    }
}

struct Diff<'a> {
    a: &'a [u64],
    b: &'a [u64],
}

impl WordStream for Diff<'_> {
    fn word(&self, i: usize) -> Option<u64> {
        Some(self.a.get(i)? & !self.b.get(i).copied().unwrap_or(0))
    }
}

struct BitIter<W> {
    words: W,
    word_idx: usize,
    current: u64,
    primed: bool,
}

impl<W: WordStream> Iterator for BitIter<W> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if !self.primed {
                self.current = self.words.word(self.word_idx)?;
                self.primed = true;
            }
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            self.primed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = PtsSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports no change");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_reports_change_precisely() {
        let mut a = PtsSet::new(100);
        let mut b = PtsSet::new(100);
        b.insert(7);
        b.insert(99);
        assert!(a.union_from(&b));
        assert!(!a.union_from(&b), "idempotent union reports no change");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![7, 99]);
    }

    #[test]
    fn difference_yields_only_new_elements() {
        let mut now = PtsSet::new(200);
        let mut before = PtsSet::new(200);
        for i in [3, 64, 65, 190] {
            now.insert(i);
        }
        before.insert(64);
        before.insert(3);
        let delta: Vec<usize> = now.difference(&before).collect();
        assert_eq!(delta, vec![65, 190]);
    }

    #[test]
    fn assign_minus_reuses_any_prior_state() {
        let mut a = PtsSet::new(100);
        let mut b = PtsSet::new(100);
        for i in [2, 40, 99] {
            a.insert(i);
        }
        b.insert(40);
        let mut scratch = PtsSet::new(7); // wrong size on purpose
        scratch.insert(3);
        scratch.assign_minus(&a, &b);
        assert_eq!(scratch.iter().collect::<Vec<_>>(), vec![2, 99]);
        assert_eq!(scratch, a.minus(&b));
    }

    #[test]
    fn iter_is_sorted_across_word_boundaries() {
        let mut s = PtsSet::new(300);
        let elems = [299, 0, 63, 64, 127, 128, 200];
        for e in elems {
            s.insert(e);
        }
        let got: Vec<usize> = s.iter().collect();
        let mut want = elems.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn intersect_keeps_common_elements() {
        let mut a = PtsSet::new(70);
        let mut b = PtsSet::new(70);
        for i in [1, 5, 69] {
            a.insert(i);
        }
        for i in [5, 69] {
            b.insert(i);
        }
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 69]);
    }

    #[test]
    fn empty_universe_is_fine() {
        let s = PtsSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
