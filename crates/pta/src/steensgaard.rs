//! Steensgaard's unification-based (almost-linear-time) points-to analysis.
//!
//! Coarser than Andersen: every assignment *unifies* the points-to classes
//! of both sides, so aliasing is symmetric and transitive. RELAY uses this
//! analysis for lvalue aliasing (paper §6.2); its coarseness is one of the
//! two main sources of false races that Chimera's optimizations then remove
//! (§3.3).

use crate::obj::{AbsObj, ObjId, ObjectTable};
use chimera_minic::ir::{
    AccessId, Callee, FuncId, Instr, LocalId, Operand, Program, Terminator,
};
use std::collections::BTreeSet;

/// Results of Steensgaard's analysis.
#[derive(Debug, Clone)]
pub struct Steensgaard {
    objects: ObjectTable,
    var_base: Vec<usize>,
    parent: Vec<usize>,
    target: Vec<Option<usize>>,
    /// Objects grouped by (representative of) the class containing them.
    access_objs: Vec<BTreeSet<ObjId>>,
    empty: BTreeSet<ObjId>,
    n_obj_base: usize,
}

impl Steensgaard {
    /// Run the unification analysis.
    pub fn analyze(program: &Program, objects: &ObjectTable) -> Steensgaard {
        let mut var_base = Vec::with_capacity(program.funcs.len());
        let mut n_vars = 0usize;
        for f in &program.funcs {
            var_base.push(n_vars);
            n_vars += f.locals.len();
        }
        let n_nodes = n_vars + objects.len();
        let mut s = Steensgaard {
            objects: objects.clone(),
            var_base,
            parent: (0..n_nodes).collect(),
            target: vec![None; n_nodes],
            access_objs: vec![BTreeSet::new(); program.accesses.len()],
            empty: BTreeSet::new(),
            n_obj_base: n_vars,
        };

        let mut ret_srcs: Vec<Vec<usize>> = vec![Vec::new(); program.funcs.len()];
        for f in &program.funcs {
            for b in &f.blocks {
                if let Terminator::Return(Some(Operand::Local(l))) = b.term {
                    ret_srcs[f.id.index()].push(s.var_node(f.id, l));
                }
            }
        }
        // Address-taken functions (for conservative indirect-call handling).
        let addr_taken_funcs: Vec<FuncId> = objects
            .iter()
            .filter_map(|(_, o)| match o {
                AbsObj::Func(f) => Some(f),
                _ => None,
            })
            .collect();

        for f in &program.funcs {
            for b in &f.blocks {
                for i in &b.instrs {
                    s.process(program, f.id, i, &ret_srcs, &addr_taken_funcs);
                }
            }
        }

        // Cache per-access object sets.
        for f in &program.funcs {
            for b in &f.blocks {
                for i in &b.instrs {
                    let (addr, access) = match i {
                        Instr::Load { addr, access, .. } => (*addr, *access),
                        Instr::Store { addr, access, .. } => (*addr, *access),
                        _ => continue,
                    };
                    if let Operand::Local(l) = addr {
                        let node = s.var_node(f.id, l);
                        s.access_objs[access.index()] = s.objects_in_target_of(node);
                    }
                }
            }
        }
        s
    }

    fn process(
        &mut self,
        program: &Program,
        func: FuncId,
        i: &Instr,
        ret_srcs: &[Vec<usize>],
        addr_taken_funcs: &[FuncId],
    ) {
        match i {
            Instr::AddrOfGlobal { dst, global, .. } => {
                let o = self.obj_node(AbsObj::Global(*global));
                let t = self.ensure_target(self.var_node(func, *dst));
                self.union(t, o);
            }
            Instr::AddrOfLocal { dst, local, .. } => {
                let o = self.obj_node(AbsObj::LocalSlot(func, *local));
                let t = self.ensure_target(self.var_node(func, *dst));
                self.union(t, o);
            }
            Instr::AddrOfFunc { dst, func: f } => {
                let o = self.obj_node(AbsObj::Func(*f));
                let t = self.ensure_target(self.var_node(func, *dst));
                self.union(t, o);
            }
            Instr::Malloc { dst, site, .. } => {
                let o = self.obj_node(AbsObj::Alloc(*site));
                let t = self.ensure_target(self.var_node(func, *dst));
                self.union(t, o);
            }
            Instr::Copy {
                dst,
                src: Operand::Local(src),
            } => self.unify_values(self.var_node(func, *dst), self.var_node(func, *src)),
            Instr::PtrAdd {
                dst,
                base: Operand::Local(b),
                ..
            } => self.unify_values(self.var_node(func, *dst), self.var_node(func, *b)),
            Instr::Load {
                dst,
                addr: Operand::Local(addr),
                ..
            } => {
                // x = *p : unify value(x) with value(pointee(p)).
                let p_t = self.ensure_target(self.var_node(func, *addr));
                self.unify_values(self.var_node(func, *dst), p_t);
            }
            Instr::Store {
                addr: Operand::Local(addr),
                val: Operand::Local(v),
                ..
            } => {
                let p_t = self.ensure_target(self.var_node(func, *addr));
                self.unify_values(p_t, self.var_node(func, *v));
            }
            Instr::Call { dst, callee, args } | Instr::Spawn { dst, callee, args } => {
                let direct;
                let targets: &[FuncId] = match callee {
                    Callee::Direct(t) => {
                        direct = [*t];
                        &direct
                    }
                    Callee::Indirect(_) => addr_taken_funcs,
                };
                for &t in targets {
                    let tf = &program.funcs[t.index()];
                    for (ai, arg) in args.iter().enumerate() {
                        if ai >= tf.params.len() {
                            break;
                        }
                        if let Operand::Local(l) = arg {
                            self.unify_values(
                                self.var_node(func, *l),
                                self.var_node(t, tf.params[ai]),
                            );
                        }
                    }
                    if let Some(d) = dst {
                        for &r in ret_srcs[t.index()].iter() {
                            self.unify_values(self.var_node(func, *d), r);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn var_node(&self, f: FuncId, l: LocalId) -> usize {
        self.var_base[f.index()] + l.index()
    }

    fn obj_node(&self, o: AbsObj) -> usize {
        self.n_obj_base
            + self
                .objects
                .id_of(o)
                .expect("object table enumerates all objects")
                .index()
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unify two classes (and, recursively, their targets).
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.parent[rb] = ra;
        match (self.target[ra], self.target[rb]) {
            (Some(ta), Some(tb)) => self.union(ta, tb),
            (None, Some(tb)) => self.target[ra] = Some(tb),
            _ => {}
        }
    }

    /// `x = y`: unify the *targets* of both value classes.
    fn unify_values(&mut self, x: usize, y: usize) {
        let tx = self.ensure_target(x);
        let ty = self.ensure_target(y);
        self.union(tx, ty);
    }

    /// The target class of `x`'s class, creating a fresh one if absent.
    fn ensure_target(&mut self, x: usize) -> usize {
        let r = self.find(x);
        if let Some(t) = self.target[r] {
            return self.find(t);
        }
        // Fresh class node.
        let fresh = self.parent.len();
        self.parent.push(fresh);
        self.target.push(None);
        self.target[r] = Some(fresh);
        fresh
    }

    fn objects_in_target_of(&mut self, node: usize) -> BTreeSet<ObjId> {
        let r = self.find(node);
        let Some(t) = self.target[r] else {
            return BTreeSet::new();
        };
        let tr = self.find(t);
        let mut out = BTreeSet::new();
        for i in 0..self.objects.len() {
            let onode = self.n_obj_base + i;
            if self.find(onode) == tr {
                out.insert(ObjId(i as u32));
            }
        }
        out
    }

    /// Objects a memory access may touch (pre-computed during analysis).
    pub fn objects_of_access(&self, access: AccessId) -> &BTreeSet<ObjId> {
        &self.access_objs[access.index()]
    }

    /// Objects an operand may point to. `Const` operands point nowhere.
    pub fn points_to_operand(&mut self, func: FuncId, op: Operand) -> BTreeSet<ObjId> {
        match op {
            Operand::Local(l) => {
                let node = self.var_node(func, l);
                self.objects_in_target_of(node)
            }
            Operand::Const(_) => self.empty.clone(),
        }
    }

    /// The object table the analysis ran over.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    fn analyze(src: &str) -> (Program, Steensgaard) {
        let p = compile(src).unwrap();
        let objects = ObjectTable::build(&p);
        let s = Steensgaard::analyze(&p, &objects);
        (p, s)
    }

    fn local(p: &Program, func: &str, name: &str) -> (FuncId, LocalId) {
        let f = p.func_by_name(func).unwrap();
        let l = f.locals.iter().position(|l| l.name == name).unwrap();
        (f.id, LocalId(l as u32))
    }

    #[test]
    fn direct_address_resolves() {
        let (p, mut s) = analyze("int g; int main() { int *q; q = &g; *q = 1; return 0; }");
        let (f, q) = local(&p, "main", "q");
        let pts = s.points_to_operand(f, Operand::Local(q));
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn unification_merges_both_directions() {
        // q1 = &g; q2 = &h; r = q1; r = q2; — under Steensgaard, r, q1 and
        // q2 all end up pointing at {g, h}. Andersen would keep q1 and q2
        // precise. This coarseness is the imprecision source the paper's
        // §3.3 calls out.
        let (p, mut s) = analyze(
            "int g; int h;
             int main() { int *q1; int *q2; int *r; q1 = &g; q2 = &h; r = q1; r = q2; return 0; }",
        );
        let (f, q1) = local(&p, "main", "q1");
        let pts = s.points_to_operand(f, Operand::Local(q1));
        assert_eq!(pts.len(), 2, "unification merged g and h, got {pts:?}");
    }

    #[test]
    fn access_sets_symmetric_for_aliased_pointers() {
        let (p, s) = analyze(
            "int g;
             int main() { int *a; int *b; a = &g; b = a; *a = 1; *b = 2; return 0; }",
        );
        let writes: Vec<_> = p.accesses.iter().filter(|a| a.is_write).collect();
        assert_eq!(writes.len(), 2);
        assert_eq!(
            s.objects_of_access(writes[0].id),
            s.objects_of_access(writes[1].id)
        );
    }

    #[test]
    fn distinct_unrelated_pointers_stay_separate() {
        let (p, mut s) = analyze(
            "int g; int h;
             int main() { int *a; int *b; a = &g; b = &h; *a = 1; *b = 2; return 0; }",
        );
        let (f, a) = local(&p, "main", "a");
        let (_, b) = local(&p, "main", "b");
        let pa = s.points_to_operand(f, Operand::Local(a));
        let pb = s.points_to_operand(f, Operand::Local(b));
        assert!(pa.is_disjoint(&pb));
    }

    #[test]
    fn parameters_unified_with_arguments() {
        let (p, mut s) = analyze(
            "int g;
             void sink(int *x) { *x = 1; }
             int main() { sink(&g); return 0; }",
        );
        let (f, x) = local(&p, "sink", "x");
        let pts = s.points_to_operand(f, Operand::Local(x));
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn heap_flow_is_tracked() {
        let (p, mut s) = analyze(
            "int g;
             int main() { int **c; int *q; c = malloc(1); *c = &g; q = *c; *q = 1; return 0; }",
        );
        let (f, q) = local(&p, "main", "q");
        let pts = s.points_to_operand(f, Operand::Local(q));
        assert!(!pts.is_empty());
    }

    #[test]
    fn no_target_means_empty_set() {
        let (p, mut s) = analyze("int main() { int x; x = 1; return x; }");
        let (f, x) = local(&p, "main", "x");
        // x never holds a pointer; its points-to set is empty.
        assert!(s.points_to_operand(f, Operand::Local(x)).is_empty());
    }
}
