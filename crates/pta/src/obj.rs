//! The abstract-object table shared by both points-to analyses.

use chimera_minic::ir::{AllocSiteId, FuncId, GlobalId, Instr, LocalId, Program, Storage};
use std::collections::HashMap;
use std::fmt;

/// An abstract memory object.
///
/// Matching RELAY's model (paper §6.2): globals, heap-allocation sites
/// (one object per `malloc` site), *heapified* locals (address-taken or
/// aggregate locals, which RELAY promotes to analyzable objects), and
/// functions (targets of function pointers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbsObj {
    /// A global variable.
    Global(GlobalId),
    /// A slot local of a function ("heapified" local).
    LocalSlot(FuncId, LocalId),
    /// A heap object identified by its allocation site.
    Alloc(AllocSiteId),
    /// A function, as the target of a function pointer.
    Func(FuncId),
}

impl fmt::Display for AbsObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsObj::Global(g) => write!(f, "{g}"),
            AbsObj::LocalSlot(func, l) => write!(f, "{func}:{l}"),
            AbsObj::Alloc(a) => write!(f, "{a}"),
            AbsObj::Func(id) => write!(f, "&{id}"),
        }
    }
}

/// Dense numbering of an abstract object, usable as an array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Bidirectional map between [`AbsObj`] and dense [`ObjId`]s, enumerating
/// every abstract object of a program.
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    objs: Vec<AbsObj>,
    ids: HashMap<AbsObj, ObjId>,
}

impl ObjectTable {
    /// Enumerate all abstract objects of `program`: every global, every
    /// slot local, every `malloc` site, and every function whose address is
    /// taken.
    pub fn build(program: &Program) -> ObjectTable {
        let mut t = ObjectTable::default();
        for (i, _) in program.globals.iter().enumerate() {
            t.intern(AbsObj::Global(GlobalId(i as u32)));
        }
        for f in &program.funcs {
            for (li, l) in f.locals.iter().enumerate() {
                if matches!(l.storage, Storage::Slot { .. }) {
                    t.intern(AbsObj::LocalSlot(f.id, LocalId(li as u32)));
                }
            }
        }
        for s in 0..program.alloc_sites {
            t.intern(AbsObj::Alloc(AllocSiteId(s)));
        }
        for f in &program.funcs {
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Instr::AddrOfFunc { func, .. } = i {
                        t.intern(AbsObj::Func(*func));
                    }
                    // Direct spawn targets are also function objects so the
                    // race detector can reason about them uniformly.
                    if let Instr::Spawn {
                        callee: chimera_minic::ir::Callee::Direct(func),
                        ..
                    } = i
                    {
                        t.intern(AbsObj::Func(*func));
                    }
                }
            }
        }
        t
    }

    /// Intern an object, returning its id.
    pub fn intern(&mut self, o: AbsObj) -> ObjId {
        if let Some(&id) = self.ids.get(&o) {
            return id;
        }
        let id = ObjId(self.objs.len() as u32);
        self.objs.push(o);
        self.ids.insert(o, id);
        id
    }

    /// Look up the id of an object.
    pub fn id_of(&self, o: AbsObj) -> Option<ObjId> {
        self.ids.get(&o).copied()
    }

    /// The object for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: ObjId) -> AbsObj {
        self.objs[id.index()]
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// True if no objects were enumerated.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// Iterate over `(ObjId, AbsObj)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, AbsObj)> + '_ {
        self.objs
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjId(i as u32), *o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    #[test]
    fn enumerates_globals_slots_allocs_funcs() {
        let p = compile(
            "int g; int arr[4];
             int helper(int x) { return x; }
             int main() {
                int local_slot; int *p; int *h;
                p = &local_slot;
                h = malloc(8);
                p = helper;
                return *p;
             }",
        )
        .unwrap();
        let t = ObjectTable::build(&p);
        let n_globals = t.iter().filter(|(_, o)| matches!(o, AbsObj::Global(_))).count();
        let n_slots = t
            .iter()
            .filter(|(_, o)| matches!(o, AbsObj::LocalSlot(_, _)))
            .count();
        let n_allocs = t.iter().filter(|(_, o)| matches!(o, AbsObj::Alloc(_))).count();
        let n_funcs = t.iter().filter(|(_, o)| matches!(o, AbsObj::Func(_))).count();
        assert_eq!(n_globals, 2);
        assert_eq!(n_slots, 1);
        assert_eq!(n_allocs, 1);
        assert_eq!(n_funcs, 1);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = ObjectTable::default();
        let a = t.intern(AbsObj::Global(GlobalId(0)));
        let b = t.intern(AbsObj::Global(GlobalId(0)));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn direct_spawn_target_is_an_object() {
        let p = compile(
            "void w(int x) {}
             int main() { int t; t = spawn(w, 1); join(t); }",
        )
        .unwrap();
        let t = ObjectTable::build(&p);
        let w = p.func_by_name("w").unwrap().id;
        assert!(t.id_of(AbsObj::Func(w)).is_some());
    }
}
