//! Andersen's inclusion-based points-to analysis.
//!
//! Flow- and context-insensitive, field-insensitive, with on-the-fly
//! resolution of indirect calls: the targets of a call through a function
//! pointer are taken from the current points-to set of the pointer, and
//! parameter/return copy edges are added as new targets appear.

use crate::obj::{AbsObj, ObjId, ObjectTable};
use chimera_minic::ir::{
    AccessId, Callee, FuncId, Instr, LocalId, Operand, Program, Terminator,
};
use std::collections::BTreeSet;

/// Results of Andersen's analysis.
#[derive(Debug, Clone)]
pub struct Andersen {
    objects: ObjectTable,
    var_base: Vec<usize>,
    n_nodes: usize,
    pts: Vec<BTreeSet<ObjId>>,
    access_objs: Vec<BTreeSet<ObjId>>,
    empty: BTreeSet<ObjId>,
}

#[derive(Debug, Clone, Copy)]
struct LoadC {
    addr: usize,
    dst: usize,
}

#[derive(Debug, Clone, Copy)]
struct StoreC {
    addr: usize,
    val: usize,
}

#[derive(Debug, Clone)]
struct IndirectSite {
    caller: FuncId,
    callee_node: usize,
    args: Vec<Operand>,
    dst: Option<LocalId>,
}

impl Andersen {
    /// Run the analysis to fixpoint.
    pub fn analyze(program: &Program, objects: &ObjectTable) -> Andersen {
        let mut var_base = Vec::with_capacity(program.funcs.len());
        let mut n_vars = 0usize;
        for f in &program.funcs {
            var_base.push(n_vars);
            n_vars += f.locals.len();
        }
        let n_nodes = n_vars + objects.len();
        let mut a = Andersen {
            objects: objects.clone(),
            var_base,
            n_nodes,
            pts: vec![BTreeSet::new(); n_nodes],
            access_objs: vec![BTreeSet::new(); program.accesses.len()],
            empty: BTreeSet::new(),
        };

        // Collect constraints.
        let mut copy_edges: Vec<(usize, usize)> = Vec::new(); // src -> dst
        let mut loads: Vec<LoadC> = Vec::new();
        let mut stores: Vec<StoreC> = Vec::new();
        let mut indirect: Vec<IndirectSite> = Vec::new();
        // Return nodes per function (locals flowing into `return`).
        let mut ret_srcs: Vec<Vec<usize>> = vec![Vec::new(); program.funcs.len()];
        for f in &program.funcs {
            for b in &f.blocks {
                if let Terminator::Return(Some(Operand::Local(l))) = b.term {
                    ret_srcs[f.id.index()].push(a.var_node(f.id, l));
                }
            }
        }

        for f in &program.funcs {
            for b in &f.blocks {
                for i in &b.instrs {
                    a.collect_instr(
                        program,
                        f.id,
                        i,
                        &mut copy_edges,
                        &mut loads,
                        &mut stores,
                        &mut indirect,
                        &ret_srcs,
                    );
                }
            }
        }

        // Solve to fixpoint. Indirect sites may add copy edges as the
        // points-to sets of function pointers grow.
        let mut resolved_pairs: BTreeSet<(usize, u32)> = BTreeSet::new();
        loop {
            let mut changed = false;
            for &(src, dst) in &copy_edges {
                changed |= a.union_into(src, dst);
            }
            for l in &loads {
                let objs: Vec<ObjId> = a.pts[l.addr].iter().copied().collect();
                for o in objs {
                    let src = a.content_node(o);
                    changed |= a.union_into(src, l.dst);
                }
            }
            for s in &stores {
                let objs: Vec<ObjId> = a.pts[s.addr].iter().copied().collect();
                for o in objs {
                    let dst = a.content_node(o);
                    changed |= a.union_into(s.val, dst);
                }
            }
            // Indirect call resolution.
            let mut new_edges: Vec<(usize, usize)> = Vec::new();
            for (site_idx, site) in indirect.iter().enumerate() {
                let targets: Vec<FuncId> = a.pts[site.callee_node]
                    .iter()
                    .filter_map(|o| match a.objects.get(*o) {
                        AbsObj::Func(t) => Some(t),
                        _ => None,
                    })
                    .collect();
                for t in targets {
                    if !resolved_pairs.insert((site_idx, t.0)) {
                        continue;
                    }
                    changed = true;
                    let callee = &program.funcs[t.index()];
                    for (ai, arg) in site.args.iter().enumerate() {
                        if ai >= callee.params.len() {
                            break;
                        }
                        if let Operand::Local(l) = arg {
                            new_edges.push((
                                a.var_node(site.caller, *l),
                                a.var_node(t, callee.params[ai]),
                            ));
                        }
                    }
                    if let Some(d) = site.dst {
                        for &r in &ret_srcs[t.index()] {
                            new_edges.push((r, a.var_node(site.caller, d)));
                        }
                    }
                }
            }
            copy_edges.extend(new_edges);
            if !changed {
                break;
            }
        }

        // Record per-access object sets.
        for f in &program.funcs {
            for b in &f.blocks {
                for i in &b.instrs {
                    let (addr, access) = match i {
                        Instr::Load { addr, access, .. } => (*addr, *access),
                        Instr::Store { addr, access, .. } => (*addr, *access),
                        _ => continue,
                    };
                    if let Operand::Local(l) = addr {
                        let set = a.pts[a.var_node(f.id, l)]
                            .iter()
                            .copied()
                            .filter(|o| !matches!(a.objects.get(*o), AbsObj::Func(_)))
                            .collect();
                        a.access_objs[access.index()] = set;
                    }
                }
            }
        }
        a
    }

    #[allow(clippy::too_many_arguments)]
    fn collect_instr(
        &mut self,
        program: &Program,
        func: FuncId,
        i: &Instr,
        copy_edges: &mut Vec<(usize, usize)>,
        loads: &mut Vec<LoadC>,
        stores: &mut Vec<StoreC>,
        indirect: &mut Vec<IndirectSite>,
        ret_srcs: &[Vec<usize>],
    ) {
        let node = |this: &Self, l: LocalId| this.var_node(func, l);
        match i {
            Instr::AddrOfGlobal { dst, global, .. } => {
                let o = self
                    .objects
                    .id_of(AbsObj::Global(*global))
                    .expect("object table enumerates all globals");
                let n = node(self, *dst);
                self.pts[n].insert(o);
            }
            Instr::AddrOfLocal { dst, local, .. } => {
                let o = self
                    .objects
                    .id_of(AbsObj::LocalSlot(func, *local))
                    .expect("object table enumerates all slots");
                let n = node(self, *dst);
                self.pts[n].insert(o);
            }
            Instr::AddrOfFunc { dst, func: f } => {
                let o = self
                    .objects
                    .id_of(AbsObj::Func(*f))
                    .expect("object table enumerates address-taken funcs");
                let n = node(self, *dst);
                self.pts[n].insert(o);
            }
            Instr::Malloc { dst, site, .. } => {
                let o = self
                    .objects
                    .id_of(AbsObj::Alloc(*site))
                    .expect("object table enumerates alloc sites");
                let n = node(self, *dst);
                self.pts[n].insert(o);
            }
            Instr::Copy {
                dst,
                src: Operand::Local(s),
            } => copy_edges.push((node(self, *s), node(self, *dst))),
            Instr::PtrAdd {
                dst,
                base: Operand::Local(b),
                ..
            } => copy_edges.push((node(self, *b), node(self, *dst))),
            Instr::Load {
                dst,
                addr: Operand::Local(addr),
                ..
            } => loads.push(LoadC {
                addr: node(self, *addr),
                dst: node(self, *dst),
            }),
            Instr::Store {
                addr: Operand::Local(addr),
                val: Operand::Local(v),
                ..
            } => stores.push(StoreC {
                addr: node(self, *addr),
                val: node(self, *v),
            }),
            Instr::Call { dst, callee, args } | Instr::Spawn { dst, callee, args } => {
                match callee {
                    Callee::Direct(t) => {
                        let tf = &program.funcs[t.index()];
                        for (ai, arg) in args.iter().enumerate() {
                            if ai >= tf.params.len() {
                                break;
                            }
                            if let Operand::Local(l) = arg {
                                copy_edges
                                    .push((node(self, *l), self.var_node(*t, tf.params[ai])));
                            }
                        }
                        if let Some(d) = dst {
                            for &r in &ret_srcs[t.index()] {
                                copy_edges.push((r, node(self, *d)));
                            }
                        }
                    }
                    Callee::Indirect(op) => {
                        if let Operand::Local(l) = op {
                            indirect.push(IndirectSite {
                                caller: func,
                                callee_node: node(self, *l),
                                args: args.clone(),
                                dst: *dst,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn var_node(&self, f: FuncId, l: LocalId) -> usize {
        self.var_base[f.index()] + l.index()
    }

    fn content_node(&self, o: ObjId) -> usize {
        self.n_nodes - self.objects.len() + o.index()
    }

    fn union_into(&mut self, src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        let add: Vec<ObjId> = self.pts[src]
            .iter()
            .filter(|o| !self.pts[dst].contains(o))
            .copied()
            .collect();
        if add.is_empty() {
            return false;
        }
        self.pts[dst].extend(add);
        true
    }

    /// The points-to set of a local variable.
    pub fn points_to(&self, func: FuncId, local: LocalId) -> &BTreeSet<ObjId> {
        &self.pts[self.var_node(func, local)]
    }

    /// The points-to set of an operand (`Const` operands point nowhere).
    pub fn points_to_operand(&self, func: FuncId, op: Operand) -> &BTreeSet<ObjId> {
        match op {
            Operand::Local(l) => self.points_to(func, l),
            Operand::Const(_) => &self.empty,
        }
    }

    /// Objects a given memory access may touch.
    pub fn objects_of_access(&self, access: AccessId) -> &BTreeSet<ObjId> {
        &self.access_objs[access.index()]
    }

    /// The object table the analysis ran over.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    fn local_named(p: &Program, func: &str, name: &str) -> (FuncId, LocalId) {
        let f = p.func_by_name(func).unwrap();
        let l = f.locals.iter().position(|l| l.name == name).unwrap();
        (f.id, LocalId(l as u32))
    }

    fn analyze(src: &str) -> (Program, Andersen) {
        let p = compile(src).unwrap();
        let objects = ObjectTable::build(&p);
        let a = Andersen::analyze(&p, &objects);
        (p, a)
    }

    #[test]
    fn address_of_global_is_precise() {
        let (p, a) = analyze("int g; int h; int main() { int *q; q = &g; return *q; }");
        let (f, q) = local_named(&p, "main", "q");
        let pts = a.points_to(f, q);
        assert_eq!(pts.len(), 1);
        assert_eq!(a.objects().get(*pts.iter().next().unwrap()), AbsObj::Global(chimera_minic::ir::GlobalId(0)));
    }

    #[test]
    fn inclusion_distinguishes_directions() {
        // Andersen (unlike Steensgaard) keeps q1 and q2 separate.
        let (p, a) = analyze(
            "int g; int h;
             int main() { int *q1; int *q2; int *r; q1 = &g; q2 = &h; r = q1; return *r; }",
        );
        let (f, q1) = local_named(&p, "main", "q1");
        let (_, q2) = local_named(&p, "main", "q2");
        let (_, r) = local_named(&p, "main", "r");
        assert_eq!(a.points_to(f, q1).len(), 1);
        assert_eq!(a.points_to(f, q2).len(), 1);
        assert_eq!(a.points_to(f, r).len(), 1);
        assert_ne!(a.points_to(f, q1), a.points_to(f, q2));
    }

    #[test]
    fn flow_through_heap_cell() {
        let (p, a) = analyze(
            "int g;
             int main() {
               int **cell; int *q;
               cell = malloc(1);
               *cell = &g;
               q = *cell;
               return *q;
             }",
        );
        let (f, q) = local_named(&p, "main", "q");
        let pts = a.points_to(f, q);
        assert!(pts
            .iter()
            .any(|o| matches!(a.objects().get(*o), AbsObj::Global(_))));
    }

    #[test]
    fn parameter_passing_propagates() {
        let (p, a) = analyze(
            "int g;
             void sink(int *p) { *p = 1; }
             int main() { sink(&g); return g; }",
        );
        let (f, pp) = local_named(&p, "sink", "p");
        let pts = a.points_to(f, pp);
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn return_value_propagates() {
        let (p, a) = analyze(
            "int g;
             int *get() { return &g; }
             int main() { int *q; q = get(); return *q; }",
        );
        let (f, q) = local_named(&p, "main", "q");
        assert_eq!(a.points_to(f, q).len(), 1);
    }

    #[test]
    fn indirect_call_parameters_flow() {
        let (p, a) = analyze(
            "int g;
             void sink(int *p) { *p = 1; }
             int main() { int *fp; fp = sink; fp(&g); return g; }",
        );
        let (f, pp) = local_named(&p, "sink", "p");
        assert_eq!(a.points_to(f, pp).len(), 1, "args flow through fp call");
    }

    #[test]
    fn access_objects_recorded() {
        let (p, a) = analyze("int g; int main() { int *q; q = &g; *q = 7; return 0; }");
        // Find the store access.
        let store = p.accesses.iter().find(|ac| ac.is_write).unwrap();
        let objs = a.objects_of_access(store.id);
        assert_eq!(objs.len(), 1);
    }

    #[test]
    fn malloc_sites_distinct() {
        let (p, a) = analyze(
            "int main() { int *x; int *y; x = malloc(4); y = malloc(4); return 0; }",
        );
        let (f, x) = local_named(&p, "main", "x");
        let (_, y) = local_named(&p, "main", "y");
        assert_ne!(a.points_to(f, x), a.points_to(f, y));
    }

    #[test]
    fn pointer_arithmetic_preserves_target() {
        // Paper §3.2: after arithmetic the pointer is assumed to point to
        // the same object.
        let (p, a) = analyze(
            "int arr[8];
             int main() { int *q; q = &arr[0]; q = q + 3; *q = 1; return 0; }",
        );
        let (f, q) = local_named(&p, "main", "q");
        let pts = a.points_to(f, q);
        assert_eq!(pts.len(), 1);
    }
}
