//! Andersen's inclusion-based points-to analysis.
//!
//! Flow- and context-insensitive, field-insensitive, with on-the-fly
//! resolution of indirect calls: the targets of a call through a function
//! pointer are taken from the current points-to set of the pointer, and
//! parameter/return copy edges are added as new targets appear.
//!
//! The solver is a **difference-propagation worklist** (Pearce et al.;
//! Hardekopf & Lin): each node keeps a dense [`PtsSet`] bitset plus the
//! portion of it already propagated, and only the *delta* since a node was
//! last processed flows along its copy edges, load/store constraints, and
//! indirect call sites. Copy-edge cycles are collapsed online with a
//! union-find over nodes (lazy cycle detection), so pointer chains and
//! cycles converge without re-walking the whole constraint system. The
//! textbook naive fixpoint is retained as [`Andersen::analyze_naive`] —
//! a reference implementation for differential tests and the
//! `pta_scaling` bench, not for production use.

use crate::bitset::PtsSet;
use crate::obj::{AbsObj, ObjId, ObjectTable};
use chimera_minic::ir::{
    AccessId, Callee, FuncId, Instr, LocalId, Operand, Program, Terminator,
};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Results of Andersen's analysis.
#[derive(Debug, Clone)]
pub struct Andersen {
    objects: ObjectTable,
    var_base: Vec<usize>,
    n_nodes: usize,
    pts: Vec<BTreeSet<ObjId>>,
    access_objs: Vec<BTreeSet<ObjId>>,
    empty: BTreeSet<ObjId>,
}

#[derive(Debug, Clone, Copy)]
struct LoadC {
    addr: usize,
    dst: usize,
}

#[derive(Debug, Clone, Copy)]
struct StoreC {
    addr: usize,
    val: usize,
}

#[derive(Debug, Clone)]
struct IndirectSite {
    caller: FuncId,
    callee_node: usize,
    args: Vec<Operand>,
    dst: Option<LocalId>,
}

/// The full constraint system of a program, shared by both solvers.
struct Constraints {
    /// `node ∋ obj` base facts (address-of, malloc).
    base: Vec<(usize, ObjId)>,
    /// `pts(dst) ⊇ pts(src)` copy edges.
    copy: Vec<(usize, usize)>,
    /// `dst = *addr` complex constraints.
    loads: Vec<LoadC>,
    /// `*addr = val` complex constraints.
    stores: Vec<StoreC>,
    /// Calls through function pointers, resolved on the fly.
    indirect: Vec<IndirectSite>,
    /// Per function: nodes flowing into `return`.
    ret_srcs: Vec<Vec<usize>>,
}

impl Andersen {
    /// Run the analysis to fixpoint with the worklist solver.
    pub fn analyze(program: &Program, objects: &ObjectTable) -> Andersen {
        let mut a = Andersen::skeleton(program, objects);
        let cons = a.collect(program);
        Worklist::solve(&mut a, program, &cons);
        a.record_accesses(program);
        a
    }

    /// The textbook naive fixpoint solver: every iteration re-walks every
    /// constraint until nothing changes.
    ///
    /// Kept only as the differential-testing and benchmarking reference
    /// for [`Andersen::analyze`]; it computes the identical least
    /// solution, orders of magnitude slower on large programs.
    #[doc(hidden)]
    pub fn analyze_naive(program: &Program, objects: &ObjectTable) -> Andersen {
        let mut a = Andersen::skeleton(program, objects);
        let cons = a.collect(program);
        a.solve_naive(program, cons);
        a.record_accesses(program);
        a
    }

    /// Empty result shell with the node numbering set up.
    fn skeleton(program: &Program, objects: &ObjectTable) -> Andersen {
        let mut var_base = Vec::with_capacity(program.funcs.len());
        let mut n_vars = 0usize;
        for f in &program.funcs {
            var_base.push(n_vars);
            n_vars += f.locals.len();
        }
        let n_nodes = n_vars + objects.len();
        Andersen {
            objects: objects.clone(),
            var_base,
            n_nodes,
            pts: vec![BTreeSet::new(); n_nodes],
            access_objs: vec![BTreeSet::new(); program.accesses.len()],
            empty: BTreeSet::new(),
        }
    }

    /// Walk the program once, collecting the constraint system.
    fn collect(&self, program: &Program) -> Constraints {
        let mut cons = Constraints {
            base: Vec::new(),
            copy: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            indirect: Vec::new(),
            ret_srcs: vec![Vec::new(); program.funcs.len()],
        };
        for f in &program.funcs {
            for b in &f.blocks {
                if let Terminator::Return(Some(Operand::Local(l))) = b.term {
                    cons.ret_srcs[f.id.index()].push(self.var_node(f.id, l));
                }
            }
        }
        for f in &program.funcs {
            for b in &f.blocks {
                for i in &b.instrs {
                    self.collect_instr(program, f.id, i, &mut cons);
                }
            }
        }
        cons
    }

    fn collect_instr(&self, program: &Program, func: FuncId, i: &Instr, cons: &mut Constraints) {
        let node = |l: LocalId| self.var_node(func, l);
        match i {
            Instr::AddrOfGlobal { dst, global, .. } => {
                let o = self
                    .objects
                    .id_of(AbsObj::Global(*global))
                    .expect("object table enumerates all globals");
                cons.base.push((node(*dst), o));
            }
            Instr::AddrOfLocal { dst, local, .. } => {
                let o = self
                    .objects
                    .id_of(AbsObj::LocalSlot(func, *local))
                    .expect("object table enumerates all slots");
                cons.base.push((node(*dst), o));
            }
            Instr::AddrOfFunc { dst, func: f } => {
                let o = self
                    .objects
                    .id_of(AbsObj::Func(*f))
                    .expect("object table enumerates address-taken funcs");
                cons.base.push((node(*dst), o));
            }
            Instr::Malloc { dst, site, .. } => {
                let o = self
                    .objects
                    .id_of(AbsObj::Alloc(*site))
                    .expect("object table enumerates alloc sites");
                cons.base.push((node(*dst), o));
            }
            Instr::Copy {
                dst,
                src: Operand::Local(s),
            } => cons.copy.push((node(*s), node(*dst))),
            Instr::PtrAdd {
                dst,
                base: Operand::Local(b),
                ..
            } => cons.copy.push((node(*b), node(*dst))),
            Instr::Load {
                dst,
                addr: Operand::Local(addr),
                ..
            } => cons.loads.push(LoadC {
                addr: node(*addr),
                dst: node(*dst),
            }),
            Instr::Store {
                addr: Operand::Local(addr),
                val: Operand::Local(v),
                ..
            } => cons.stores.push(StoreC {
                addr: node(*addr),
                val: node(*v),
            }),
            Instr::Call { dst, callee, args } | Instr::Spawn { dst, callee, args } => {
                match callee {
                    Callee::Direct(t) => {
                        let tf = &program.funcs[t.index()];
                        for (ai, arg) in args.iter().enumerate() {
                            if ai >= tf.params.len() {
                                break;
                            }
                            if let Operand::Local(l) = arg {
                                cons.copy
                                    .push((node(*l), self.var_node(*t, tf.params[ai])));
                            }
                        }
                        if let Some(d) = dst {
                            for &r in &cons.ret_srcs[t.index()] {
                                cons.copy.push((r, node(*d)));
                            }
                        }
                    }
                    Callee::Indirect(op) => {
                        if let Operand::Local(l) = op {
                            cons.indirect.push(IndirectSite {
                                caller: func,
                                callee_node: node(*l),
                                args: args.clone(),
                                dst: *dst,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// The reference fixpoint: re-walk all constraints until stable.
    fn solve_naive(&mut self, program: &Program, cons: Constraints) {
        for &(n, o) in &cons.base {
            self.pts[n].insert(o);
        }
        let mut copy_edges = cons.copy;
        let mut resolved_pairs: BTreeSet<(usize, u32)> = BTreeSet::new();
        loop {
            let mut changed = false;
            for &(src, dst) in &copy_edges {
                changed |= self.union_into(src, dst);
            }
            for l in &cons.loads {
                let objs: Vec<ObjId> = self.pts[l.addr].iter().copied().collect();
                for o in objs {
                    let src = self.content_node(o);
                    changed |= self.union_into(src, l.dst);
                }
            }
            for s in &cons.stores {
                let objs: Vec<ObjId> = self.pts[s.addr].iter().copied().collect();
                for o in objs {
                    let dst = self.content_node(o);
                    changed |= self.union_into(s.val, dst);
                }
            }
            // Indirect call resolution.
            let mut new_edges: Vec<(usize, usize)> = Vec::new();
            for (site_idx, site) in cons.indirect.iter().enumerate() {
                let targets: Vec<FuncId> = self.pts[site.callee_node]
                    .iter()
                    .filter_map(|o| match self.objects.get(*o) {
                        AbsObj::Func(t) => Some(t),
                        _ => None,
                    })
                    .collect();
                for t in targets {
                    if !resolved_pairs.insert((site_idx, t.0)) {
                        continue;
                    }
                    changed = true;
                    let callee = &program.funcs[t.index()];
                    for (ai, arg) in site.args.iter().enumerate() {
                        if ai >= callee.params.len() {
                            break;
                        }
                        if let Operand::Local(l) = arg {
                            new_edges.push((
                                self.var_node(site.caller, *l),
                                self.var_node(t, callee.params[ai]),
                            ));
                        }
                    }
                    if let Some(d) = site.dst {
                        for &r in &cons.ret_srcs[t.index()] {
                            new_edges.push((r, self.var_node(site.caller, d)));
                        }
                    }
                }
            }
            copy_edges.extend(new_edges);
            if !changed {
                break;
            }
        }
    }

    /// Record per-access object sets (function objects are not memory).
    fn record_accesses(&mut self, program: &Program) {
        for f in &program.funcs {
            for b in &f.blocks {
                for i in &b.instrs {
                    let (addr, access) = match i {
                        Instr::Load { addr, access, .. } => (*addr, *access),
                        Instr::Store { addr, access, .. } => (*addr, *access),
                        _ => continue,
                    };
                    if let Operand::Local(l) = addr {
                        let set = self.pts[self.var_node(f.id, l)]
                            .iter()
                            .copied()
                            .filter(|o| !matches!(self.objects.get(*o), AbsObj::Func(_)))
                            .collect();
                        self.access_objs[access.index()] = set;
                    }
                }
            }
        }
    }

    fn var_node(&self, f: FuncId, l: LocalId) -> usize {
        self.var_base[f.index()] + l.index()
    }

    fn content_node(&self, o: ObjId) -> usize {
        self.n_nodes - self.objects.len() + o.index()
    }

    fn union_into(&mut self, src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        let add: Vec<ObjId> = self.pts[src]
            .iter()
            .filter(|o| !self.pts[dst].contains(o))
            .copied()
            .collect();
        if add.is_empty() {
            return false;
        }
        self.pts[dst].extend(add);
        true
    }

    /// The points-to set of a local variable.
    pub fn points_to(&self, func: FuncId, local: LocalId) -> &BTreeSet<ObjId> {
        &self.pts[self.var_node(func, local)]
    }

    /// The points-to set of an operand (`Const` operands point nowhere).
    pub fn points_to_operand(&self, func: FuncId, op: Operand) -> &BTreeSet<ObjId> {
        match op {
            Operand::Local(l) => self.points_to(func, l),
            Operand::Const(_) => &self.empty,
        }
    }

    /// Objects a given memory access may touch.
    pub fn objects_of_access(&self, access: AccessId) -> &BTreeSet<ObjId> {
        &self.access_objs[access.index()]
    }

    /// The object table the analysis ran over.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }
}

/// The difference-propagation worklist solver state.
///
/// Node numbering matches [`Andersen`]: locals first (per `var_base`),
/// then one *content* node per abstract object. Each node holds a dense
/// bitset over object ids. `parent` is a union-find forest: nodes on a
/// detected copy cycle are collapsed into one representative, which
/// inherits their sets, edges, and pending constraints.
struct Worklist<'p> {
    program: &'p Program,
    objects: &'p ObjectTable,
    var_base: &'p [usize],
    n_obj_base: usize,
    parent: Vec<usize>,
    /// Current points-to set, per representative.
    pts: Vec<PtsSet>,
    /// Portion of `pts` already propagated to successors/constraints.
    prev: Vec<PtsSet>,
    /// Copy-edge successors (targets may be stale ids; canonicalize on use).
    succ: Vec<Vec<usize>>,
    /// Dedup for copy edges, keyed by representatives at insertion time.
    edge_set: HashSet<(usize, usize)>,
    /// Load destinations keyed by the address node.
    load_dsts: Vec<Vec<usize>>,
    /// Store value sources keyed by the address node.
    store_vals: Vec<Vec<usize>>,
    /// Indirect call sites keyed by the callee-pointer node.
    sites_at: Vec<Vec<usize>>,
    sites: &'p [IndirectSite],
    resolved: HashSet<(usize, u32)>,
    ret_srcs: &'p [Vec<usize>],
    /// Copy edges already examined by lazy cycle detection.
    lcd_done: HashSet<(usize, usize)>,
    queued: Vec<bool>,
    work: VecDeque<usize>,
    /// Reusable delta buffer — one allocation for the whole solve.
    scratch: PtsSet,
}

impl<'p> Worklist<'p> {
    fn solve(a: &mut Andersen, program: &'p Program, cons: &'p Constraints) {
        let n = a.n_nodes;
        let universe = a.objects.len();
        let mut w = Worklist {
            program,
            objects: &a.objects,
            var_base: &a.var_base,
            n_obj_base: n - universe,
            parent: (0..n).collect(),
            pts: vec![PtsSet::new(universe); n],
            prev: vec![PtsSet::new(universe); n],
            succ: vec![Vec::new(); n],
            edge_set: HashSet::new(),
            load_dsts: vec![Vec::new(); n],
            store_vals: vec![Vec::new(); n],
            sites_at: vec![Vec::new(); n],
            sites: &cons.indirect,
            resolved: HashSet::new(),
            ret_srcs: &cons.ret_srcs,
            lcd_done: HashSet::new(),
            queued: vec![false; n],
            work: VecDeque::new(),
            scratch: PtsSet::new(universe),
        };
        for &(src, dst) in &cons.copy {
            w.add_edge(src, dst);
        }
        for l in &cons.loads {
            w.load_dsts[l.addr].push(l.dst);
        }
        for s in &cons.stores {
            w.store_vals[s.addr].push(s.val);
        }
        for (i, site) in cons.indirect.iter().enumerate() {
            w.sites_at[site.callee_node].push(i);
        }
        for &(node, o) in &cons.base {
            let r = w.find(node);
            if w.pts[r].insert(o.index()) {
                w.enqueue(r);
            }
        }
        let mut pops = 0u64;
        let t0 = std::time::Instant::now();
        while let Some(raw) = w.work.pop_front() {
            w.queued[raw] = false;
            let node = w.find(raw);
            if node != raw {
                // Collapsed while queued; its representative carries on.
                w.enqueue(node);
                continue;
            }
            pops += 1;
            w.process(node);
        }
        if std::env::var_os("CHIMERA_PTA_TRACE").is_some() {
            eprintln!(
                "solve: {} nodes, {} pops, {} edges, {} lcd probes, {:?}",
                n,
                pops,
                w.edge_set.len(),
                w.lcd_done.len(),
                t0.elapsed()
            );
        }
        // Materialize results for the public (BTreeSet-based) API.
        for v in 0..n {
            let r = w.find(v);
            a.pts[v] = w.pts[r].iter().map(|i| ObjId(i as u32)).collect();
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn enqueue(&mut self, n: usize) {
        if !self.queued[n] {
            self.queued[n] = true;
            self.work.push_back(n);
        }
    }

    fn content_node(&self, o: usize) -> usize {
        self.n_obj_base + o
    }

    /// Union `pts[src]` into `pts[dst]` (both representatives).
    fn union_pts(pts: &mut [PtsSet], src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        if src < dst {
            let (a, b) = pts.split_at_mut(dst);
            b[0].union_from(&a[src])
        } else {
            let (a, b) = pts.split_at_mut(src);
            a[dst].union_from(&b[0])
        }
    }

    /// Add a copy edge `src -> dst`, immediately propagating what `src`
    /// already holds.
    fn add_edge(&mut self, src: usize, dst: usize) {
        let (s, d) = (self.find(src), self.find(dst));
        if s == d || !self.edge_set.insert((s, d)) {
            return;
        }
        self.succ[s].push(d);
        if Self::union_pts(&mut self.pts, s, d) {
            self.enqueue(d);
        }
    }

    /// Propagate the delta of `n` (a representative) since its last visit.
    fn process(&mut self, n: usize) {
        let mut delta = std::mem::take(&mut self.scratch);
        delta.assign_minus(&self.pts[n], &self.prev[n]);
        if delta.is_empty() {
            self.scratch = delta;
            return;
        }
        self.prev[n].union_from(&self.pts[n]);

        // Complex constraints fire per *new* object. Most nodes have no
        // complex constraints attached, so only walk the delta's bits when
        // a list is non-empty.
        if !self.load_dsts[n].is_empty() {
            let load_dsts = std::mem::take(&mut self.load_dsts[n]);
            for o in delta.iter() {
                let content = self.content_node(o);
                for &dst in &load_dsts {
                    self.add_edge(content, dst);
                }
            }
            self.restore(n, load_dsts, |w| &mut w.load_dsts);
        }

        if !self.store_vals[n].is_empty() {
            let store_vals = std::mem::take(&mut self.store_vals[n]);
            for o in delta.iter() {
                let content = self.content_node(o);
                for &val in &store_vals {
                    self.add_edge(val, content);
                }
            }
            self.restore(n, store_vals, |w| &mut w.store_vals);
        }

        // On-the-fly indirect call resolution: new function objects at a
        // callee-pointer node wire up parameter/return copy edges.
        if !self.sites_at[n].is_empty() {
            let sites_at = std::mem::take(&mut self.sites_at[n]);
            for o in delta.iter() {
                if let AbsObj::Func(t) = self.objects.get(ObjId(o as u32)) {
                    for &site_idx in &sites_at {
                        self.resolve_site(site_idx, t);
                    }
                }
            }
            self.restore(n, sites_at, |w| &mut w.sites_at);
        }

        // Difference propagation along copy edges.
        if !self.succ[n].is_empty() {
            let succ = std::mem::take(&mut self.succ[n]);
            for &s in &succ {
                let d = self.find(s);
                if d == n {
                    continue;
                }
                if self.pts[d].union_from(&delta) {
                    self.enqueue(d);
                } else if self.pts[d] == self.pts[n] && self.lcd_done.insert((n, d)) {
                    // Lazy cycle detection: equal sets across an edge
                    // suggest a copy cycle; collapse it so the chain
                    // converges in one pass.
                    self.try_collapse(n, d);
                }
            }
            self.restore(n, succ, |w| &mut w.succ);
        }
        self.scratch = delta;
    }

    /// Put a temporarily-taken per-node list back, re-homing it if `n` was
    /// collapsed into another representative while it was out.
    fn restore(
        &mut self,
        n: usize,
        mut taken: Vec<usize>,
        field: impl Fn(&mut Self) -> &mut Vec<Vec<usize>>,
    ) {
        let home = self.find(n);
        let slot = &mut field(self)[home];
        if slot.is_empty() {
            *slot = taken;
        } else {
            slot.append(&mut taken);
        }
    }

    fn resolve_site(&mut self, site_idx: usize, t: FuncId) {
        if !self.resolved.insert((site_idx, t.0)) {
            return;
        }
        let site = &self.sites[site_idx];
        let caller = site.caller;
        let callee = &self.program.funcs[t.index()];
        let var = |base: &[usize], f: FuncId, l: LocalId| base[f.index()] + l.index();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (ai, arg) in site.args.iter().enumerate() {
            if ai >= callee.params.len() {
                break;
            }
            if let Operand::Local(l) = arg {
                edges.push((
                    var(self.var_base, caller, *l),
                    var(self.var_base, t, callee.params[ai]),
                ));
            }
        }
        if let Some(d) = site.dst {
            for &r in &self.ret_srcs[t.index()] {
                edges.push((r, var(self.var_base, caller, d)));
            }
        }
        for (s, d) in edges {
            self.add_edge(s, d);
        }
    }

    /// Search for a copy path `to ⇝ from` (which, with the existing edge
    /// `from -> to`, closes a cycle) and collapse every node on it.
    fn try_collapse(&mut self, from: usize, to: usize) {
        let mut stack = vec![to];
        let mut came_from: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        came_from.insert(to, to);
        let mut found = false;
        while let Some(x) = stack.pop() {
            let succ = self.succ[x].clone();
            for s in succ {
                let d = self.find(s);
                if d == from {
                    came_from.entry(d).or_insert(x);
                    found = true;
                    stack.clear();
                    break;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = came_from.entry(d) {
                    e.insert(x);
                    stack.push(d);
                }
            }
            if found {
                break;
            }
        }
        if !found {
            return;
        }
        let mut cycle = vec![from];
        let mut cur = came_from[&from];
        while cur != to {
            cycle.push(cur);
            cur = came_from[&cur];
        }
        cycle.push(to);
        self.collapse(&cycle);
    }

    /// Union-find collapse of a set of mutually-reaching nodes into one
    /// representative that inherits sets, edges, and pending constraints.
    fn collapse(&mut self, nodes: &[usize]) {
        let mut reps: Vec<usize> = nodes.iter().map(|&x| self.find(x)).collect();
        reps.sort_unstable();
        reps.dedup();
        let r = reps[0];
        for &m in &reps[1..] {
            self.parent[m] = r;
            let m_pts = std::mem::take(&mut self.pts[m]);
            self.pts[r].union_from(&m_pts);
            // Only what *both* halves have already pushed out can be
            // considered propagated by the merged node.
            let m_prev = std::mem::take(&mut self.prev[m]);
            self.prev[r].intersect_with(&m_prev);
            let mut v = std::mem::take(&mut self.succ[m]);
            self.succ[r].append(&mut v);
            let mut v = std::mem::take(&mut self.load_dsts[m]);
            self.load_dsts[r].append(&mut v);
            let mut v = std::mem::take(&mut self.store_vals[m]);
            self.store_vals[r].append(&mut v);
            let mut v = std::mem::take(&mut self.sites_at[m]);
            self.sites_at[r].append(&mut v);
        }
        self.enqueue(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    fn local_named(p: &Program, func: &str, name: &str) -> (FuncId, LocalId) {
        let f = p.func_by_name(func).unwrap();
        let l = f.locals.iter().position(|l| l.name == name).unwrap();
        (f.id, LocalId(l as u32))
    }

    fn analyze(src: &str) -> (Program, Andersen) {
        let p = compile(src).unwrap();
        let objects = ObjectTable::build(&p);
        let a = Andersen::analyze(&p, &objects);
        (p, a)
    }

    /// Assert the worklist and naive solvers agree on every local's
    /// points-to set and every access's object set.
    fn assert_matches_naive(src: &str) {
        let p = compile(src).unwrap();
        let objects = ObjectTable::build(&p);
        let fast = Andersen::analyze(&p, &objects);
        let naive = Andersen::analyze_naive(&p, &objects);
        assert_eq!(fast.pts, naive.pts, "points-to sets diverge for:\n{src}");
        assert_eq!(
            fast.access_objs, naive.access_objs,
            "access object sets diverge for:\n{src}"
        );
    }

    #[test]
    fn address_of_global_is_precise() {
        let (p, a) = analyze("int g; int h; int main() { int *q; q = &g; return *q; }");
        let (f, q) = local_named(&p, "main", "q");
        let pts = a.points_to(f, q);
        assert_eq!(pts.len(), 1);
        assert_eq!(a.objects().get(*pts.iter().next().unwrap()), AbsObj::Global(chimera_minic::ir::GlobalId(0)));
    }

    #[test]
    fn inclusion_distinguishes_directions() {
        // Andersen (unlike Steensgaard) keeps q1 and q2 separate.
        let (p, a) = analyze(
            "int g; int h;
             int main() { int *q1; int *q2; int *r; q1 = &g; q2 = &h; r = q1; return *r; }",
        );
        let (f, q1) = local_named(&p, "main", "q1");
        let (_, q2) = local_named(&p, "main", "q2");
        let (_, r) = local_named(&p, "main", "r");
        assert_eq!(a.points_to(f, q1).len(), 1);
        assert_eq!(a.points_to(f, q2).len(), 1);
        assert_eq!(a.points_to(f, r).len(), 1);
        assert_ne!(a.points_to(f, q1), a.points_to(f, q2));
    }

    #[test]
    fn flow_through_heap_cell() {
        let (p, a) = analyze(
            "int g;
             int main() {
               int **cell; int *q;
               cell = malloc(1);
               *cell = &g;
               q = *cell;
               return *q;
             }",
        );
        let (f, q) = local_named(&p, "main", "q");
        let pts = a.points_to(f, q);
        assert!(pts
            .iter()
            .any(|o| matches!(a.objects().get(*o), AbsObj::Global(_))));
    }

    #[test]
    fn parameter_passing_propagates() {
        let (p, a) = analyze(
            "int g;
             void sink(int *p) { *p = 1; }
             int main() { sink(&g); return g; }",
        );
        let (f, pp) = local_named(&p, "sink", "p");
        let pts = a.points_to(f, pp);
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn return_value_propagates() {
        let (p, a) = analyze(
            "int g;
             int *get() { return &g; }
             int main() { int *q; q = get(); return *q; }",
        );
        let (f, q) = local_named(&p, "main", "q");
        assert_eq!(a.points_to(f, q).len(), 1);
    }

    #[test]
    fn indirect_call_parameters_flow() {
        let (p, a) = analyze(
            "int g;
             void sink(int *p) { *p = 1; }
             int main() { int *fp; fp = sink; fp(&g); return g; }",
        );
        let (f, pp) = local_named(&p, "sink", "p");
        assert_eq!(a.points_to(f, pp).len(), 1, "args flow through fp call");
    }

    #[test]
    fn access_objects_recorded() {
        let (p, a) = analyze("int g; int main() { int *q; q = &g; *q = 7; return 0; }");
        // Find the store access.
        let store = p.accesses.iter().find(|ac| ac.is_write).unwrap();
        let objs = a.objects_of_access(store.id);
        assert_eq!(objs.len(), 1);
    }

    #[test]
    fn malloc_sites_distinct() {
        let (p, a) = analyze(
            "int main() { int *x; int *y; x = malloc(4); y = malloc(4); return 0; }",
        );
        let (f, x) = local_named(&p, "main", "x");
        let (_, y) = local_named(&p, "main", "y");
        assert_ne!(a.points_to(f, x), a.points_to(f, y));
    }

    #[test]
    fn pointer_arithmetic_preserves_target() {
        // Paper §3.2: after arithmetic the pointer is assumed to point to
        // the same object.
        let (p, a) = analyze(
            "int arr[8];
             int main() { int *q; q = &arr[0]; q = q + 3; *q = 1; return 0; }",
        );
        let (f, q) = local_named(&p, "main", "q");
        let pts = a.points_to(f, q);
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn copy_cycle_converges_and_matches_naive() {
        // p -> q -> r -> p is a copy cycle (through the loop body); all
        // three end up with the same set, and cycle collapsing must not
        // change the result.
        let src = "int g; int h; int c;
             int main() {
                int *p; int *q; int *r;
                p = &g; q = &h;
                while (c) { q = p; r = q; p = r; }
                return *p;
             }";
        assert_matches_naive(src);
        let (p, a) = analyze(src);
        let (f, pp) = local_named(&p, "main", "p");
        let (_, qq) = local_named(&p, "main", "q");
        let (_, rr) = local_named(&p, "main", "r");
        assert_eq!(a.points_to(f, pp), a.points_to(f, qq));
        assert_eq!(a.points_to(f, qq), a.points_to(f, rr));
        assert_eq!(a.points_to(f, pp).len(), 2);
    }

    #[test]
    fn long_copy_chain_matches_naive() {
        // A linear chain long enough that the naive solver needs many
        // whole-system passes; delta propagation does it in one sweep.
        let mut body = String::from("p0 = &g;");
        for i in 1..40 {
            body.push_str(&format!(" p{i} = p{};", i - 1));
        }
        let decls: String = (0..40).map(|i| format!(" int *p{i};")).collect();
        let src =
            format!("int g;\nint main() {{ {decls} {body} return *p39; }}");
        assert_matches_naive(&src);
        let (p, a) = analyze(&src);
        let (f, last) = local_named(&p, "main", "p39");
        assert_eq!(a.points_to(f, last).len(), 1);
    }

    #[test]
    fn indirect_spawn_and_heap_mix_matches_naive() {
        assert_matches_naive(
            "int g; int *shared;
             void w1(int *p) { *p = 1; }
             void w2(int *p) { shared = p; }
             int main() {
                int *fp; int t; int *buf;
                buf = malloc(4);
                if (g) { fp = w1; } else { fp = w2; }
                t = spawn(fp, buf);
                fp(&g);
                join(t);
                return *shared;
             }",
        );
    }

    #[test]
    fn store_load_through_same_cell_matches_naive() {
        assert_matches_naive(
            "int g; int h;
             int main() {
                int **c; int *a; int *b;
                c = malloc(1);
                *c = &g; *c = &h;
                a = *c; b = a;
                return *b;
             }",
        );
    }
}
