//! Symbolic linear expressions over loop-entry values.

use chimera_minic::ir::{GlobalId, LocalId};
use std::collections::BTreeMap;
use std::fmt;

/// A symbol: a quantity whose value is fixed at loop entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// The value of a (loop-invariant) register local at loop entry.
    Entry(LocalId),
    /// The base address of a global.
    GlobalBase(GlobalId),
    /// The base address of a slot local of the current frame.
    SlotBase(LocalId),
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Entry(l) => write!(f, "{l}@entry"),
            Sym::GlobalBase(g) => write!(f, "&{g}"),
            Sym::SlotBase(l) => write!(f, "&{l}"),
        }
    }
}

/// A linear expression `Σ coeff·sym + konst` over loop-entry symbols.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymExpr {
    /// Non-zero coefficients per symbol.
    pub terms: BTreeMap<Sym, i64>,
    /// Constant term.
    pub konst: i64,
}

impl SymExpr {
    /// The constant expression `k`.
    pub fn konst(k: i64) -> SymExpr {
        SymExpr {
            terms: BTreeMap::new(),
            konst: k,
        }
    }

    /// The expression `1·sym`.
    pub fn sym(s: Sym) -> SymExpr {
        let mut terms = BTreeMap::new();
        terms.insert(s, 1);
        SymExpr { terms, konst: 0 }
    }

    /// True if the expression has no symbolic part.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &SymExpr) -> SymExpr {
        let mut out = self.clone();
        out.konst += other.konst;
        for (s, c) in &other.terms {
            let e = out.terms.entry(*s).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(s);
            }
        }
        out
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &SymExpr) -> SymExpr {
        self.add(&other.scale(-1))
    }

    /// Multiply by a constant.
    pub fn scale(&self, k: i64) -> SymExpr {
        if k == 0 {
            return SymExpr::konst(0);
        }
        SymExpr {
            terms: self.terms.iter().map(|(s, c)| (*s, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// Add a constant.
    pub fn offset(&self, k: i64) -> SymExpr {
        let mut out = self.clone();
        out.konst += k;
        out
    }

    /// Evaluate given concrete symbol values (for tests and the FM
    /// cross-check). Missing symbols evaluate to 0.
    pub fn eval(&self, values: &BTreeMap<Sym, i64>) -> i64 {
        self.konst
            + self
                .terms
                .iter()
                .map(|(s, c)| c * values.get(s).copied().unwrap_or(0))
                .sum::<i64>()
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (s, c) in &self.terms {
            if first {
                write!(f, "{c}*{s}")?;
                first = false;
            } else {
                write!(f, " + {c}*{s}")?;
            }
        }
        if first {
            write!(f, "{}", self.konst)
        } else if self.konst != 0 {
            write!(f, " + {}", self.konst)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Sym {
        Sym::Entry(LocalId(i))
    }

    #[test]
    fn add_and_cancel() {
        let a = SymExpr::sym(l(0)).offset(3);
        let b = SymExpr::sym(l(0)).scale(-1).offset(4);
        let s = a.add(&b);
        assert!(s.is_const());
        assert_eq!(s.konst, 7);
    }

    #[test]
    fn scale_distributes() {
        let a = SymExpr::sym(l(1)).offset(2).scale(3);
        assert_eq!(a.terms.get(&l(1)), Some(&3));
        assert_eq!(a.konst, 6);
    }

    #[test]
    fn eval_concrete() {
        let mut vals = BTreeMap::new();
        vals.insert(l(0), 10);
        vals.insert(l(1), -2);
        let e = SymExpr::sym(l(0)).scale(2).add(&SymExpr::sym(l(1))).offset(5);
        assert_eq!(e.eval(&vals), 23);
    }

    #[test]
    fn display_readable() {
        let e = SymExpr::sym(l(0)).scale(4).offset(-1);
        assert_eq!(e.to_string(), "4*%0@entry + -1");
        assert_eq!(SymExpr::konst(9).to_string(), "9");
    }
}
