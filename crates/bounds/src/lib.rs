//! Symbolic address-bounds analysis for loops (paper §5, after Rugina &
//! Rinard).
//!
//! For a racy memory access inside a loop, Chimera derives symbolic lower
//! and upper bounds on the addresses the access can touch across the whole
//! loop execution, expressed over values available at loop entry. The
//! instrumenter then hoists one *loop-lock* guarding exactly that address
//! range in front of the loop, instead of locking inside every iteration —
//! and threads working on disjoint partitions of an array (the paper's
//! `radix` example, Fig. 4) still run in parallel because their ranges do
//! not overlap.
//!
//! Like the paper's implementation, the analysis:
//!
//! * is intraprocedural and applies to loops without calls in the body
//!   (§5.3);
//! * handles affine address computations over loop-invariant values and
//!   basic induction variables;
//! * reports `±∞` when the address depends on memory contents (e.g.
//!   `rank[key_from[j]]`) or unsupported arithmetic (`%`, `&`, `|`) —
//!   precisely the imprecision cases §5.2 describes.
//!
//! The [`fm`] module provides the Fourier–Motzkin core standing in for the
//! paper's use of `lpsolve` (see DESIGN.md §2).

#![warn(missing_docs)]

pub mod fm;
pub mod iv;
pub mod range;
pub mod sym;

pub use iv::{find_induction_vars, IndVar};
pub use range::{loop_access_bounds, Bound, LoopBounds};
pub use sym::{Sym, SymExpr};

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::cfg::{Cfg, Dominators};
    use chimera_minic::compile;
    use chimera_minic::loops::LoopForest;
    use std::collections::BTreeMap;

    /// Cross-check the closed-form symbolic bounds against the
    /// Fourier–Motzkin engine (the role lpsolve played in the paper): for
    /// a concrete instantiation of the entry symbols, encode the loop
    /// constraints as a linear system, project onto the address variable,
    /// and compare with the evaluated symbolic bounds.
    #[test]
    fn symbolic_bounds_agree_with_fourier_motzkin() {
        let p = compile(
            "int data[64];
             void worker(int *ptr, int n) {
                int j;
                for (j = 0; j < n; j = j + 1) { ptr[j] = j; }
             }
             int main() { worker(&data[0], 32); return 0; }",
        )
        .unwrap();
        let f = p.func_by_name("worker").unwrap();
        let cfg = Cfg::new(f);
        let dom = Dominators::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        let bounds = loop_access_bounds(f, &forest, 0);
        let store = p.accesses.iter().find(|a| a.is_write).unwrap();
        let b = bounds.get(&store.id).expect("analyzed");
        let (lo_e, hi_e) = (b.lo.as_expr().unwrap(), b.hi.as_expr().unwrap());

        // Concrete instantiation: ptr = 100, n = 32, j@entry = 0.
        let mut values: BTreeMap<Sym, i64> = BTreeMap::new();
        for e in [lo_e, hi_e] {
            for s in e.terms.keys() {
                match s {
                    Sym::Entry(l) => {
                        let name = &f.locals[l.index()].name;
                        let v = match name.as_str() {
                            "ptr" => 100,
                            "n" => 32,
                            "j" => 0,
                            _ => 0,
                        };
                        values.insert(*s, v);
                    }
                    _ => {
                        values.insert(*s, 0);
                    }
                }
            }
        }
        let lo_val = lo_e.eval(&values);
        let hi_val = hi_e.eval(&values);

        // FM encoding: addr = ptr + j, 0 <= j <= n - 1, ptr = 100, n = 32.
        let (addr, j, ptr, n) = (0u32, 1u32, 2u32, 3u32);
        let mut sys = fm::System::new();
        sys.le_zero(&[(addr, 1), (ptr, -1), (j, -1)], 0);
        sys.le_zero(&[(addr, -1), (ptr, 1), (j, 1)], 0);
        sys.var_ge(j, 0);
        sys.le_zero(&[(j, 1), (n, -1)], 1); // j <= n - 1
        sys.var_ge(ptr, 100).var_le(ptr, 100);
        sys.var_ge(n, 32).var_le(n, 32);
        let (fm_lo, fm_hi) = sys.bounds_of(addr).expect("feasible");
        assert_eq!(fm_lo, Some(lo_val as i128), "lower bounds agree");
        assert_eq!(fm_hi, Some(hi_val as i128), "upper bounds agree");
        assert_eq!(lo_val, 100);
        assert_eq!(hi_val, 131);
    }

    #[test]
    fn end_to_end_array_fill_loop() {
        let p = compile(
            "int rank[32];
             int main() { int i; int radix; radix = 16;
                for (i = 0; i < radix; i = i + 1) { rank[i] = 0; }
                return 0; }",
        )
        .unwrap();
        let f = p.func_by_name("main").unwrap();
        let cfg = Cfg::new(f);
        let dom = Dominators::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let bounds = loop_access_bounds(f, &forest, 0);
        // The store rank[i] = 0 gets bounds [&rank[0], &rank[radix-1]].
        let store = p.accesses.iter().find(|a| a.is_write).unwrap();
        let b = bounds.get(&store.id).expect("store analyzed");
        let (lo, hi) = (b.lo.as_expr().unwrap(), b.hi.as_expr().unwrap());
        // lo = GlobalBase(rank) + 0, hi = GlobalBase(rank) + radix@entry - 1
        assert!(lo.terms.iter().any(|(s, c)| matches!(s, Sym::GlobalBase(_)) && *c == 1));
        assert_eq!(lo.konst, 0);
        assert!(hi.terms.iter().any(|(s, c)| matches!(s, Sym::Entry(_)) && *c == 1));
        assert_eq!(hi.konst, -1);
    }
}
