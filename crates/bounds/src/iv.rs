//! Basic induction-variable detection and symbolic trip ranges.

use crate::sym::{Sym, SymExpr};
use chimera_minic::ast::BinOp;
use chimera_minic::ir::{Function, Instr, LocalId, Operand, Terminator};
use chimera_minic::loops::Loop;

/// A basic induction variable: a register whose only definitions inside the
/// loop have the form `x = x ± c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndVar {
    /// The variable.
    pub local: LocalId,
    /// Net step per definition (sign included).
    pub step: i64,
    /// Inclusive symbolic lower bound over loop-entry symbols, if the
    /// header test pins one down.
    pub lo: Option<SymExpr>,
    /// Inclusive symbolic upper bound.
    pub hi: Option<SymExpr>,
}

/// Find basic induction variables of `lp` and derive their ranges from the
/// header's exit test.
pub fn find_induction_vars(func: &Function, lp: &Loop) -> Vec<IndVar> {
    let mut cands: Vec<IndVar> = Vec::new();
    // Group definitions inside the loop by defined local.
    let mut defs: std::collections::BTreeMap<LocalId, Vec<&Instr>> =
        std::collections::BTreeMap::new();
    for b in &lp.blocks {
        for i in &func.block(*b).instrs {
            if let Some(d) = def_of(i) {
                defs.entry(d).or_default().push(i);
            }
        }
    }
    for (local, instrs) in &defs {
        // Every def must amount to x = x ± c with one consistent step. The
        // lowerer emits `t = x + c; x = t`, so follow one def chain through
        // copies and temporaries.
        let mut step: Option<i64> = None;
        let mut ok = true;
        for i in instrs {
            match step_of(i, *local, &defs, 0) {
                Some(c) => {
                    if step.is_some_and(|s| s != c) {
                        ok = false;
                    }
                    step = Some(c);
                }
                None => ok = false,
            }
        }
        if let (true, Some(step)) = (ok, step) {
            if step != 0 {
                cands.push(IndVar {
                    local: *local,
                    step,
                    lo: None,
                    hi: None,
                });
            }
        }
    }

    // Derive ranges from the header exit test.
    let header = func.block(lp.header);
    if let Terminator::Branch { cond, then_bb, .. } = &header.term {
        // The branch must exit the loop on the false edge (the common
        // `for`/`while` shape produced by the lowerer): then = body.
        let body_on_then = lp.blocks.contains(then_bb);
        if let Operand::Local(cond_local) = cond {
            // Find the comparison defining the condition in the header.
            let cmp = header.instrs.iter().rev().find_map(|i| match i {
                Instr::BinOp { dst, op, a, b } if dst == cond_local => Some((*op, *a, *b)),
                _ => None,
            });
            if let (Some((op, a, b)), true) = (cmp, body_on_then) {
                for iv in &mut cands {
                    apply_test(iv, op, a, b, func, lp);
                }
            }
        }
    }
    // Initial value bound: the IV's value at loop entry.
    for iv in &mut cands {
        let entry = SymExpr::sym(Sym::Entry(iv.local));
        if iv.step > 0 {
            iv.lo = Some(entry);
        } else {
            iv.hi = Some(entry);
        }
    }
    cands.sort_by_key(|iv| iv.local);
    cands
}

/// Does instruction `i` compute `x_old ± c` (possibly through one level of
/// temporaries)? Returns the signed step.
fn step_of(
    i: &Instr,
    x: LocalId,
    defs: &std::collections::BTreeMap<LocalId, Vec<&Instr>>,
    depth: u32,
) -> Option<i64> {
    if depth > 4 {
        return None;
    }
    match i {
        Instr::BinOp {
            op: BinOp::Add,
            a: Operand::Local(src),
            b: Operand::Const(c),
            ..
        } if *src == x => Some(*c),
        Instr::BinOp {
            op: BinOp::Add,
            a: Operand::Const(c),
            b: Operand::Local(src),
            ..
        } if *src == x => Some(*c),
        Instr::BinOp {
            op: BinOp::Sub,
            a: Operand::Local(src),
            b: Operand::Const(c),
            ..
        } if *src == x => Some(-*c),
        Instr::Copy {
            src: Operand::Local(t),
            ..
        } => {
            let t_defs = defs.get(t)?;
            if t_defs.len() != 1 {
                return None;
            }
            step_of(t_defs[0], x, defs, depth + 1)
        }
        _ => None,
    }
}

/// Refine an IV's range from the header comparison `a op b` (loop continues
/// while true).
fn apply_test(iv: &mut IndVar, op: BinOp, a: Operand, b: Operand, func: &Function, lp: &Loop) {
    // Normalize to `iv OP bound`.
    let (op, bound) = match (a, b) {
        (Operand::Local(l), other) if l == iv.local => (op, other),
        (other, Operand::Local(l)) if l == iv.local => (flip(op), other),
        _ => return,
    };
    // The bound must be loop-invariant.
    let bound_expr = match bound {
        Operand::Const(c) => SymExpr::konst(c),
        Operand::Local(l) => {
            if defined_in_loop(func, lp, l) {
                return;
            }
            SymExpr::sym(Sym::Entry(l))
        }
    };
    match (op, iv.step > 0) {
        (BinOp::Lt, true) => iv.hi = Some(bound_expr.offset(-1)),
        (BinOp::Le, true) => iv.hi = Some(bound_expr),
        (BinOp::Gt, false) => iv.lo = Some(bound_expr.offset(1)),
        (BinOp::Ge, false) => iv.lo = Some(bound_expr),
        (BinOp::Ne, up) => {
            // `i != n` with unit step behaves like < or > respectively.
            if iv.step == 1 && up {
                iv.hi = Some(bound_expr.offset(-1));
            } else if iv.step == -1 && !up {
                iv.lo = Some(bound_expr.offset(1));
            }
        }
        _ => {}
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// The destination register of a defining instruction.
pub fn def_of(i: &Instr) -> Option<LocalId> {
    match i {
        Instr::Copy { dst, .. }
        | Instr::UnOp { dst, .. }
        | Instr::BinOp { dst, .. }
        | Instr::AddrOfGlobal { dst, .. }
        | Instr::AddrOfLocal { dst, .. }
        | Instr::AddrOfFunc { dst, .. }
        | Instr::PtrAdd { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::Malloc { dst, .. }
        | Instr::SysInput { dst, .. } => Some(*dst),
        Instr::Call { dst, .. } | Instr::Spawn { dst, .. } | Instr::SysRead { dst, .. } => *dst,
        _ => None,
    }
}

/// Is `l` (re)defined anywhere inside the loop?
pub fn defined_in_loop(func: &Function, lp: &Loop, l: LocalId) -> bool {
    lp.blocks.iter().any(|b| {
        func.block(*b)
            .instrs
            .iter()
            .any(|i| def_of(i) == Some(l))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::cfg::{Cfg, Dominators};
    use chimera_minic::compile;
    use chimera_minic::loops::LoopForest;

    fn first_loop(src: &str) -> (chimera_minic::ir::Function, Loop) {
        let p = compile(src).unwrap();
        let f = p.func_by_name("main").unwrap().clone();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        let lp = forest.loops[0].clone();
        (f, lp)
    }

    #[test]
    fn simple_up_counter() {
        let (f, lp) = first_loop(
            "int main() { int i; int n; n = 10; int s;
               for (i = 0; i < n; i = i + 1) { s = s + 1; } return s; }",
        );
        let ivs = find_induction_vars(&f, &lp);
        // i is an IV with step 1; s is also x = x + 1 so it qualifies as a
        // basic IV too (harmless: its bounds are just unused).
        let i_name = f.locals.iter().position(|l| l.name == "i").unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.local == LocalId(i_name as u32))
            .expect("i is an induction variable");
        assert_eq!(iv.step, 1);
        let hi = iv.hi.as_ref().expect("upper bound from i < n");
        assert_eq!(hi.konst, -1);
        assert!(hi.terms.keys().any(|s| matches!(s, Sym::Entry(_))));
        let lo = iv.lo.as_ref().expect("lower bound is entry value");
        assert!(lo.terms.contains_key(&Sym::Entry(iv.local)));
    }

    #[test]
    fn down_counter() {
        let (f, lp) = first_loop(
            "int main() { int i; int s;
               for (i = 10; i > 0; i = i - 1) { s = s + i; } return s; }",
        );
        let ivs = find_induction_vars(&f, &lp);
        let i_name = f.locals.iter().position(|l| l.name == "i").unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.local == LocalId(i_name as u32))
            .unwrap();
        assert_eq!(iv.step, -1);
        let lo = iv.lo.as_ref().expect("lower bound from i > 0");
        assert!(lo.is_const());
        assert_eq!(lo.konst, 1);
    }

    #[test]
    fn constant_bound_le() {
        let (f, lp) = first_loop(
            "int main() { int i; int s; for (i = 0; i <= 7; i = i + 1) { s = s + 1; } return s; }",
        );
        let ivs = find_induction_vars(&f, &lp);
        let i_name = f.locals.iter().position(|l| l.name == "i").unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.local == LocalId(i_name as u32))
            .unwrap();
        assert_eq!(iv.hi.as_ref().unwrap().konst, 7);
    }

    #[test]
    fn non_unit_stride() {
        let (f, lp) = first_loop(
            "int main() { int i; int s; for (i = 0; i < 100; i = i + 4) { s = s + 1; } return s; }",
        );
        let ivs = find_induction_vars(&f, &lp);
        let i_name = f.locals.iter().position(|l| l.name == "i").unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.local == LocalId(i_name as u32))
            .unwrap();
        assert_eq!(iv.step, 4);
        assert_eq!(iv.hi.as_ref().unwrap().konst, 99);
    }

    #[test]
    fn loop_varying_bound_gives_no_range() {
        // Bound n changes inside the loop: no usable upper bound.
        let (f, lp) = first_loop(
            "int main() { int i; int n; n = 10;
               for (i = 0; i < n; i = i + 1) { n = n - 1; } return n; }",
        );
        let ivs = find_induction_vars(&f, &lp);
        let i_name = f.locals.iter().position(|l| l.name == "i").unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.local == LocalId(i_name as u32))
            .unwrap();
        assert!(iv.hi.is_none());
    }

    #[test]
    fn irregularly_updated_var_is_not_an_iv() {
        let (f, lp) = first_loop(
            "int main() { int i; int x;
               for (i = 0; i < 10; i = i + 1) { x = i * 2; } return x; }",
        );
        let ivs = find_induction_vars(&f, &lp);
        let x_name = f.locals.iter().position(|l| l.name == "x").unwrap();
        assert!(ivs.iter().all(|iv| iv.local != LocalId(x_name as u32)));
    }
}
