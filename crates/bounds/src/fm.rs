//! A small Fourier–Motzkin elimination engine over rationals.
//!
//! The paper's implementation generated linear-programming constraints from
//! the loop dataflow and solved them with `lpsolve`. This module is the
//! built-in replacement: a system of linear inequalities over integer
//! variables, variable elimination by Fourier–Motzkin, and projection onto
//! one variable to extract its implied bounds. The symbolic analysis in
//! [`crate::range`] uses closed forms for the affine cases; the FM engine
//! cross-checks those results in tests and handles ad-hoc constraint
//! queries.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A rational number with `i128` parts, always kept in lowest terms with a
/// positive denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Construct `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * num / g.max(1),
            den: (den * sign) / g.max(1),
        }
    }

    /// The integer `n`.
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Zero.
    pub fn zero() -> Rat {
        Rat::int(0)
    }

    /// Numerator (lowest terms).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (positive, lowest terms).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(self) -> i32 {
        self.num.signum() as i32
    }

    /// Comparison.
    pub fn lt(self, o: Rat) -> bool {
        self.num * o.den < o.num * self.den
    }

    /// `<=` comparison.
    pub fn le(self, o: Rat) -> bool {
        self.num * o.den <= o.num * self.den
    }

    /// Floor to an integer.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to an integer.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rat {
    type Output = Rat;

    fn add(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl Sub for Rat {
    type Output = Rat;

    fn sub(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl Mul for Rat {
    type Output = Rat;

    fn mul(self, o: Rat) -> Rat {
        Rat::new(self.num * o.num, self.den * o.den)
    }
}

impl Div for Rat {
    type Output = Rat;

    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den, self.den * o.num)
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// One inequality `Σ coeff·var + konst <= 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ineq {
    /// Variable coefficients.
    pub coeffs: BTreeMap<u32, Rat>,
    /// Constant term.
    pub konst: Rat,
}

impl Ineq {
    /// Build `Σ coeff·var + konst <= 0` from integer coefficients.
    pub fn le_zero(coeffs: &[(u32, i128)], konst: i128) -> Ineq {
        Ineq {
            coeffs: coeffs
                .iter()
                .filter(|(_, c)| *c != 0)
                .map(|(v, c)| (*v, Rat::int(*c)))
                .collect(),
            konst: Rat::int(konst),
        }
    }

    fn coeff(&self, v: u32) -> Rat {
        self.coeffs.get(&v).copied().unwrap_or_else(Rat::zero)
    }

    /// Evaluate at a concrete point; true if satisfied.
    pub fn satisfied(&self, point: &BTreeMap<u32, i128>) -> bool {
        let mut acc = self.konst;
        for (v, c) in &self.coeffs {
            acc = acc.add(c.mul(Rat::int(point.get(v).copied().unwrap_or(0))));
        }
        acc.le(Rat::zero())
    }
}

/// A conjunction of linear inequalities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct System {
    /// The inequalities.
    pub ineqs: Vec<Ineq>,
}

impl System {
    /// Empty (trivially satisfiable) system.
    pub fn new() -> System {
        System::default()
    }

    /// Add `Σ coeff·var + konst <= 0`.
    pub fn le_zero(&mut self, coeffs: &[(u32, i128)], konst: i128) -> &mut Self {
        self.ineqs.push(Ineq::le_zero(coeffs, konst));
        self
    }

    /// Add `var <= value`.
    pub fn var_le(&mut self, var: u32, value: i128) -> &mut Self {
        self.le_zero(&[(var, 1)], -value)
    }

    /// Add `var >= value`.
    pub fn var_ge(&mut self, var: u32, value: i128) -> &mut Self {
        self.le_zero(&[(var, -1)], value)
    }

    /// Eliminate `var` by Fourier–Motzkin: pair every lower bound with
    /// every upper bound; inequalities not mentioning `var` survive.
    pub fn eliminate(&self, var: u32) -> System {
        let mut lowers: Vec<&Ineq> = Vec::new(); // coeff < 0: gives var >= ...
        let mut uppers: Vec<&Ineq> = Vec::new(); // coeff > 0: gives var <= ...
        let mut rest: Vec<Ineq> = Vec::new();
        for q in &self.ineqs {
            match q.coeff(var).signum() {
                0 => rest.push(q.clone()),
                1 => uppers.push(q),
                _ => lowers.push(q),
            }
        }
        for lo in &lowers {
            for up in &uppers {
                // Normalize both to coefficient ±1 on var and add.
                let cl = lo.coeff(var); // negative
                let cu = up.coeff(var); // positive
                let mut coeffs: BTreeMap<u32, Rat> = BTreeMap::new();
                let mut konst = Rat::zero();
                // lo / |cl| + up / cu eliminates var.
                let scale_lo = Rat::int(1).div(Rat::int(-1).mul(cl)); // 1/|cl|
                let scale_up = Rat::int(1).div(cu);
                for (v, c) in &lo.coeffs {
                    if *v == var {
                        continue;
                    }
                    let e = coeffs.entry(*v).or_insert_with(Rat::zero);
                    *e = e.add(c.mul(scale_lo));
                }
                konst = konst.add(lo.konst.mul(scale_lo));
                for (v, c) in &up.coeffs {
                    if *v == var {
                        continue;
                    }
                    let e = coeffs.entry(*v).or_insert_with(Rat::zero);
                    *e = e.add(c.mul(scale_up));
                }
                konst = konst.add(up.konst.mul(scale_up));
                coeffs.retain(|_, c| c.signum() != 0);
                rest.push(Ineq { coeffs, konst });
            }
        }
        System { ineqs: rest }
    }

    /// Project out every variable except `var` and read off its implied
    /// integer bounds `(lo, hi)`; `None` means unbounded on that side.
    /// Returns `Err(())` if the system is infeasible.
    #[allow(clippy::result_unit_err)]
    pub fn bounds_of(&self, var: u32) -> Result<(Option<i128>, Option<i128>), ()> {
        let vars: Vec<u32> = self
            .ineqs
            .iter()
            .flat_map(|q| q.coeffs.keys().copied())
            .filter(|v| *v != var)
            .collect();
        let mut sys = self.clone();
        for v in vars {
            sys = sys.eliminate(v);
            if sys.trivially_infeasible() {
                return Err(());
            }
        }
        let mut lo: Option<Rat> = None;
        let mut hi: Option<Rat> = None;
        for q in &sys.ineqs {
            let c = q.coeff(var);
            match c.signum() {
                0 => {
                    if !q.konst.le(Rat::zero()) {
                        return Err(());
                    }
                }
                1 => {
                    // c·var + k <= 0  =>  var <= -k/c
                    let b = Rat::zero().sub(q.konst).div(c);
                    hi = Some(match hi {
                        None => b,
                        Some(h) => {
                            if b.lt(h) {
                                b
                            } else {
                                h
                            }
                        }
                    });
                }
                _ => {
                    // c·var + k <= 0 with c<0  =>  var >= -k/c = k/|c|
                    let b = Rat::zero().sub(q.konst).div(c);
                    lo = Some(match lo {
                        None => b,
                        Some(l) => {
                            if l.lt(b) {
                                b
                            } else {
                                l
                            }
                        }
                    });
                }
            }
        }
        if let (Some(l), Some(h)) = (lo, hi) {
            if h.lt(l) {
                return Err(());
            }
        }
        Ok((lo.map(|r| r.ceil()), hi.map(|r| r.floor())))
    }

    fn trivially_infeasible(&self) -> bool {
        self.ineqs
            .iter()
            .any(|q| q.coeffs.is_empty() && !q.konst.le(Rat::zero()))
    }

    /// Check a concrete point against all inequalities.
    pub fn satisfied(&self, point: &BTreeMap<u32, i128>) -> bool {
        self.ineqs.iter().all(|q| q.satisfied(point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_testkit::prop::{self, Gen};
    use chimera_testkit::prop_assert;

    #[test]
    fn rat_arithmetic_normalizes() {
        let a = Rat::new(2, 4);
        assert_eq!(a, Rat::new(1, 2));
        assert_eq!(a.add(a), Rat::int(1));
        assert_eq!(Rat::new(1, -2).den(), 2);
        assert_eq!(Rat::new(1, -2).num(), -1);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
    }

    #[test]
    fn simple_box_bounds() {
        // 0 <= x <= 10
        let mut s = System::new();
        s.var_ge(0, 0).var_le(0, 10);
        assert_eq!(s.bounds_of(0), Ok((Some(0), Some(10))));
    }

    #[test]
    fn derived_bound_through_elimination() {
        // x = addr, x = base + j (encoded as two inequalities), 0 <= j <= 15,
        // base = 100 -> addr in [100, 115].
        let (addr, j, base) = (0u32, 1u32, 2u32);
        let mut s = System::new();
        // addr - base - j <= 0 and base + j - addr <= 0  (addr == base + j)
        s.le_zero(&[(addr, 1), (base, -1), (j, -1)], 0);
        s.le_zero(&[(addr, -1), (base, 1), (j, 1)], 0);
        s.var_ge(j, 0).var_le(j, 15);
        s.var_ge(base, 100).var_le(base, 100);
        assert_eq!(s.bounds_of(addr), Ok((Some(100), Some(115))));
    }

    #[test]
    fn infeasible_detected() {
        let mut s = System::new();
        s.var_ge(0, 10).var_le(0, 5);
        assert!(s.bounds_of(0).is_err());
    }

    #[test]
    fn unbounded_side_reported_none() {
        let mut s = System::new();
        s.var_ge(0, 3);
        assert_eq!(s.bounds_of(0), Ok((Some(3), None)));
    }

    #[test]
    fn rational_slopes_tighten_to_integers() {
        // 2x <= 7 -> x <= 3 (integer floor).
        let mut s = System::new();
        s.le_zero(&[(0, 2)], -7);
        s.var_ge(0, 0);
        assert_eq!(s.bounds_of(0), Ok((Some(0), Some(3))));
    }

    /// Eliminating a variable never cuts off points that satisfied the
    /// original system (projection soundness).
    #[test]
    fn elimination_is_sound() {
        let gen = Gen::new(|s| {
            (
                [
                    s.int(-5i128..=5),
                    s.int(-5i128..=5),
                    s.int(-20i128..=20),
                    s.int(-5i128..=5),
                    s.int(-5i128..=5),
                    s.int(-20i128..=20),
                ],
                s.int(-10i128..=10),
                s.int(-10i128..=10),
            )
        });
        prop::check("elimination_is_sound", &gen, |&([a, b, c, d, e, f], x, y)| {
            let mut s = System::new();
            s.le_zero(&[(0, a), (1, b)], c);
            s.le_zero(&[(0, d), (1, e)], f);
            let mut point = std::collections::BTreeMap::new();
            point.insert(0u32, x);
            point.insert(1u32, y);
            if s.satisfied(&point) {
                let elim = s.eliminate(0);
                prop_assert!(elim.satisfied(&point), "projection lost a feasible point");
            }
            Ok(())
        });
    }

    /// Bounds from bounds_of always contain every feasible point.
    #[test]
    fn bounds_contain_feasible_points() {
        let gen = Gen::new(|s| {
            (
                s.int(-20i128..=0),
                s.int(0i128..=20),
                s.int(-10i128..=10),
                s.int(-30i128..=30),
            )
        });
        prop::check("bounds_contain_feasible_points", &gen, |&(lo, hi, shift, x)| {
            let mut s = System::new();
            // lo <= x - shift <= hi
            s.le_zero(&[(0, -1)], lo + shift);
            s.le_zero(&[(0, 1)], -(hi + shift));
            let mut point = std::collections::BTreeMap::new();
            point.insert(0u32, x);
            if s.satisfied(&point) {
                let (l, h) = s.bounds_of(0).expect("feasible");
                prop_assert!(l.is_none_or(|l| l <= x));
                prop_assert!(h.is_none_or(|h| x <= h));
            }
            Ok(())
        });
    }
}
