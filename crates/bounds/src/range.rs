//! Deriving symbolic address ranges for memory accesses inside loops.

use crate::iv::{def_of, find_induction_vars, IndVar};
use crate::sym::{Sym, SymExpr};
use chimera_minic::ir::{AccessId, Function, Instr, LocalId, Operand};
use chimera_minic::loops::{Loop, LoopForest};
use std::collections::BTreeMap;

/// One end of a symbolic range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// A finite symbolic bound.
    Expr(SymExpr),
    /// Unknown (the paper's `-INF`/`+INF` case, Fig. 4 line 8).
    Infinite,
}

impl Bound {
    /// The expression, if finite.
    pub fn as_expr(&self) -> Option<&SymExpr> {
        match self {
            Bound::Expr(e) => Some(e),
            Bound::Infinite => None,
        }
    }
}

/// Inclusive symbolic `[lo, hi]` address bounds for one access over a whole
/// loop execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBounds {
    /// Inclusive lower bound.
    pub lo: Bound,
    /// Inclusive upper bound.
    pub hi: Bound,
}

impl LoopBounds {
    /// True when both ends are finite — "precise enough" in §5.3's terms.
    pub fn is_precise(&self) -> bool {
        matches!(
            (&self.lo, &self.hi),
            (Bound::Expr(_), Bound::Expr(_))
        )
    }

    /// The fully-unknown range.
    pub fn top() -> LoopBounds {
        LoopBounds {
            lo: Bound::Infinite,
            hi: Bound::Infinite,
        }
    }
}

/// A value inside the loop: affine over entry symbols and induction
/// variables, or unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Val {
    Lin {
        expr: SymExpr,
        ivs: BTreeMap<LocalId, i64>,
    },
    Top,
}

impl Val {
    fn konst(k: i64) -> Val {
        Val::Lin {
            expr: SymExpr::konst(k),
            ivs: BTreeMap::new(),
        }
    }

    fn entry(l: LocalId) -> Val {
        Val::Lin {
            expr: SymExpr::sym(Sym::Entry(l)),
            ivs: BTreeMap::new(),
        }
    }

    fn iv(l: LocalId) -> Val {
        let mut ivs = BTreeMap::new();
        ivs.insert(l, 1);
        Val::Lin {
            expr: SymExpr::konst(0),
            ivs,
        }
    }

    fn add(&self, other: &Val) -> Val {
        match (self, other) {
            (Val::Lin { expr: e1, ivs: i1 }, Val::Lin { expr: e2, ivs: i2 }) => {
                let mut ivs = i1.clone();
                for (l, c) in i2 {
                    let e = ivs.entry(*l).or_insert(0);
                    *e += c;
                    if *e == 0 {
                        ivs.remove(l);
                    }
                }
                Val::Lin {
                    expr: e1.add(e2),
                    ivs,
                }
            }
            _ => Val::Top,
        }
    }

    fn scale(&self, k: i64) -> Val {
        match self {
            Val::Lin { expr, ivs } => Val::Lin {
                expr: expr.scale(k),
                ivs: if k == 0 {
                    BTreeMap::new()
                } else {
                    ivs.iter().map(|(l, c)| (*l, c * k)).collect()
                },
            },
            Val::Top => Val::Top,
        }
    }

    fn as_const(&self) -> Option<i64> {
        match self {
            Val::Lin { expr, ivs } if ivs.is_empty() && expr.is_const() => Some(expr.konst),
            _ => None,
        }
    }
}

/// Derive the symbolic address bounds of every memory access inside loop
/// `loop_idx` of `forest`. Accesses whose addresses are not affine get
/// [`LoopBounds::top`].
pub fn loop_access_bounds(
    func: &Function,
    forest: &LoopForest,
    loop_idx: usize,
) -> BTreeMap<AccessId, LoopBounds> {
    let lp = &forest.loops[loop_idx];
    let ivs = find_induction_vars(func, lp);
    let mut solver = Solver {
        func,
        lp,
        ivs: &ivs,
        memo: BTreeMap::new(),
        in_progress: Vec::new(),
    };
    let mut out = BTreeMap::new();
    for b in &lp.blocks {
        for i in &func.block(*b).instrs {
            let (addr, access) = match i {
                Instr::Load { addr, access, .. } => (*addr, *access),
                Instr::Store { addr, access, .. } => (*addr, *access),
                _ => continue,
            };
            let val = solver.resolve_operand(addr);
            out.insert(access, bounds_from_val(&val, &ivs));
        }
    }
    out
}

fn bounds_from_val(val: &Val, ivs: &[IndVar]) -> LoopBounds {
    let Val::Lin { expr, ivs: coeffs } = val else {
        return LoopBounds::top();
    };
    let mut lo = expr.clone();
    let mut hi = expr.clone();
    for (l, c) in coeffs {
        let Some(iv) = ivs.iter().find(|iv| iv.local == *l) else {
            return LoopBounds::top();
        };
        let (Some(iv_lo), Some(iv_hi)) = (&iv.lo, &iv.hi) else {
            return LoopBounds::top();
        };
        if *c > 0 {
            lo = lo.add(&iv_lo.scale(*c));
            hi = hi.add(&iv_hi.scale(*c));
        } else {
            lo = lo.add(&iv_hi.scale(*c));
            hi = hi.add(&iv_lo.scale(*c));
        }
    }
    LoopBounds {
        lo: Bound::Expr(lo),
        hi: Bound::Expr(hi),
    }
}

struct Solver<'a> {
    func: &'a Function,
    lp: &'a Loop,
    ivs: &'a [IndVar],
    memo: BTreeMap<LocalId, Val>,
    in_progress: Vec<LocalId>,
}

impl<'a> Solver<'a> {
    fn resolve_operand(&mut self, op: Operand) -> Val {
        match op {
            Operand::Const(c) => Val::konst(c),
            Operand::Local(l) => self.resolve_local(l),
        }
    }

    fn resolve_local(&mut self, l: LocalId) -> Val {
        if let Some(v) = self.memo.get(&l) {
            return v.clone();
        }
        if self.in_progress.contains(&l) {
            return Val::Top; // cyclic non-IV dependence
        }
        // Induction variable?
        if self.ivs.iter().any(|iv| iv.local == l) {
            let v = Val::iv(l);
            self.memo.insert(l, v.clone());
            return v;
        }
        // Definitions inside the loop.
        let defs: Vec<&Instr> = self
            .lp
            .blocks
            .iter()
            .flat_map(|b| self.func.block(*b).instrs.iter())
            .filter(|i| def_of(i) == Some(l))
            .collect();
        let v = match defs.len() {
            0 => Val::entry(l), // loop-invariant
            1 => {
                self.in_progress.push(l);
                let v = self.resolve_def(defs[0]);
                self.in_progress.pop();
                v
            }
            _ => Val::Top,
        };
        self.memo.insert(l, v.clone());
        v
    }

    fn resolve_def(&mut self, i: &Instr) -> Val {
        use chimera_minic::ast::BinOp;
        match i {
            Instr::Copy { src, .. } => self.resolve_operand(*src),
            Instr::BinOp { op, a, b, .. } => {
                let (va, vb) = (self.resolve_operand(*a), self.resolve_operand(*b));
                match op {
                    BinOp::Add => va.add(&vb),
                    BinOp::Sub => va.add(&vb.scale(-1)),
                    BinOp::Mul => {
                        if let Some(k) = vb.as_const() {
                            va.scale(k)
                        } else if let Some(k) = va.as_const() {
                            vb.scale(k)
                        } else {
                            Val::Top
                        }
                    }
                    // Unsupported arithmetic (the paper's §5.2 second
                    // imprecision source): %, &, |, ^, shifts, compares.
                    _ => Val::Top,
                }
            }
            Instr::PtrAdd { base, offset, .. } => {
                self.resolve_operand(*base)
                    .add(&self.resolve_operand(*offset))
            }
            Instr::AddrOfGlobal { global, offset, .. } => {
                let base = Val::Lin {
                    expr: SymExpr::sym(Sym::GlobalBase(*global)),
                    ivs: BTreeMap::new(),
                };
                base.add(&self.resolve_operand(*offset))
            }
            Instr::AddrOfLocal { local, offset, .. } => {
                let base = Val::Lin {
                    expr: SymExpr::sym(Sym::SlotBase(*local)),
                    ivs: BTreeMap::new(),
                };
                base.add(&self.resolve_operand(*offset))
            }
            // Values from memory, calls, or I/O: unknown within the loop
            // (the my_key = key_from[j] case of Fig. 4).
            _ => Val::Top,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::cfg::{Cfg, Dominators};
    use chimera_minic::compile;
    use chimera_minic::loops::LoopForest;

    fn analyze(src: &str, fname: &str) -> (chimera_minic::ir::Program, Vec<BTreeMap<AccessId, LoopBounds>>) {
        let p = compile(src).unwrap();
        let f = p.func_by_name(fname).unwrap();
        let cfg = Cfg::new(f);
        let dom = Dominators::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        let per_loop = (0..forest.loops.len())
            .map(|i| loop_access_bounds(f, &forest, i))
            .collect();
        (p, per_loop)
    }

    #[test]
    fn partitioned_array_bounds_track_base_pointer() {
        // The radix pattern: each worker sums its slice through a pointer
        // parameter; the bounds must be [p@entry, p@entry + n@entry - 1].
        let (p, loops) = analyze(
            "int data[64];
             void worker(int *p, int n) {
                int j;
                for (j = 0; j < n; j = j + 1) { p[j] = j; }
             }
             int main() { worker(&data[0], 32); worker(&data[32], 32); return 0; }",
            "worker",
        );
        assert_eq!(loops.len(), 1);
        let store = p
            .accesses
            .iter()
            .find(|a| a.is_write && a.func == p.func_by_name("worker").unwrap().id)
            .unwrap();
        let b = loops[0].get(&store.id).unwrap();
        assert!(b.is_precise(), "{b:?}");
        let lo = b.lo.as_expr().unwrap();
        let hi = b.hi.as_expr().unwrap();
        // lo = p@entry + j@entry (j@entry is 0 at runtime),
        // hi = p@entry + n@entry - 1.
        assert_eq!(lo.terms.len(), 2);
        assert_eq!(lo.konst, 0);
        assert_eq!(hi.konst, -1);
        assert_eq!(hi.terms.len(), 2);
    }

    #[test]
    fn data_dependent_index_is_top() {
        // rank[my_key] where my_key comes from memory: ±∞ (paper Fig. 4,
        // second inner loop).
        let (p, loops) = analyze(
            "int rank[16]; int key_from[64];
             int main() {
                int j; int my_key;
                for (j = 0; j < 64; j = j + 1) {
                    my_key = key_from[j] & 15;
                    rank[my_key] = rank[my_key] + 1;
                }
                return 0;
             }",
            "main",
        );
        let main_id = p.main();
        // The key_from[j] load is precise; the rank[my_key] accesses are not.
        let mut precise = 0;
        let mut top = 0;
        for a in p.accesses.iter().filter(|a| a.func == main_id) {
            if let Some(b) = loops[0].get(&a.id) {
                if b.is_precise() {
                    precise += 1;
                } else {
                    top += 1;
                }
            }
        }
        assert!(precise >= 1, "key_from[j] should be precise");
        assert!(top >= 2, "rank[my_key] load+store should be top");
    }

    #[test]
    fn modulo_indexing_is_top() {
        let (p, loops) = analyze(
            "int a[8];
             int main() { int i;
                for (i = 0; i < 100; i = i + 1) { a[i % 8] = i; }
                return 0; }",
            "main",
        );
        let store = p.accesses.iter().find(|a| a.is_write).unwrap();
        assert!(!loops[0].get(&store.id).unwrap().is_precise());
    }

    #[test]
    fn scaled_struct_stride_bounds() {
        let (p, loops) = analyze(
            "struct pt { int x; int y; };
             struct pt pts[16];
             int main() { int i;
                for (i = 0; i < 16; i = i + 1) { pts[i].y = i; }
                return 0; }",
            "main",
        );
        let store = p.accesses.iter().find(|a| a.is_write).unwrap();
        let b = loops[0].get(&store.id).unwrap();
        assert!(b.is_precise());
        // hi = &pts + 2*15 + 1 = &pts + 31.
        let hi = b.hi.as_expr().unwrap();
        assert_eq!(hi.konst, 31);
    }

    #[test]
    fn nested_loop_outer_sees_inner_iv_as_top() {
        let (p, loops) = analyze(
            "int a[64];
             int main() { int i; int j;
                for (i = 0; i < 8; i = i + 1) {
                   for (j = 0; j < 8; j = j + 1) { a[i * 8 + j] = 1; }
                }
                return 0; }",
            "main",
        );
        let store = p.accesses.iter().find(|a| a.is_write).unwrap();
        // Both loops contain the store. The inner loop gets precise bounds
        // (j ranges, i is an entry symbol relative to the inner loop).
        // The outer loop also resolves: both i and j are IVs of the outer
        // region... j's defs inside the outer loop are `j = 0` and
        // `j = j + 1`, so j is not a basic IV there and the bound is Top.
        let mut verdicts: Vec<bool> = loops
            .iter()
            .filter_map(|m| m.get(&store.id).map(|b| b.is_precise()))
            .collect();
        verdicts.sort();
        assert_eq!(verdicts, vec![false, true]);
    }

    #[test]
    fn loop_invariant_address_is_precise_degenerate_range() {
        let (p, loops) = analyze(
            "int g;
             int main() { int i;
                for (i = 0; i < 10; i = i + 1) { g = g + 1; }
                return g; }",
            "main",
        );
        let store = p.accesses.iter().find(|a| a.is_write).unwrap();
        let b = loops[0].get(&store.id).unwrap();
        assert!(b.is_precise());
        assert_eq!(b.lo, b.hi, "a scalar global has a one-cell range");
    }
}
