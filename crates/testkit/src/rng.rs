//! Deterministic pseudo-random number generation.
//!
//! [`SplitMix64`] expands a 64-bit seed into well-distributed state words;
//! [`Rng`] is xoshiro256++ (Blackman & Vigna), a fast non-cryptographic
//! generator with a 256-bit state and excellent statistical quality. Both
//! are pure functions of their seed, so every consumer in the workspace —
//! the runtime's scheduling jitter, the simulated I/O world, the property
//! harness — replays exactly from a recorded seed.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny generator used to seed [`Rng`] (and usable on its own
/// for cheap derived streams, e.g. one sub-seed per test case).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Anything that yields a stream of 64-bit words. Implemented by [`Rng`]
/// and by the property harness's recording [`crate::prop::Source`], so the
/// same ranged-sampling code serves both.
pub trait RandomSource {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// xoshiro256++ — the workspace's general-purpose PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the full 256-bit state from a 64-bit seed via SplitMix64, as
    /// the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Next 64-bit output (the ++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `range` (half-open `lo..hi` or inclusive `lo..=hi`
    /// over any primitive integer type).
    ///
    /// Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform bool.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[below(self, slice.len() as u64) as usize])
        }
    }
}

impl RandomSource for Rng {
    fn next_u64(&mut self) -> u64 {
        Rng::next_u64(self)
    }
}

/// Uniform value in `[0, bound)` from one raw draw, via the multiply-shift
/// map `(raw * bound) >> 64`. The map is monotone in `raw` (so the property
/// harness's shrink-toward-zero on raw words shrinks the sampled value
/// toward the range's low end) and its bias is below `bound / 2^64` —
/// negligible for test-harness purposes.
pub(crate) fn below<R: RandomSource + ?Sized>(r: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((r.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

/// 128-bit variant for `u128`/`i128` ranges: two raw draws, reduced mod the
/// bound (monotone-in-high-word, same negligible bias argument).
pub(crate) fn below128<R: RandomSource + ?Sized>(r: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    let raw = ((r.next_u64() as u128) << 64) | r.next_u64() as u128;
    if bound.is_power_of_two() {
        raw & (bound - 1)
    } else {
        raw % bound
    }
}

/// A range that can be sampled uniformly from a [`RandomSource`].
pub trait SampleRange<T> {
    /// Draw one uniform value. Panics on an empty range.
    fn sample<R: RandomSource + ?Sized>(&self, r: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RandomSource + ?Sized>(&self, r: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as $u).wrapping_sub(self.start as $u);
                let off = below(r, width as u64) as $u;
                (self.start as $u).wrapping_add(off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RandomSource + ?Sized>(&self, r: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                // width == 0 means the full domain: one raw draw covers it.
                let off = if width == 0 {
                    r.next_u64() as $u
                } else {
                    below(r, width as u64) as $u
                };
                (lo as $u).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_sample_range_128 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RandomSource + ?Sized>(&self, r: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(below128(r, width)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RandomSource + ?Sized>(&self, r: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let off = if width == 0 {
                    ((r.next_u64() as u128) << 64) | r.next_u64() as u128
                } else {
                    below128(r, width)
                };
                (lo as u128).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_sample_range_128!(u128, i128);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // State {1,2,3,4} — first outputs of xoshiro256++ from the
        // reference implementation.
        let mut r = Rng { s: [1, 2, 3, 4] };
        assert_eq!(r.next_u64(), 41943041);
        assert_eq!(r.next_u64(), 58720359);
        assert_eq!(r.next_u64(), 3588806011781223);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.gen_range(0..256i64);
            assert!((0..256).contains(&v));
            let w = r.gen_range(-5i128..=5);
            assert!((-5..=5).contains(&w));
            let u = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = Rng::seed_from_u64(9);
        // Must not panic or loop: width overflows to 0.
        let _ = r.gen_range(u64::MIN..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut r1 = Rng::seed_from_u64(11);
        let mut r2 = Rng::seed_from_u64(11);
        let mut a: Vec<u32> = (0..32).collect();
        let mut b = a.clone();
        r1.shuffle(&mut a);
        r2.shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_picks_every_element_eventually() {
        let mut r = Rng::seed_from_u64(13);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = r.choose(&items).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(r.choose::<u8>(&[]).is_none());
    }

    #[test]
    fn splitmix_reference_vector() {
        // Seed 1234567 — reference outputs of splitmix64.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }
}
