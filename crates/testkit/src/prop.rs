//! A minimal property-testing harness with seed-replayable shrinking.
//!
//! Design (Hypothesis-style "choice tape"): a property draws every random
//! decision from a [`Source`], which records the raw 64-bit words it hands
//! out. Generation is a pure function of that tape, so:
//!
//! * **Replay** — a failing case is fully determined by its case seed. The
//!   failure message prints `CHIMERA_TESTKIT_SEED=<n>`; exporting that
//!   variable re-runs exactly the failing case (and nothing else).
//! * **Shrinking** — works on the tape, not on typed values, so it composes
//!   through `map`, `one_of`, and hand-rolled closures for free. The
//!   shrinker greedily tries shorter and smaller tapes (truncate, delete
//!   chunks, zero/halve/decrement words); exhausted tape positions read as
//!   zero, which every generator maps to its minimal value.
//!
//! Environment knobs:
//!
//! * `CHIMERA_TESTKIT_SEED=<n>`  — replay a single case from seed `n`.
//! * `CHIMERA_TESTKIT_CASES=<n>` — override the iteration count (default
//!   256, the same default case count as proptest).
//!
//! ```
//! use chimera_testkit::prop::{self, Gen};
//!
//! let pairs = prop::vec_of(
//!     prop::ranged(0u32..100).map(|n| (n, n + 1)),
//!     0..8,
//! );
//! prop::check("pairs_are_ordered", &pairs, |v| {
//!     for (a, b) in v {
//!         chimera_testkit::prop_assert!(a < b, "bad pair ({a}, {b})");
//!     }
//!     Ok(())
//! });
//! ```

use crate::rng::{below, RandomSource, Rng, SampleRange, SplitMix64};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Fail a property with a formatted message (like `assert!`, but returns
/// `Err` so the shrinker can re-run the property quietly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fail a property unless two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (av, bv) = (&$a, &$b);
        $crate::prop_assert!(av == bv, "{:?} != {:?}", av, bv);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (av, bv) = (&$a, &$b);
        if !(av == bv) {
            return Err(format!("{:?} != {:?}: {}", av, bv, format!($($fmt)+)));
        }
    }};
}

/// The stream a property draws its randomness from. In generation mode it
/// pulls fresh words from a seeded [`Rng`] and records them; in shrink mode
/// it replays a (mutated) tape, reading zeros once the tape runs out.
pub struct Source {
    rng: Option<Rng>,
    tape: Vec<u64>,
    pos: usize,
    recorded: Vec<u64>,
}

impl Source {
    /// Fresh generation from a case seed.
    pub fn from_seed(seed: u64) -> Source {
        Source {
            rng: Some(Rng::seed_from_u64(seed)),
            tape: Vec::new(),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// Pure replay of a tape (exhausted positions read as zero).
    pub fn from_tape(tape: &[u64]) -> Source {
        Source {
            rng: None,
            tape: tape.to_vec(),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// The raw words handed out so far.
    // The tape IS the recorded word stream; the field name describes the
    // mechanism, the method name the concept.
    #[allow(clippy::misnamed_getters)]
    pub fn tape(&self) -> &[u64] {
        &self.recorded
    }

    /// Uniform value in `range` (same ranged sampling as [`Rng::gen_range`]).
    pub fn int<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform bool (false shrinks first).
    pub fn bool(&mut self) -> bool {
        below(self, 2) == 1
    }

    /// Next raw 64-bit word (full domain; shrinks toward 0).
    pub fn raw_u64(&mut self) -> u64 {
        <Self as RandomSource>::next_u64(self)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over an empty collection");
        below(self, n as u64) as usize
    }

    /// Run a generator against this source.
    pub fn draw<T>(&mut self, g: &Gen<T>) -> T {
        (g.f)(self)
    }
}

impl RandomSource for Source {
    fn next_u64(&mut self) -> u64 {
        let word = if self.pos < self.tape.len() {
            self.tape[self.pos]
        } else {
            match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.pos += 1;
        self.recorded.push(word);
        word
    }
}

/// A composable generator: a pure function from a [`Source`] to a value.
#[derive(Clone)]
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T: 'static> Gen<T> {
    /// Wrap a drawing function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Apply `g` to every generated value.
    pub fn map<U: 'static>(self, g: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |s| g((self.f)(s)))
    }

    /// Generate a value, then run a dependent generator.
    pub fn flat_map<U: 'static>(self, g: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        Gen::new(move |s| {
            let mid = (self.f)(s);
            let next = g(mid);
            (next.f)(s)
        })
    }
}

/// Uniform integer in `range`; shrinks toward the low end.
pub fn ranged<T: 'static, R: SampleRange<T> + Clone + 'static>(range: R) -> Gen<T> {
    Gen::new(move |s| s.int(range.clone()))
}

/// A full-domain `u64` (shrinks toward 0).
pub fn any_u64() -> Gen<u64> {
    Gen::new(|s| s.next_u64())
}

/// A full-domain `i64` (shrinks toward 0 via the raw word).
pub fn any_i64() -> Gen<i64> {
    Gen::new(|s| s.next_u64() as i64)
}

/// A full-domain `u8`.
pub fn any_u8() -> Gen<u8> {
    ranged(0u8..=u8::MAX)
}

/// A bool; shrinks toward `false`.
pub fn any_bool() -> Gen<bool> {
    Gen::new(|s| s.bool())
}

/// A vector with length drawn from `len` and elements from `elem`.
/// Shrinks toward shorter vectors of minimal elements.
pub fn vec_of<T: 'static>(elem: Gen<T>, len: std::ops::Range<usize>) -> Gen<Vec<T>> {
    assert!(!len.is_empty(), "vec_of with an empty length range");
    Gen::new(move |s| {
        let n = s.int(len.clone());
        (0..n).map(|_| s.draw(&elem)).collect()
    })
}

/// Pick one of several generators uniformly; earlier alternatives shrink
/// first (put the simplest case first, as with `prop_oneof!`).
pub fn one_of<T: 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    assert!(!choices.is_empty(), "one_of with no choices");
    Gen::new(move |s| {
        let i = s.index(choices.len());
        s.draw(&choices[i])
    })
}

/// Pair of independent generators.
pub fn pair<A: 'static, B: 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |s| (s.draw(&a), s.draw(&b)))
}

/// Harness configuration, normally built by [`Config::from_env`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; each case derives its own seed from this stream.
    pub base_seed: u64,
    /// Replay exactly this case seed instead of generating fresh cases.
    pub replay_seed: Option<u64>,
    /// Cap on property re-executions during shrinking.
    pub max_shrink_iters: u32,
}

/// Default cases per property — matches proptest's default so every ported
/// suite keeps at least its former case count.
pub const DEFAULT_CASES: u32 = 256;

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: DEFAULT_CASES,
            base_seed: 0xC1A0_5EED_0DD5,
            replay_seed: None,
            max_shrink_iters: 4096,
        }
    }
}

impl Config {
    /// Read `CHIMERA_TESTKIT_CASES` and `CHIMERA_TESTKIT_SEED` from the
    /// environment.
    pub fn from_env() -> Config {
        let mut cfg = Config::default();
        if let Some(n) = env_u64("CHIMERA_TESTKIT_CASES") {
            cfg.cases = n as u32;
        }
        cfg.replay_seed = env_u64("CHIMERA_TESTKIT_SEED");
        cfg
    }

    /// Override the case count (env still wins, preserving sweep workflows).
    pub fn with_cases(mut self, cases: u32) -> Config {
        if std::env::var_os("CHIMERA_TESTKIT_CASES").is_none() {
            self.cases = cases;
        }
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Run `property` against `cases` generated inputs using the environment
/// configuration. Panics (with a replayable seed line) on the first — fully
/// shrunk — failure.
pub fn check<T: Debug + 'static>(
    name: &str,
    gen: &Gen<T>,
    property: impl Fn(&T) -> Result<(), String>,
) {
    check_config(&Config::from_env(), name, gen, property)
}

/// [`check`] with an explicit configuration (env replay/case overrides
/// still apply when the config came from [`Config::from_env`]).
pub fn check_config<T: Debug + 'static>(
    cfg: &Config,
    name: &str,
    gen: &Gen<T>,
    property: impl Fn(&T) -> Result<(), String>,
) {
    let mut seed_stream = SplitMix64::new(cfg.base_seed);
    let (n_cases, forced) = match cfg.replay_seed {
        Some(s) => (1, Some(s)),
        None => (cfg.cases, None),
    };
    for case in 0..n_cases {
        let case_seed = forced.unwrap_or_else(|| seed_stream.next_u64());
        let mut src = Source::from_seed(case_seed);
        let value = src.draw(gen);
        if let Err(msg) = run_property(&property, &value) {
            let tape = src.tape().to_vec();
            let (small_value, small_msg, evals) =
                shrink(gen, &property, tape, value, msg, cfg.max_shrink_iters);
            panic!(
                "property '{name}' failed (case {case_idx}/{total}, {evals} shrink eval(s))\n\
                 minimal input: {small_value:#?}\n\
                 error: {small_msg}\n\
                 replay exactly this case with: CHIMERA_TESTKIT_SEED={case_seed}",
                case_idx = case + 1,
                total = n_cases,
            );
        }
    }
}

/// Generate the value a given case seed produces, without running any
/// property — lets tests assert generator determinism directly.
pub fn sample_with_seed<T>(gen: &Gen<T>, seed: u64) -> T {
    Source::from_seed(seed).draw(gen)
}

/// Run the property, converting stray panics into `Err` so shrinking also
/// works for properties that `assert!` or `expect` internally.
fn run_property<T>(
    property: &impl Fn(&T) -> Result<(), String>,
    value: &T,
) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| property(value))) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload)),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("property panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("property panicked: {s}")
    } else {
        "property panicked".to_string()
    }
}

/// Greedy tape shrinking: repeatedly try simpler tapes, keeping any that
/// still fail, until a full pass makes no progress (or the eval budget is
/// spent). Returns the minimal failing value, its error, and the number of
/// property evaluations used.
fn shrink<T: Debug>(
    gen: &Gen<T>,
    property: &impl Fn(&T) -> Result<(), String>,
    mut tape: Vec<u64>,
    mut best_value: T,
    mut best_msg: String,
    max_iters: u32,
) -> (T, String, u32) {
    let mut evals = 0u32;
    let attempt = |cand: &[u64], evals: &mut u32| -> Option<(Vec<u64>, T, String)> {
        if *evals >= max_iters {
            return None;
        }
        *evals += 1;
        let mut src = Source::from_tape(cand);
        let value = src.draw(gen);
        match run_property(property, &value) {
            Ok(()) => None,
            Err(msg) => Some((src.tape().to_vec(), value, msg)),
        }
    };

    loop {
        let mut progressed = false;

        // Pass 1: structural — drop whole spans of the tape, sweeping each
        // chunk size once from the end (no restart: the outer fixpoint
        // loop picks up anything a successful deletion re-exposed).
        let mut chunk = (tape.len() / 2).max(1);
        loop {
            let mut start = tape.len().saturating_sub(chunk);
            loop {
                if !tape.is_empty() && start < tape.len() {
                    let mut cand = tape.clone();
                    cand.drain(start..(start + chunk).min(cand.len()));
                    if cand.len() < tape.len() {
                        if let Some((t, v, m)) = attempt(&cand, &mut evals) {
                            tape = t;
                            best_value = v;
                            best_msg = m;
                            progressed = true;
                        }
                    }
                }
                if start == 0 {
                    break;
                }
                start = start.saturating_sub(chunk);
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: pointwise — zero each word, else binary-search the
        // smallest still-failing replacement. Ranged draws map raw words
        // monotonically onto values, so this converges to boundary
        // counterexamples (e.g. exactly the threshold an assertion used).
        let mut i = 0;
        while i < tape.len() {
            if tape[i] == 0 {
                i += 1;
                continue;
            }
            let mut cand = tape.clone();
            cand[i] = 0;
            if let Some((t, v, m)) = attempt(&cand, &mut evals) {
                tape = t;
                best_value = v;
                best_msg = m;
                progressed = true;
                i += 1;
                continue;
            }
            // 0 passes; find the least failing word in (0, tape[i]].
            let (mut lo, mut hi) = (1u64, tape[i]);
            while lo < hi && evals < max_iters {
                let mid = lo + (hi - lo) / 2;
                let mut cand = tape.clone();
                cand[i] = mid;
                match attempt(&cand, &mut evals) {
                    Some((t, v, m)) => {
                        let structure_changed = t.len() != tape.len();
                        tape = t;
                        best_value = v;
                        best_msg = m;
                        progressed = true;
                        if structure_changed {
                            break;
                        }
                        hi = mid;
                    }
                    None => lo = mid + 1,
                }
            }
            i += 1;
        }

        if !progressed || evals >= max_iters {
            return (best_value, best_msg, evals);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec_of(ranged(0i64..1000), 1..20);
        let a = sample_with_seed(&g, 99);
        let b = sample_with_seed(&g, 99);
        assert_eq!(a, b);
        assert_ne!(a, sample_with_seed(&g, 100));
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 50,
            ..Config::default()
        };
        let counted = std::cell::Cell::new(0u32);
        check_config(&cfg, "counts", &ranged(0u32..10), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        });
        assert_eq!(counted.get(), 50);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let cfg = Config::default();
        let g = vec_of(ranged(0u32..=1000), 0..40);
        let err = catch_unwind(AssertUnwindSafe(|| {
            check_config(&cfg, "has_no_big_element", &g, |v| {
                crate::prop_assert!(v.iter().all(|&x| x < 500), "big element in {v:?}");
                Ok(())
            });
        }))
        .expect_err("property must fail");
        let msg = panic_message(err);
        // The seed line is present and parseable.
        let seed: u64 = msg
            .split("CHIMERA_TESTKIT_SEED=")
            .nth(1)
            .expect("seed line present")
            .trim()
            .parse()
            .expect("seed parses");
        // The printed seed regenerates a failing case.
        let replayed = sample_with_seed(&g, seed);
        assert!(
            replayed.iter().any(|&x| x >= 500),
            "replayed case must fail too: {replayed:?}"
        );
        // Shrinking reached the canonical minimal counterexample: [500].
        assert!(
            msg.contains("minimal input"),
            "message shows the shrunk input: {msg}"
        );
        assert!(
            msg.contains("500"),
            "greedy shrink should reach the boundary value 500: {msg}"
        );
    }

    #[test]
    fn shrink_finds_minimal_vector() {
        // Direct shrinker test: property fails iff the vec contains any
        // nonzero value; minimum is a single-element small vector.
        let g = vec_of(ranged(0u32..=100), 0..30);
        let prop = |v: &Vec<u32>| -> Result<(), String> {
            crate::prop_assert!(v.iter().all(|&x| x == 0), "nonzero");
            Ok(())
        };
        let mut src = Source::from_seed(12345);
        let mut value = src.draw(&g);
        // Find a failing seed first.
        let mut seed = 12345u64;
        while value.iter().all(|&x| x == 0) {
            seed += 1;
            src = Source::from_seed(seed);
            value = src.draw(&g);
        }
        let tape = src.tape().to_vec();
        let (small, _, _) = shrink(&g, &prop, tape, value, "seed".into(), 4096);
        assert_eq!(small.len(), 1, "minimal failing vec has one element: {small:?}");
        assert_eq!(small[0], 1, "minimal nonzero element is 1: {small:?}");
    }

    #[test]
    fn one_of_and_map_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            A(u8),
            B(bool),
        }
        let g = one_of(vec![
            any_u8().map(E::A),
            any_bool().map(E::B),
        ]);
        let mut seen_a = false;
        let mut seen_b = false;
        for seed in 0..64 {
            match sample_with_seed(&g, seed) {
                E::A(_) => seen_a = true,
                E::B(_) => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn replay_seed_runs_exactly_one_case() {
        let cfg = Config {
            replay_seed: Some(777),
            ..Config::default()
        };
        let counted = std::cell::Cell::new(0u32);
        check_config(&cfg, "replay_once", &any_u64(), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        });
        assert_eq!(counted.get(), 1);
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let cfg = Config::default();
        let err = catch_unwind(AssertUnwindSafe(|| {
            check_config(&cfg, "panics", &ranged(0u32..100), |&v| {
                assert!(v < 90, "value too big");
                Ok(())
            });
        }))
        .expect_err("must fail");
        let msg = panic_message(err);
        assert!(msg.contains("CHIMERA_TESTKIT_SEED="), "{msg}");
        assert!(msg.contains("90"), "shrinks to boundary: {msg}");
    }
}
