//! A `std::time::Instant` micro-benchmark runner.
//!
//! Replaces criterion for this workspace's purposes: each benchmark is a
//! closure timed for a few warmup iterations and then N samples; the
//! report prints min / median / p95 / max per benchmark as an aligned
//! table. Bench targets are plain binaries (`harness = false`), so they
//! build and run offline with nothing but std.
//!
//! ```no_run
//! let mut runner = chimera_testkit::bench::Runner::from_args();
//! let mut group = runner.group("parsing");
//! group.bench("small", || { /* work */ });
//! group.finish();
//! runner.finish();
//! ```
//!
//! Environment knobs: `CHIMERA_BENCH_SAMPLES` (default 15) and
//! `CHIMERA_BENCH_WARMUP` (default 3) override the per-bench iteration
//! counts — CI smoke runs set both to 1. A single CLI argument acts as a
//! substring filter on `group/id` names, like criterion's. Setting
//! `CHIMERA_BENCH_JSON=<path>` additionally writes the results as a JSON
//! array to `<path>` — committed scaling data (e.g. `BENCH_pta.json`) is
//! produced this way, and CI smoke runs, which leave the variable unset,
//! never clobber it.

use std::time::{Duration, Instant};

/// Timing summary for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Full benchmark name (`group/id`).
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// 95th-percentile sample.
    pub p95: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// Compute stats from raw samples (must be non-empty).
fn stats_of(name: &str, mut samples: Vec<Duration>) -> BenchStats {
    samples.sort_unstable();
    let n = samples.len();
    let pick = |q_num: usize, q_den: usize| {
        let idx = (n - 1) * q_num / q_den;
        samples[idx]
    };
    BenchStats {
        name: name.to_string(),
        samples: n,
        min: samples[0],
        median: pick(1, 2),
        p95: pick(95, 100),
        max: samples[n - 1],
    }
}

/// Top-level bench driver: collects results from groups and prints the
/// report in [`Runner::finish`].
pub struct Runner {
    filter: Option<String>,
    samples: usize,
    warmup: usize,
    results: Vec<BenchStats>,
}

impl Runner {
    /// Build from `std::env::args` (first free argument = substring
    /// filter) and the `CHIMERA_BENCH_*` environment.
    pub fn from_args() -> Runner {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Runner::new(filter)
    }

    /// Build with an explicit filter.
    pub fn new(filter: Option<String>) -> Runner {
        let env_n = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(default)
        };
        Runner {
            filter,
            samples: env_n("CHIMERA_BENCH_SAMPLES", 15),
            warmup: env_n("CHIMERA_BENCH_WARMUP", 3),
            results: Vec::new(),
        }
    }

    /// Start a named group of benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
            samples_override: None,
        }
    }

    /// Print the aligned report for every benchmark run so far, and write
    /// the JSON report if `CHIMERA_BENCH_JSON` names a path.
    pub fn finish(self) {
        if self.results.is_empty() {
            println!("no benchmarks matched the filter");
            return;
        }
        if let Some(path) = std::env::var_os("CHIMERA_BENCH_JSON") {
            let json = json_report(&self.results);
            match std::fs::write(&path, json) {
                Ok(()) => eprintln!("wrote {}", path.to_string_lossy()),
                Err(e) => eprintln!("CHIMERA_BENCH_JSON write failed: {e}"),
            }
        }
        let mut rows = vec![vec![
            "benchmark".to_string(),
            "samples".to_string(),
            "min".to_string(),
            "median".to_string(),
            "p95".to_string(),
            "max".to_string(),
        ]];
        for r in &self.results {
            rows.push(vec![
                r.name.clone(),
                r.samples.to_string(),
                fmt_duration(r.min),
                fmt_duration(r.median),
                fmt_duration(r.p95),
                fmt_duration(r.max),
            ]);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for (ri, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| {
                    if c == 0 {
                        format!("{cell:<width$}", width = widths[c])
                    } else {
                        format!("{cell:>width$}", width = widths[c])
                    }
                })
                .collect();
            println!("{}", line.join("  "));
            if ri == 0 {
                let dashes: Vec<String> =
                    widths.iter().map(|w| "-".repeat(*w)).collect();
                println!("{}", dashes.join("  "));
            }
        }
    }
}

/// A named group; benchmark ids are reported as `group/id`.
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
    samples_override: Option<usize>,
}

impl Group<'_> {
    /// Override the sample count for this group (mirrors criterion's
    /// `sample_size`; the environment still wins for CI smoke runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var_os("CHIMERA_BENCH_SAMPLES").is_none() && n > 0 {
            self.samples_override = Some(n);
        }
        self
    }

    /// Time `f`: warmup iterations, then the configured samples.
    pub fn bench(&mut self, id: &str, mut f: impl FnMut()) {
        let full = format!("{}/{id}", self.name);
        if let Some(filter) = &self.runner.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let samples = self.samples_override.unwrap_or(self.runner.samples);
        for _ in 0..self.runner.warmup {
            f();
        }
        let timed: Vec<Duration> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        let stats = stats_of(&full, timed);
        eprintln!(
            "{}: median {} over {} sample(s)",
            stats.name,
            fmt_duration(stats.median),
            stats.samples
        );
        self.runner.results.push(stats);
    }

    /// No-op terminator kept for call-site symmetry with criterion.
    pub fn finish(&mut self) {}
}

/// Render results as a stable, human-diffable JSON array (one object per
/// benchmark, durations in nanoseconds). Hand-rolled: the workspace is
/// hermetic, so no serde — names contain only `[A-Za-z0-9_/.-]` in
/// practice, but escape quotes and backslashes anyway.
pub fn json_report(results: &[BenchStats]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}}}{}\n",
            name,
            r.samples,
            r.min.as_nanos(),
            r.median.as_nanos(),
            r.p95.as_nanos(),
            r.max.as_nanos(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_order_and_percentiles() {
        let samples: Vec<Duration> =
            (1..=100).rev().map(Duration::from_micros).collect();
        let s = stats_of("g/x", samples);
        assert_eq!(s.min, Duration::from_micros(1));
        assert_eq!(s.max, Duration::from_micros(100));
        assert_eq!(s.median, Duration::from_micros(50));
        assert_eq!(s.p95, Duration::from_micros(95));
        assert_eq!(s.samples, 100);
    }

    #[test]
    fn single_sample_stats() {
        let s = stats_of("g/one", vec![Duration::from_millis(3)]);
        assert_eq!(s.min, s.median);
        assert_eq!(s.p95, s.max);
    }

    #[test]
    fn runner_times_and_filters() {
        let mut runner = Runner::new(Some("keep".to_string()));
        runner.samples = 2;
        runner.warmup = 1;
        let mut ran = 0u32;
        {
            let mut g = runner.group("g");
            g.bench("keep_me", || ran += 1);
        }
        // warmup(1) + samples(2)
        assert_eq!(ran, 3);
        let mut skipped = 0u32;
        {
            let mut g = runner.group("g");
            g.bench("other", || skipped += 1);
        }
        assert_eq!(skipped, 0);
        assert_eq!(runner.results.len(), 1);
        assert!(runner.results[0].name == "g/keep_me");
    }

    #[test]
    fn json_report_is_well_formed() {
        let results = vec![
            stats_of("g/a", vec![Duration::from_micros(5), Duration::from_micros(9)]),
            stats_of("g/\"b\"", vec![Duration::from_nanos(42)]),
        ];
        let json = json_report(&results);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert!(json.contains("\"name\": \"g/a\""));
        assert!(json.contains("\"min_ns\": 5000"));
        assert!(json.contains("\"name\": \"g/\\\"b\\\"\""), "{json}");
        assert_eq!(json.matches('{').count(), 2);
        assert_eq!(json.matches("},").count(), 1, "all but last comma-separated");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
