//! In-tree determinism toolkit for the Chimera workspace.
//!
//! The whole point of this reproduction is determinism you can trust, so its
//! own test and bench infrastructure must be deterministic *and* hermetic:
//! no crates.io dependencies, no network at build time, identical behaviour
//! on every machine. This crate supplies the three pieces the workspace
//! previously pulled from `rand`, `proptest`, and `criterion`:
//!
//! * [`rng`] — a seeded PRNG (SplitMix64 seeding, xoshiro256++ core) with
//!   `gen_range` / `shuffle` / `choose` helpers. Used by the runtime for
//!   scheduling jitter and simulated I/O, and by the property harness.
//! * [`prop`] — a minimal property-testing harness: composable generators,
//!   a fixed-iteration driver, greedy choice-tape shrinking, and failure
//!   output that prints a `CHIMERA_TESTKIT_SEED=<n>` line which replays the
//!   exact failing case.
//! * [`bench`] — a `std::time::Instant` micro-bench runner (warmup + N
//!   timed iterations, min/median/p95/max report) so the bench suite runs
//!   as plain binaries.
//!
//! Everything in here is `std`-only by design. Keep it that way.

#![warn(missing_docs)]

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::{BenchStats, Runner};
pub use prop::{check, sample_with_seed, Config, Gen, Source};
pub use rng::{RandomSource, Rng, SplitMix64};
