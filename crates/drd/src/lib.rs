//! `chimera-drd` — an online FastTrack-style dynamic data-race detector
//! over the Chimera VM.
//!
//! Chimera's correctness story rests on one claim: after weak-lock
//! instrumentation the program is *DRF-equivalent*, so logging the sync
//! order suffices for deterministic replay. The static RELAY analogue
//! (`chimera-relay`) predicts which accesses *may* race; this crate
//! checks the claim dynamically, in the style of FastTrack (Flanagan &
//! Freund, PLDI 2009): happens-before tracking with adaptive
//! epoch/vector-clock representation, attached to an execution as a
//! [`chimera_runtime::Supervisor`].
//!
//! The detector consumes the machine's detector-feed events
//! (`Load`/`Store` access events plus `SyncRelease`/`BarrierResume`
//! release edges) and the pre-existing ordering events
//! (`Sync`, `WeakAcquire`/`WeakRelease`/`WeakForcedRelease`, `Spawned`,
//! `Exited`). All of these are gated behind the machine's event mask, so
//! an execution without a detector attached pays a single mask test per
//! memory access and constructs nothing.
//!
//! Every reported race carries the static [`AccessId`] provenance of both
//! sites, so dynamic races can be joined against the static candidate
//! pairs from `chimera-relay` — dynamic ⊆ static is a soundness check of
//! the static detector, and the gap measures its false-positive rate.
//!
//! ```
//! use chimera_drd::detect;
//! use chimera_minic::compile;
//! use chimera_runtime::ExecConfig;
//!
//! let p = compile(
//!     "int g;
//!      void w(int v) { g = g + v; }
//!      int main() { int t; t = spawn(w, 1); w(2); join(t);
//!                   print(g); return 0; }",
//! )
//! .unwrap();
//! let run = detect(&p, &ExecConfig::default());
//! assert!(!run.report.is_race_free());
//! ```

#![warn(missing_docs)]

mod detector;
mod vc;

pub use detector::RaceDetector;
pub use vc::{Epoch, VectorClock};

use chimera_minic::ir::{AccessId, Program};
use chimera_runtime::{execute_supervised_mode, ExecConfig, ExecResult, InterpMode};

/// How the two sides of a racy pair conflicted (the first dynamic
/// occurrence; later occurrences of the same pair may differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two unordered writes.
    WriteWrite,
    /// A read unordered with a later write.
    ReadWrite,
    /// A write unordered with a later read.
    WriteRead,
}

impl std::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
            RaceKind::WriteRead => "write-read",
        })
    }
}

/// The first dynamic witness of one racy pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceWitness {
    /// Access site of the earlier (shadow-state) side.
    pub prior: AccessId,
    /// Access site of the operation that detected the race.
    pub current: AccessId,
    /// Conflict kind at detection time.
    pub kind: RaceKind,
    /// The memory cell both sides touched.
    pub addr: i64,
    /// `(prior thread, current thread)`.
    pub threads: (u32, u32),
    /// Virtual time of the detecting access.
    pub time: u64,
}

/// Summary of one detected execution: the deduplicated racy pairs with
/// static provenance, plus per-occurrence counts and first witnesses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrfReport {
    /// Racy `(a, b)` pairs, normalized `a ≤ b`, sorted and deduplicated.
    pub pairs: Vec<(AccessId, AccessId)>,
    /// First dynamic witness per pair, in detection order.
    pub witnesses: Vec<RaceWitness>,
    /// Total dynamic race observations (a hot racy pair counts per hit).
    pub races: u64,
}

impl DrfReport {
    /// No race observed — the execution was data-race-free.
    pub fn is_race_free(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Every access id that appears in some racy pair.
    pub fn racy_accesses(&self) -> Vec<AccessId> {
        let mut v: Vec<AccessId> = self
            .pairs
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Merge another report into this one (union of pairs, summed counts)
    /// — used when certifying across several seeds.
    pub fn merge(&mut self, other: &DrfReport) {
        for (i, &p) in other.pairs.iter().enumerate() {
            if !self.pairs.contains(&p) {
                self.pairs.push(p);
                self.witnesses.push(other.witnesses[i]);
            }
        }
        self.pairs.sort();
        self.pairs.dedup();
        self.races += other.races;
    }

    /// Human-readable report with source spans, one line per pair.
    pub fn describe(&self, program: &Program) -> String {
        let mut out = String::new();
        for w in &self.witnesses {
            let ip = program.access(w.prior);
            let ic = program.access(w.current);
            out.push_str(&format!(
                "race ({}): {} '{}' at {} (T{}) <-> {} '{}' at {} (T{}) on cell {}\n",
                w.kind,
                if ip.is_write { "write" } else { "read" },
                ip.what,
                ip.span,
                w.threads.0,
                if ic.is_write { "write" } else { "read" },
                ic.what,
                ic.span,
                w.threads.1,
                w.addr,
            ));
        }
        out
    }
}

/// One detected execution: the ordinary execution result plus the race
/// report.
#[derive(Debug, Clone)]
pub struct DrdRun {
    /// The underlying execution's result (outcome, output, stats…).
    pub result: ExecResult,
    /// What the detector saw.
    pub report: DrfReport,
}

impl DrdRun {
    /// Export a segment certificate from a race-free detected run, or
    /// `None` if any race was observed (a racy execution certifies
    /// nothing: its segment order is schedule-dependent).
    pub fn certificate(&self, config: &ExecConfig) -> Option<SegmentCertificate> {
        if !self.report.is_race_free() {
            return None;
        }
        Some(SegmentCertificate::new(config.seed, &self.result))
    }
}

/// A determinism certificate exported from a race-free detected run.
///
/// The runtime's segment-round engine commits race-free thread segments
/// out of program order (and, under `ExecConfig::parallelism > 1`, on
/// separate OS threads) on the strength of a per-round dynamic
/// race-freedom check. This certificate is the whole-execution analogue
/// that the detector exports offline: it attests that one full execution
/// under `seed` was data-race-free, and binds the attested final state so
/// any re-execution claiming to honor the certificate — serial, fused,
/// batched, or parallel — can be checked against it with [`Self::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentCertificate {
    /// The scheduler seed the certified execution ran under.
    pub seed: u64,
    /// Threads that participated in the certified execution.
    pub threads: u64,
    /// Instructions retired in the certified execution.
    pub instrs: u64,
    /// Synchronization operations committed (segment boundaries).
    pub sync_ops: u64,
    /// Final memory state hash of the certified execution.
    pub state_hash: u64,
    /// FNV-1a digest binding all of the above.
    pub digest: u64,
}

impl SegmentCertificate {
    /// Build a certificate over a (race-free) execution result.
    fn new(seed: u64, result: &ExecResult) -> SegmentCertificate {
        let threads = result.stats.threads;
        let (instrs, sync_ops) = (result.stats.instrs, result.stats.sync_ops);
        SegmentCertificate {
            seed,
            threads,
            instrs,
            sync_ops,
            state_hash: result.state_hash,
            digest: Self::digest_of(seed, threads, instrs, sync_ops, result.state_hash),
        }
    }

    /// Reconstruct a certificate from serialized fields, re-deriving the
    /// digest binding. A stored digest that does not match the other
    /// fields is a forged or corrupted certificate and is rejected — this
    /// is the self-check every container decode must run before trusting
    /// an embedded certificate.
    pub fn from_parts(
        seed: u64,
        threads: u64,
        instrs: u64,
        sync_ops: u64,
        state_hash: u64,
        digest: u64,
    ) -> Result<SegmentCertificate, String> {
        if digest != Self::digest_of(seed, threads, instrs, sync_ops, state_hash) {
            return Err("segment certificate: digest does not bind the attested fields".into());
        }
        Ok(SegmentCertificate {
            seed,
            threads,
            instrs,
            sync_ops,
            state_hash,
            digest,
        })
    }

    fn digest_of(seed: u64, threads: u64, instrs: u64, sync_ops: u64, state_hash: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [seed, threads, instrs, sync_ops, state_hash] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Check a re-execution against this certificate: it must retire the
    /// same instruction count over the same threads and segment
    /// boundaries and reach the same final state. This is how a parallel
    /// (`ExecConfig::parallelism > 1`) run proves it replayed the
    /// certified serial execution bit-identically.
    pub fn verify(&self, result: &ExecResult) -> bool {
        result.state_hash == self.state_hash
            && result.stats.instrs == self.instrs
            && result.stats.sync_ops == self.sync_ops
            && result.stats.threads == self.threads
            && self.digest
                == Self::digest_of(
                    self.seed,
                    self.threads,
                    self.instrs,
                    self.sync_ops,
                    self.state_hash,
                )
    }

    /// Serialize for export (the repo convention is hand-built JSON).
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"seed\": {}, \"threads\": {}, \"instrs\": {}, \"sync_ops\": {}, \
             \"state_hash\": \"{:016x}\", \"digest\": \"{:016x}\" }}",
            self.seed, self.threads, self.instrs, self.sync_ops, self.state_hash, self.digest
        )
    }
}

/// Execute `program` under the default (flat) interpreter with the race
/// detector attached.
pub fn detect(program: &Program, config: &ExecConfig) -> DrdRun {
    detect_mode(program, config, InterpMode::default())
}

/// Execute `program` under a specific interpreter mode with the race
/// detector attached.
pub fn detect_mode(program: &Program, config: &ExecConfig, mode: InterpMode) -> DrdRun {
    let mut det = RaceDetector::new(program);
    let result = execute_supervised_mode(program, config, &mut det, mode);
    DrdRun {
        result,
        report: det.into_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    fn run(src: &str) -> DrdRun {
        let p = compile(src).unwrap();
        let r = detect(&p, &ExecConfig::default());
        assert!(
            r.result.outcome.is_exit(),
            "program must exit cleanly: {:?}",
            r.result.outcome
        );
        r
    }

    #[test]
    fn racy_counter_is_detected_in_both_modes() {
        let src = "int g;
            void w(int v) { int i; int x;
                for (i = 0; i < 20; i = i + 1) { x = g; g = x + v; } }
            int main() { int t; t = spawn(w, 1); w(2); join(t);
                         print(g); return 0; }";
        let p = compile(src).unwrap();
        for mode in [InterpMode::Flat, InterpMode::Reference] {
            let r = detect_mode(&p, &ExecConfig::default(), mode);
            assert!(!r.report.is_race_free(), "{mode:?} missed the race");
            assert!(r.report.races > 0);
            assert!(!r.report.describe(&p).is_empty());
        }
    }

    #[test]
    fn mutex_ordering_is_race_free() {
        let r = run("int g; lock_t m;
            void w(int v) { int i;
                for (i = 0; i < 20; i = i + 1) {
                    lock(&m); g = g + v; unlock(&m); } }
            int main() { int t; t = spawn(w, 1); w(2); join(t);
                         print(g); return 0; }");
        assert!(r.report.is_race_free(), "{:?}", r.report.pairs);
    }

    #[test]
    fn spawn_and_join_edges_order_accesses() {
        // Parent writes before spawn; child reads and writes; parent reads
        // after join. No race anywhere.
        let r = run("int g;
            void w(int v) { g = g + v; }
            int main() { int t; g = 5; t = spawn(w, 3); join(t);
                         print(g); return 0; }");
        assert!(r.report.is_race_free(), "{:?}", r.report.pairs);
    }

    #[test]
    fn barrier_separates_phases() {
        // Each worker writes its own slot, crosses the barrier, then reads
        // the other's slot — ordered by the barrier, race-free.
        let r = run("int a[2]; barrier_t b; int out[2];
            void w(int id) {
                a[id] = id + 1;
                barrier_wait(&b);
                out[id] = a[1 - id];
            }
            int main() { int t;
                barrier_init(&b, 2);
                t = spawn(w, 0); w(1); join(t);
                print(out[0] + out[1]); return 0; }");
        assert!(r.report.is_race_free(), "{:?}", r.report.pairs);
    }

    #[test]
    fn missing_barrier_makes_phase_racy() {
        // Same shape without the barrier: cross-slot reads race with the
        // writes.
        let r = run("int a[2]; int out[2];
            void w(int id) {
                a[id] = id + 1;
                out[id] = a[1 - id];
            }
            int main() { int t;
                t = spawn(w, 0); w(1); join(t);
                print(out[0] + out[1]); return 0; }");
        assert!(!r.report.is_race_free());
    }

    #[test]
    fn condvar_handoff_is_race_free() {
        // Producer fills `g` then signals under the mutex; consumer waits
        // for the flag. The cond edge plus mutex edges order everything.
        let r = run("int g; int ready; lock_t m; cond_t c;
            void consumer(int unused) { int v;
                lock(&m);
                while (ready == 0) { cond_wait(&c, &m); }
                v = g;
                unlock(&m);
                print(v);
            }
            int main() { int t;
                t = spawn(consumer, 0);
                lock(&m);
                g = 42; ready = 1;
                cond_signal(&c);
                unlock(&m);
                join(t); return 0; }");
        assert!(r.report.is_race_free(), "{:?}", r.report.pairs);
    }

    #[test]
    fn heap_cells_spill_and_still_race() {
        // The racy cell is malloc'd: its address is past the static
        // frontier, so the shadow table's spill map carries the state.
        let r = run("int *p;
            void w(int v) { *p = *p + v; }
            int main() { int t; p = malloc(1); *p = 0;
                t = spawn(w, 1); w(2); join(t);
                print(*p); return 0; }");
        assert!(!r.report.is_race_free());
    }

    #[test]
    fn read_share_promotion_reports_all_readers() {
        // Two concurrent readers promote the read state to a vector; an
        // unordered writer then races with *both* read sites.
        let r = run("int g; int out[2];
            void rdr(int id) { out[id] = g; }
            void wtr(int unused) { g = 9; }
            int main() { int a; int b; int c;
                a = spawn(rdr, 0); b = spawn(rdr, 1); c = spawn(wtr, 0);
                join(a); join(b); join(c);
                print(out[0] + out[1]); return 0; }");
        assert!(!r.report.is_race_free());
        // g's read sites in rdr and write site in wtr: the write must race
        // with at least two distinct prior accesses (the two reads happen
        // at the same static site, but the initial-state write epoch and
        // the reads give distinct pairs; at minimum the read-write pair
        // exists).
        assert!(r.report.races >= 2, "races = {}", r.report.races);
    }

    #[test]
    fn merge_unions_pairs_and_sums_counts() {
        let mut a = DrfReport {
            pairs: vec![(AccessId(1), AccessId(2))],
            witnesses: vec![RaceWitness {
                prior: AccessId(1),
                current: AccessId(2),
                kind: RaceKind::WriteWrite,
                addr: 3,
                threads: (0, 1),
                time: 7,
            }],
            races: 4,
        };
        let b = DrfReport {
            pairs: vec![(AccessId(1), AccessId(2)), (AccessId(0), AccessId(5))],
            witnesses: vec![
                RaceWitness {
                    prior: AccessId(1),
                    current: AccessId(2),
                    kind: RaceKind::WriteWrite,
                    addr: 3,
                    threads: (0, 1),
                    time: 9,
                },
                RaceWitness {
                    prior: AccessId(5),
                    current: AccessId(0),
                    kind: RaceKind::WriteRead,
                    addr: 8,
                    threads: (1, 0),
                    time: 11,
                },
            ],
            races: 2,
        };
        a.merge(&b);
        assert_eq!(
            a.pairs,
            vec![(AccessId(0), AccessId(5)), (AccessId(1), AccessId(2))]
        );
        assert_eq!(a.races, 6);
        assert_eq!(a.racy_accesses().len(), 4);
        assert!(!a.is_race_free());
    }

    #[test]
    fn race_free_run_exports_certificate_verifying_parallel_replay() {
        let p = compile(
            "int g; lock_t m;
             void w(int v) { int i;
                 for (i = 0; i < 30; i = i + 1) {
                     lock(&m); g = g + v; unlock(&m); } }
             int main() { int t; int u;
                 t = spawn(w, 1); u = spawn(w, 2); w(4);
                 join(t); join(u); print(g); return 0; }",
        )
        .unwrap();
        let cfg = ExecConfig {
            seed: 13,
            ..ExecConfig::default()
        };
        let run = detect(&p, &cfg);
        assert!(run.report.is_race_free(), "{:?}", run.report.pairs);
        let cert = run.certificate(&cfg).expect("race-free run must certify");
        assert_eq!(cert.seed, 13);
        assert!(cert.verify(&run.result));

        // A parallel re-execution must replay the certified execution
        // bit-identically — same state hash, counts, segment boundaries.
        let par = chimera_runtime::execute(
            &p,
            &ExecConfig {
                parallelism: 4,
                ..cfg
            },
        );
        assert!(cert.verify(&par), "parallel run diverged from certificate");

        // And a different program's result must not verify.
        let other = compile(
            "int main() { print(1); return 0; }",
        )
        .unwrap();
        let r2 = chimera_runtime::execute(&other, &cfg);
        assert!(!cert.verify(&r2));

        let json = cert.to_json();
        assert!(json.contains("\"digest\""), "{json}");
        assert!(json.contains(&format!("{:016x}", cert.state_hash)), "{json}");
    }

    #[test]
    fn racy_run_exports_no_certificate() {
        let p = compile(
            "int g;
             void w(int v) { int i; int x;
                 for (i = 0; i < 20; i = i + 1) { x = g; g = x + v; } }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                          print(g); return 0; }",
        )
        .unwrap();
        let cfg = ExecConfig::default();
        let run = detect(&p, &cfg);
        assert!(!run.report.is_race_free());
        assert!(run.certificate(&cfg).is_none());
    }

    #[test]
    fn certificate_reconstructs_from_parts_and_rejects_forgery() {
        let p = compile(
            "int g; lock_t m;
             void w(int v) { lock(&m); g = g + v; unlock(&m); }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                          print(g); return 0; }",
        )
        .unwrap();
        let cfg = ExecConfig::default();
        let run = detect(&p, &cfg);
        let cert = run.certificate(&cfg).expect("race-free run certifies");
        let back = SegmentCertificate::from_parts(
            cert.seed,
            cert.threads,
            cert.instrs,
            cert.sync_ops,
            cert.state_hash,
            cert.digest,
        )
        .expect("faithful fields reconstruct");
        assert_eq!(back, cert);
        // Tamper with any attested field: the digest no longer binds.
        let err = SegmentCertificate::from_parts(
            cert.seed,
            cert.threads,
            cert.instrs,
            cert.sync_ops,
            cert.state_hash ^ 1,
            cert.digest,
        )
        .unwrap_err();
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn detection_is_deterministic_per_seed() {
        let p = compile(
            "int g;
             void w(int v) { int i; int x;
                 for (i = 0; i < 12; i = i + 1) { x = g; g = x + v; } }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                          print(g); return 0; }",
        )
        .unwrap();
        let cfg = ExecConfig {
            seed: 9,
            ..ExecConfig::default()
        };
        let a = detect(&p, &cfg);
        let b = detect(&p, &cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(a.result.state_hash, b.result.state_hash);
    }
}
