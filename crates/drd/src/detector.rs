//! The online FastTrack-style detector: shadow cells over the VM's dense
//! address space, per-thread vector clocks, and the [`Supervisor`] that
//! folds the machine's event stream into them.

use crate::vc::{Epoch, VectorClock};
use crate::{DrfReport, RaceKind, RaceWitness};
use chimera_minic::ir::{AccessId, Program};
use chimera_runtime::sync::AddrTable;
use chimera_runtime::{Event, EventKind, EventMask, Memory, Supervisor, SyncKind};
use std::collections::{BTreeMap, BTreeSet};

/// Read history of one variable: a single epoch in the common
/// totally-ordered case, promoted to a full vector clock only when two
/// concurrent reads are observed (FastTrack's key size optimization).
#[derive(Debug, Clone)]
enum ReadState {
    /// Last read, when all reads so far are totally ordered.
    Excl(Epoch, AccessId),
    /// Concurrent readers: per-thread read clocks plus the access site of
    /// each thread's last read (for witness provenance).
    Shared(Box<SharedRead>),
}

#[derive(Debug, Clone, Default)]
struct SharedRead {
    vc: VectorClock,
    /// `site[t]` is meaningful iff `vc[t] > 0`.
    site: Vec<AccessId>,
}

impl SharedRead {
    fn set(&mut self, t: u32, clock: u32, access: AccessId) {
        self.vc.set(t, clock);
        let i = t as usize;
        if self.site.len() <= i {
            self.site.resize(i + 1, AccessId(0));
        }
        self.site[i] = access;
    }
}

/// Shadow state of one memory cell.
#[derive(Debug, Clone)]
struct VarState {
    w: Epoch,
    w_site: AccessId,
    r: ReadState,
}

impl Default for VarState {
    fn default() -> VarState {
        VarState {
            w: Epoch::NONE,
            w_site: AccessId(0),
            r: ReadState::Excl(Epoch::NONE, AccessId(0)),
        }
    }
}

/// Vector-clock state of one barrier.
///
/// Arrivals join into `gather`; when the epoch releases (the machine's
/// single `Sync { kind: Barrier }` event) `gather` becomes `released`, and
/// every thread resuming past the barrier joins `released`. At most one
/// released epoch is ever pending: no thread can arrive at epoch *n+1*
/// before every thread has resumed from epoch *n*.
#[derive(Debug, Clone, Default)]
struct BarrierVc {
    gather: VectorClock,
    released: VectorClock,
}

/// The online happens-before race detector. Attach it to an execution
/// with [`chimera_runtime::execute_supervised`] (or use [`crate::detect`]),
/// then call [`RaceDetector::into_report`].
///
/// Shadow cells mirror the VM's memory addressing the same way the sync
/// tables do: a dense `Vec` below the static-global frontier (where every
/// address is known at load time) spilling to a `BTreeMap` for
/// dynamically allocated regions — `AddrTable` from
/// `chimera_runtime::sync`, reused directly.
pub struct RaceDetector {
    /// Per-thread vector clocks, indexed by `ThreadId`.
    vcs: Vec<VectorClock>,
    /// Shadow cell per touched memory address.
    shadow: AddrTable<VarState>,
    /// Lock vector clock per program mutex (keyed by cell address).
    mutexes: AddrTable<VectorClock>,
    /// Condition-variable clocks (signaler releases, waiter acquires).
    conds: AddrTable<VectorClock>,
    /// Barrier clocks.
    barriers: AddrTable<BarrierVc>,
    /// Weak-lock clocks, dense by `WeakLockId`. Ranged (loop-lock)
    /// acquisitions are treated at whole-lock granularity — conservative:
    /// it only *adds* happens-before edges.
    weak: Vec<VectorClock>,
    /// Final clocks of exited threads, consumed by join edges.
    exited: BTreeMap<u32, VectorClock>,
    /// Deduplicated racy pairs (normalized `a ≤ b`).
    pairs: BTreeSet<(AccessId, AccessId)>,
    /// First dynamic witness per pair, in detection order.
    witnesses: Vec<RaceWitness>,
    /// Total dynamic race observations (every racy access re-counts).
    races: u64,
}

impl RaceDetector {
    /// A detector sized for `program`: dense shadow cells below the
    /// static-global frontier, dense weak-lock clocks below the
    /// instrumenter's lock count.
    pub fn new(program: &Program) -> RaceDetector {
        let frontier = Memory::new(program).frontier();
        let mut vcs = vec![VectorClock::new()];
        vcs[0].set(0, 1); // main's initial epoch is 1@0
        RaceDetector {
            vcs,
            shadow: AddrTable::with_dense_limit(frontier),
            mutexes: AddrTable::with_dense_limit(frontier),
            conds: AddrTable::with_dense_limit(frontier),
            barriers: AddrTable::with_dense_limit(frontier),
            weak: vec![VectorClock::new(); program.weak_locks as usize],
            exited: BTreeMap::new(),
            pairs: BTreeSet::new(),
            witnesses: Vec::new(),
            races: 0,
        }
    }

    /// Finish and summarize.
    pub fn into_report(self) -> DrfReport {
        DrfReport {
            pairs: self.pairs.into_iter().collect(),
            witnesses: self.witnesses,
            races: self.races,
        }
    }

    /// Races observed so far (for streaming consumers).
    pub fn races_so_far(&self) -> u64 {
        self.races
    }

    fn ensure_thread(&mut self, t: u32) {
        let i = t as usize;
        if self.vcs.len() <= i {
            self.vcs.resize(i + 1, VectorClock::new());
        }
        if self.vcs[i].get(t) == 0 {
            self.vcs[i].set(t, 1);
        }
    }

    fn epoch(&self, t: u32) -> Epoch {
        Epoch::new(t, self.vcs[t as usize].get(t))
    }

    /// Advance `t`'s scalar clock (after every release operation, so
    /// distinct critical sections get distinct epochs).
    fn inc(&mut self, t: u32) {
        let c = self.vcs[t as usize].get(t);
        self.vcs[t as usize].set(t, c + 1);
    }

    fn report(
        &mut self,
        prior: AccessId,
        current: AccessId,
        kind: RaceKind,
        addr: i64,
        threads: (u32, u32),
        time: u64,
    ) {
        self.races += 1;
        let key = if prior <= current {
            (prior, current)
        } else {
            (current, prior)
        };
        if self.pairs.insert(key) {
            self.witnesses.push(RaceWitness {
                prior,
                current,
                kind,
                addr,
                threads,
                time,
            });
        }
    }

    fn read(&mut self, t: u32, addr: i64, access: AccessId, time: u64) {
        self.ensure_thread(t);
        let et = self.epoch(t);
        let vs = self.shadow.ensure(addr);
        // Same-epoch fast path: repeated read with no intervening release.
        if matches!(vs.r, ReadState::Excl(e, _) if e == et) {
            return;
        }
        let (w, w_site) = (vs.w, vs.w_site);
        // Write-read race: the last write is not ordered before this read.
        if !self.vcs[t as usize].covers(w) {
            self.report(w_site, access, RaceKind::WriteRead, addr, (w.tid(), t), time);
        }
        let vt = &self.vcs[t as usize];
        let r = &mut self.shadow.ensure(addr).r;
        match r {
            ReadState::Excl(e, site) => {
                let (pe, ps) = (*e, *site);
                if vt.covers(pe) {
                    // All reads so far are ordered before us: stay exclusive.
                    *e = et;
                    *site = access;
                } else {
                    // A concurrent read exists: promote to a read vector.
                    let mut sr = SharedRead::default();
                    sr.set(pe.tid(), pe.clock(), ps);
                    sr.set(t, et.clock(), access);
                    *r = ReadState::Shared(Box::new(sr));
                }
            }
            ReadState::Shared(sr) => {
                sr.set(t, et.clock(), access);
            }
        }
    }

    fn write(&mut self, t: u32, addr: i64, access: AccessId, time: u64) {
        self.ensure_thread(t);
        let et = self.epoch(t);
        let vs = self.shadow.ensure(addr);
        // Same-epoch fast path: repeated write with no intervening release.
        if vs.w == et {
            return;
        }
        let (w, w_site) = (vs.w, vs.w_site);
        // Write-write race.
        if !self.vcs[t as usize].covers(w) {
            self.report(w_site, access, RaceKind::WriteWrite, addr, (w.tid(), t), time);
        }
        // Read-write races against every unordered prior reader.
        let vt = &self.vcs[t as usize];
        let racers: Vec<(u32, AccessId)> = match &self.shadow.ensure(addr).r {
            ReadState::Excl(e, site) => {
                if !e.is_none() && !vt.covers(*e) {
                    vec![(e.tid(), *site)]
                } else {
                    Vec::new()
                }
            }
            ReadState::Shared(sr) => sr
                .vc
                .iter()
                .filter(|&(u, cu)| cu > vt.get(u))
                .map(|(u, _)| (u, sr.site[u as usize]))
                .collect(),
        };
        for (u, site) in racers {
            self.report(site, access, RaceKind::ReadWrite, addr, (u, t), time);
        }
        let vs = self.shadow.ensure(addr);
        vs.w = et;
        vs.w_site = access;
        // The write subsumes the (now ordered or already-reported) read
        // history; restart read tracking in the cheap exclusive form.
        vs.r = ReadState::Excl(Epoch::NONE, AccessId(0));
    }
}

impl Supervisor for RaceDetector {
    /// Everything that carries a happens-before edge, plus the access
    /// events themselves. Input/output/function events are irrelevant to
    /// the race relation and stay masked off.
    fn event_mask(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Load,
            EventKind::Store,
            EventKind::Sync,
            EventKind::SyncRelease,
            EventKind::BarrierResume,
            EventKind::WeakAcquire,
            EventKind::WeakRelease,
            EventKind::WeakForcedRelease,
            EventKind::Spawned,
            EventKind::Exited,
        ])
    }

    fn on_event(&mut self, ev: &Event) {
        match *ev {
            Event::Load {
                thread,
                addr,
                access,
                time,
            } => self.read(thread.0, addr, access, time),
            Event::Store {
                thread,
                addr,
                access,
                time,
            } => self.write(thread.0, addr, access, time),
            Event::Sync {
                thread, kind, addr, ..
            } => {
                let t = thread.0;
                self.ensure_thread(t);
                match kind {
                    SyncKind::Mutex => {
                        let src = self.mutexes.ensure(addr);
                        self.vcs[t as usize].join(src);
                    }
                    SyncKind::Cond => {
                        let src = self.conds.ensure(addr);
                        self.vcs[t as usize].join(src);
                    }
                    SyncKind::Join => {
                        // `addr` is the joined thread's id.
                        if let Some(vc) = self.exited.get(&(addr as u32)) {
                            self.vcs[t as usize].join(vc);
                        }
                    }
                    SyncKind::Barrier => {
                        // The epoch releases: the gathered arrivals become
                        // the clock every resume joins.
                        let b = self.barriers.ensure(addr);
                        b.released = std::mem::take(&mut b.gather);
                    }
                    // The spawn edge is carried by `Spawned`.
                    SyncKind::Spawn => {}
                }
            }
            Event::SyncRelease {
                thread, kind, addr, ..
            } => {
                let t = thread.0;
                self.ensure_thread(t);
                match kind {
                    SyncKind::Mutex => {
                        self.mutexes.ensure(addr).join(&self.vcs[t as usize]);
                    }
                    SyncKind::Cond => {
                        self.conds.ensure(addr).join(&self.vcs[t as usize]);
                    }
                    SyncKind::Barrier => {
                        let vt = &self.vcs[t as usize];
                        self.barriers.ensure(addr).gather.join(vt);
                    }
                    // The machine only emits mutex/cond/barrier releases.
                    SyncKind::Join | SyncKind::Spawn => {}
                }
                self.inc(t);
            }
            Event::BarrierResume { thread, addr, .. } => {
                let t = thread.0;
                self.ensure_thread(t);
                let src = &self.barriers.ensure(addr).released;
                self.vcs[t as usize].join(src);
            }
            Event::WeakAcquire { thread, lock, .. } => {
                let t = thread.0;
                self.ensure_thread(t);
                if let Some(vc) = self.weak.get(lock.index()) {
                    self.vcs[t as usize].join(vc);
                }
            }
            Event::WeakRelease { thread, lock, .. } => {
                self.weak_release(thread.0, lock.index());
            }
            Event::WeakForcedRelease { lock, holder, .. } => {
                self.weak_release(holder.0, lock.index());
            }
            Event::Spawned { parent, child, .. } => {
                self.ensure_thread(parent.0);
                self.ensure_thread(child.0);
                let mut vc = self.vcs[parent.0 as usize].clone();
                vc.set(child.0, 1);
                self.vcs[child.0 as usize] = vc;
                self.inc(parent.0);
            }
            Event::Exited { thread, .. } => {
                self.ensure_thread(thread.0);
                self.exited
                    .insert(thread.0, self.vcs[thread.0 as usize].clone());
            }
            _ => {}
        }
    }
}

impl RaceDetector {
    fn weak_release(&mut self, t: u32, lock: usize) {
        self.ensure_thread(t);
        if self.weak.len() <= lock {
            self.weak.resize(lock + 1, VectorClock::new());
        }
        self.weak[lock].join(&self.vcs[t as usize]);
        self.inc(t);
    }
}
