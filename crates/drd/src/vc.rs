//! Epochs and vector clocks — the FastTrack time representation.
//!
//! An [`Epoch`] is one thread's scalar clock packed with its thread id
//! into a single `u64`; it represents the common case where a variable's
//! last write (or last read) is totally ordered with everything that came
//! before it. A full [`VectorClock`] is only materialized where epochs
//! cannot summarize the history: per-thread clocks, sync-object state, and
//! read-shared variables.

/// One thread's scalar clock at a point in time, packed as
/// `(tid << 32) | clock`.
///
/// Thread clocks start at 1, so the all-zero value doubles as the "no
/// access yet" sentinel ([`Epoch::NONE`]): its clock component 0 is
/// happens-before everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch(u64);

impl Epoch {
    /// "No access recorded": clock 0, ordered before everything.
    pub const NONE: Epoch = Epoch(0);

    /// Pack `tid`'s clock `c`.
    pub fn new(tid: u32, c: u32) -> Epoch {
        Epoch(((tid as u64) << 32) | c as u64)
    }

    /// The thread component.
    pub fn tid(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The clock component.
    pub fn clock(self) -> u32 {
        self.0 as u32
    }

    /// Is this the "no access yet" sentinel?
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.clock(), self.tid())
    }
}

/// A dense vector clock, indexed by thread id. Missing entries are 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<u32>,
}

impl VectorClock {
    /// The empty clock (all components 0).
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    /// Component for thread `t` (0 if never set).
    pub fn get(&self, t: u32) -> u32 {
        self.c.get(t as usize).copied().unwrap_or(0)
    }

    /// Set component `t` to `v`, growing as needed.
    pub fn set(&mut self, t: u32, v: u32) {
        let i = t as usize;
        if self.c.len() <= i {
            self.c.resize(i + 1, 0);
        }
        self.c[i] = v;
    }

    /// Pointwise maximum: `self ⊔= other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.c.len() < other.c.len() {
            self.c.resize(other.c.len(), 0);
        }
        for (a, &b) in self.c.iter_mut().zip(other.c.iter()) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Does `e` happen-before (or equal) this clock? (`e.clock ≤ self[e.tid]`.)
    pub fn covers(&self, e: Epoch) -> bool {
        e.clock() <= self.get(e.tid())
    }

    /// Iterate non-zero components as `(tid, clock)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.c
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0)
            .map(|(t, &v)| (t as u32, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_packing_round_trips() {
        let e = Epoch::new(7, 123);
        assert_eq!(e.tid(), 7);
        assert_eq!(e.clock(), 123);
        assert!(!e.is_none());
        assert!(Epoch::NONE.is_none());
        assert_eq!(e.to_string(), "123@7");
    }

    #[test]
    fn covers_is_component_comparison() {
        let mut v = VectorClock::new();
        v.set(1, 5);
        assert!(v.covers(Epoch::new(1, 5)));
        assert!(v.covers(Epoch::new(1, 4)));
        assert!(!v.covers(Epoch::new(1, 6)));
        // Unknown threads have component 0.
        assert!(!v.covers(Epoch::new(3, 1)));
        // The sentinel is before everything, even the empty clock.
        assert!(VectorClock::new().covers(Epoch::NONE));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 9);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 9);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 3), (1, 9), (2, 1)]);
    }
}
