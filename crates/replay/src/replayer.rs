//! The replaying supervisor: enforces recorded orders and feeds recorded
//! inputs.

use crate::logs::ReplayLogs;
use chimera_minic::ir::{Program, WeakLockId};
use chimera_runtime::{
    execute_supervised, Event, EventKind, EventMask, ExecConfig, ExecResult, OrderPoint,
    Supervisor, ThreadId,
};
use std::collections::{BTreeMap, VecDeque};

/// Result of a replay attempt.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    /// The replayed execution.
    pub result: ExecResult,
    /// True if the replay consumed every ordered log entry without getting
    /// stuck (a racy, *uninstrumented* program can diverge; a Chimera-
    /// instrumented one cannot).
    pub complete: bool,
}

/// Replay `program` against recorded `logs`.
///
/// Inputs are fed from the log with zero latency (the paper's
/// network-bound workloads replay much faster than real time for exactly
/// this reason), weak-lock timeouts are disabled, and forced releases are
/// re-injected at their recorded `(thread, instruction-count)` points.
pub fn replay(program: &Program, logs: &ReplayLogs, base: &ExecConfig) -> ReplayRun {
    let config = ExecConfig {
        log_sync: false,
        log_weak: false,
        log_input: false,
        timeout_enabled: false,
        ..*base
    };
    let mut sup = Replayer::new(logs.clone());
    let result = execute_supervised(program, &config, &mut sup);
    let complete = result.outcome.is_exit() && sup.fully_consumed();
    ReplayRun { result, complete }
}

/// The order-enforcing supervisor.
#[derive(Debug, Clone)]
pub struct Replayer {
    logs: ReplayLogs,
    mutex_pos: BTreeMap<i64, usize>,
    cond_pos: BTreeMap<i64, usize>,
    weak_pos: BTreeMap<WeakLockId, usize>,
    spawn_pos: usize,
    output_pos: usize,
    input_pos: BTreeMap<u32, u64>,
    /// Recorded forced-release points per thread, in that thread's order —
    /// replayed like DoublePlay's preemptions: the machine re-injects each
    /// when its holder reaches the recorded instruction count (and
    /// parked/running state). Cross-thread ordering needs no extra
    /// enforcement: the per-lock acquire logs already order every
    /// consequence.
    forced_by_thread: BTreeMap<u32, VecDeque<(u64, bool, WeakLockId)>>,
}

impl Replayer {
    /// Build a replayer over recorded logs.
    pub fn new(logs: ReplayLogs) -> Replayer {
        let mut forced_by_thread: BTreeMap<u32, VecDeque<(u64, bool, WeakLockId)>> =
            BTreeMap::new();
        for (t, icount, parked, lock) in &logs.forced {
            forced_by_thread
                .entry(*t)
                .or_default()
                .push_back((*icount, *parked, *lock));
        }
        Replayer {
            logs,
            mutex_pos: BTreeMap::new(),
            cond_pos: BTreeMap::new(),
            weak_pos: BTreeMap::new(),
            spawn_pos: 0,
            output_pos: 0,
            input_pos: BTreeMap::new(),
            forced_by_thread,
        }
    }

    /// Did the replay consume every ordered entry?
    pub fn fully_consumed(&self) -> bool {
        let mutex_ok = self
            .logs
            .mutex_order
            .iter()
            .all(|(a, v)| self.mutex_pos.get(a).copied().unwrap_or(0) == v.len());
        let cond_ok = self
            .logs
            .cond_order
            .iter()
            .all(|(a, v)| self.cond_pos.get(a).copied().unwrap_or(0) == v.len());
        let weak_ok = self
            .logs
            .weak_order
            .iter()
            .all(|(l, v)| self.weak_pos.get(l).copied().unwrap_or(0) == v.len());
        mutex_ok
            && cond_ok
            && weak_ok
            && self.spawn_pos == self.logs.spawn_order.len()
            && self.output_pos == self.logs.output_order.len()
            && self.forced_by_thread.values().all(VecDeque::is_empty)
    }

    fn next_allowed(order: &[u32], pos: usize, thread: ThreadId) -> bool {
        order.get(pos).is_some_and(|t| *t == thread.0)
    }
}

impl Supervisor for Replayer {
    /// Replay tracks log positions off these kinds only.
    fn event_mask(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Sync,
            EventKind::Output,
            EventKind::WeakAcquire,
            EventKind::WeakForcedRelease,
        ])
    }

    /// The machine must poll [`Supervisor::forced_release_at`] between
    /// every pair of steps whenever the recording contains forced
    /// releases — batching steps would skip recorded preemption points.
    fn injects_forced_releases(&self) -> bool {
        !self.logs.forced.is_empty()
    }

    fn may_proceed(&mut self, point: OrderPoint, thread: ThreadId) -> bool {
        match point {
            OrderPoint::Mutex(addr) => {
                let pos = self.mutex_pos.get(&addr).copied().unwrap_or(0);
                match self.logs.mutex_order.get(&addr) {
                    Some(order) => Self::next_allowed(order, pos, thread),
                    // A mutex never seen during recording: let it through
                    // (can only happen on divergent replays of racy code).
                    None => true,
                }
            }
            OrderPoint::Cond(addr) => {
                let pos = self.cond_pos.get(&addr).copied().unwrap_or(0);
                match self.logs.cond_order.get(&addr) {
                    Some(order) => Self::next_allowed(order, pos, thread),
                    None => true,
                }
            }
            OrderPoint::Weak(lock) => {
                let pos = self.weak_pos.get(&lock).copied().unwrap_or(0);
                match self.logs.weak_order.get(&lock) {
                    Some(order) => Self::next_allowed(order, pos, thread),
                    None => true,
                }
            }
            OrderPoint::Spawn => Self::next_allowed(
                &self.logs.spawn_order,
                self.spawn_pos,
                thread,
            ),
            OrderPoint::Output => {
                // Outputs recorded before this log format existed (or from
                // hand-built logs) are unconstrained.
                self.logs.output_order.is_empty()
                    || Self::next_allowed(&self.logs.output_order, self.output_pos, thread)
            }
            // Per-object replay feeds inputs by per-thread sequence number
            // (`input_override`); their global position needs no gate.
            OrderPoint::Input => true,
        }
    }

    fn on_event(&mut self, ev: &Event) {
        match ev {
            Event::Sync { thread: _, kind, addr, .. } => match kind {
                chimera_runtime::SyncKind::Mutex => {
                    *self.mutex_pos.entry(*addr).or_insert(0) += 1;
                }
                chimera_runtime::SyncKind::Cond => {
                    *self.cond_pos.entry(*addr).or_insert(0) += 1;
                }
                chimera_runtime::SyncKind::Spawn => {
                    self.spawn_pos += 1;
                }
                _ => {}
            },
            Event::Output { .. } => {
                self.output_pos += 1;
            }
            Event::WeakAcquire { lock, .. } => {
                *self.weak_pos.entry(*lock).or_insert(0) += 1;
            }
            Event::WeakForcedRelease { holder, .. } => {
                if let Some(q) = self.forced_by_thread.get_mut(&holder.0) {
                    q.pop_front();
                }
            }
            _ => {}
        }
    }

    fn input_override(
        &mut self,
        thread: ThreadId,
        _chan: i64,
        _len: usize,
    ) -> Option<Vec<i64>> {
        let seq = self.input_pos.entry(thread.0).or_insert(0);
        let data = self.logs.inputs.get(&(thread.0, *seq)).cloned();
        if data.is_some() {
            *seq += 1;
        }
        data
    }

    fn forced_release_at(
        &mut self,
        thread: ThreadId,
        icount: u64,
        parked: bool,
    ) -> Option<WeakLockId> {
        let (ic, pk, lock) = *self.forced_by_thread.get(&thread.0)?.front()?;
        if ic == icount && pk == parked {
            // Note: the queue entry is consumed in on_event when the
            // machine actually emits the WeakForcedRelease (the injection
            // is a no-op until the thread holds the lock again).
            Some(lock)
        } else {
            None
        }
    }
}

/// Result of a digest-observing replay (see [`replay_bisect`]).
#[derive(Debug, Clone)]
pub struct BisectReplay {
    /// The replayed execution.
    pub result: ExecResult,
    /// True if the replay consumed every ordered log entry (as in
    /// [`ReplayRun::complete`]).
    pub complete: bool,
    /// The logs the replay itself produced — journal and checkpoints
    /// included — ready to diff against the recording with
    /// `localize_divergence`.
    pub observed: ReplayLogs,
}

/// Replay `program` against `logs` while simultaneously re-recording it:
/// the returned [`BisectReplay::observed`] logs carry the replay's own
/// journal and schedule-digest checkpoints at the recording's own
/// checkpoint interval, which is what divergence bisection compares
/// against the original recording.
///
/// Unlike [`replay`], which enforces only the *per-object* orders (all
/// Chimera needs for state determinism — independent objects may commute
/// globally), forensic replay additionally pins every ordered event to
/// its recorded **global** journal position. That sequentialization is
/// what makes the observed journal and checkpoint digests byte-comparable
/// to the recording; it costs parallelism, which is irrelevant when
/// hunting a divergence.
pub fn replay_bisect(program: &Program, logs: &ReplayLogs, base: &ExecConfig) -> BisectReplay {
    let config = ExecConfig {
        log_sync: false,
        log_weak: false,
        log_input: false,
        timeout_enabled: false,
        ..*base
    };
    // Mirror the recording's checkpoint cadence so the digest streams
    // line up; default to the standard chunk interval for logs recorded
    // without checkpoints.
    let interval = logs
        .checkpoints
        .first()
        .map_or(crate::logs::CHUNK_EVENTS as u64, |c| c.events);
    let mut sup = BisectReplayer {
        rep: Replayer::new(logs.clone()),
        rec: crate::record::Recorder::with_interval(interval),
        journal: logs.journal.clone(),
        cursor: 0,
    };
    let result = execute_supervised(program, &config, &mut sup);
    let complete = result.outcome.is_exit() && sup.rep.fully_consumed();
    BisectReplay {
        result,
        complete,
        observed: sup.rec.logs,
    }
}

/// A [`Replayer`] composed with a [`crate::record::Recorder`]: the
/// replayer side enforces the recorded per-object orders, the global gate
/// (`journal`/`cursor`) serializes events into their recorded journal
/// positions, and the recorder side writes down what the replay actually
/// did (plus checkpoints).
#[derive(Debug, Clone)]
struct BisectReplayer {
    rep: Replayer,
    rec: crate::record::Recorder,
    journal: Vec<crate::logs::JournalEvent>,
    cursor: usize,
}

impl BisectReplayer {
    /// Does the journal event match what `thread` wants to commit at
    /// `point`? `Forced` entries never match here: they are not gated
    /// (their timing is pinned by the holder's instruction count), so a
    /// `Forced` journal head simply stalls every gated thread until the
    /// holder reaches its recorded preemption point and emits it.
    fn head_matches(ev: &crate::logs::JournalEvent, point: OrderPoint, thread: ThreadId) -> bool {
        use crate::logs::JournalEvent as J;
        match (*ev, point) {
            (J::Mutex { thread: t, addr }, OrderPoint::Mutex(a)) => t == thread.0 && addr == a,
            (J::Cond { thread: t, addr }, OrderPoint::Cond(a)) => t == thread.0 && addr == a,
            (J::Weak { thread: t, lock }, OrderPoint::Weak(l)) => t == thread.0 && lock == l,
            (J::Spawn { thread: t }, OrderPoint::Spawn) => t == thread.0,
            (J::Output { thread: t }, OrderPoint::Output) => t == thread.0,
            (J::Input { thread: t }, OrderPoint::Input) => t == thread.0,
            _ => false,
        }
    }

    /// Is `ev` one of the journal-ordered kinds (advances the cursor)?
    fn is_journaled(ev: &Event) -> bool {
        match ev {
            Event::Sync { kind, .. } => matches!(
                kind,
                chimera_runtime::SyncKind::Mutex
                    | chimera_runtime::SyncKind::Cond
                    | chimera_runtime::SyncKind::Spawn
            ),
            Event::Output { .. }
            | Event::Input { .. }
            | Event::WeakAcquire { .. }
            | Event::WeakForcedRelease { .. } => true,
            _ => false,
        }
    }
}

impl Supervisor for BisectReplayer {
    /// Union of both sides: the replayer's order-tracking kinds plus the
    /// recorder's `Input`.
    fn event_mask(&self) -> EventMask {
        self.rep.event_mask().union(self.rec.event_mask())
    }

    fn injects_forced_releases(&self) -> bool {
        self.rep.injects_forced_releases()
    }

    fn checkpoint_interval(&self) -> u64 {
        self.rec.checkpoint_interval()
    }

    fn on_checkpoint(&mut self, events: u64, state_hash: u64) {
        self.rec.on_checkpoint(events, state_hash);
    }

    fn defers_cond_signals(&self) -> bool {
        true
    }

    fn on_event(&mut self, ev: &Event) {
        self.rep.on_event(ev);
        self.rec.on_event(ev);
        if Self::is_journaled(ev) {
            // Advance unconditionally: on a divergent replay the emitted
            // event may not match `journal[cursor]`, but the comparison
            // is `localize_divergence`'s job, not the gate's.
            self.cursor += 1;
        }
    }

    fn may_proceed(&mut self, point: OrderPoint, thread: ThreadId) -> bool {
        if !self.rep.may_proceed(point, thread) {
            return false;
        }
        match self.journal.get(self.cursor) {
            Some(expected) => Self::head_matches(expected, point, thread),
            // Past the recorded journal (or a v1 log with none): the
            // global gate has nothing left to say.
            None => true,
        }
    }

    fn input_override(
        &mut self,
        thread: ThreadId,
        chan: i64,
        len: usize,
    ) -> Option<Vec<i64>> {
        self.rep.input_override(thread, chan, len)
    }

    fn forced_release_at(
        &mut self,
        thread: ThreadId,
        icount: u64,
        parked: bool,
    ) -> Option<WeakLockId> {
        self.rep.forced_release_at(thread, icount, parked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record;
    use chimera_minic::compile;

    #[test]
    fn drf_program_replays_identically() {
        let src = "int g; lock_t m; int buf[16];
             void w(int n) { int i; for (i = 0; i < 50; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t;
                sys_read(1000, &buf[0], 16);
                t = spawn(w, 1); w(2); join(t);
                print(g); print(buf[3]); return 0; }";
        let p = compile(src).unwrap();
        let rec = record(&p, &ExecConfig { seed: 11, ..ExecConfig::default() });
        // Replay under a different seed (different jitter): everything
        // observable must still match.
        let rep = replay(&p, &rec.logs, &ExecConfig { seed: 999, ..ExecConfig::default() });
        assert!(rep.complete, "{:?}", rep.result.outcome);
        assert_eq!(rep.result.state_hash, rec.result.state_hash);
        assert_eq!(rep.result.output, rec.result.output);
    }

    #[test]
    fn replay_feeds_recorded_input_without_latency() {
        let src = "int buf[64];
             int main() { sys_read(1000, &buf[0], 64); print(buf[0]); return 0; }";
        let p = compile(src).unwrap();
        let rec = record(&p, &ExecConfig { seed: 3, ..ExecConfig::default() });
        let rep = replay(&p, &rec.logs, &ExecConfig { seed: 4, ..ExecConfig::default() });
        assert!(rep.complete);
        assert_eq!(rep.result.output, rec.result.output);
        assert_eq!(rep.result.stats.io_wait, 0, "recorded input is fed directly");
        assert!(rep.result.makespan < rec.result.makespan);
    }

    #[test]
    fn racy_program_without_weak_locks_can_diverge() {
        // A read-modify-write race: replay does not enforce racy access
        // order, so across many seeds at least one replay differs from its
        // recording. This is the problem Chimera exists to solve.
        let src = "int g;
             void w(int v) { int i; int x;
                for (i = 0; i < 300; i = i + 1) { x = g; g = x + v; } }
             int main() { int t; t = spawn(w, 1); w(1); join(t); print(g); return 0; }";
        let p = compile(src).unwrap();
        let mut any_divergence = false;
        for seed in 0..10 {
            let rec = record(&p, &ExecConfig { seed, ..ExecConfig::default() });
            let rep = replay(
                &p,
                &rec.logs,
                &ExecConfig { seed: seed + 1000, ..ExecConfig::default() },
            );
            if rep.result.output != rec.result.output || !rep.complete {
                any_divergence = true;
                break;
            }
        }
        assert!(
            any_divergence,
            "expected at least one divergent replay of a racy program"
        );
    }

    #[test]
    fn bisect_replay_reproduces_journal_and_checkpoints() {
        // The digest-soundness test: under a *different* jitter seed, a
        // conforming replay must reproduce the recorded journal AND every
        // checkpoint digest bit-for-bit. If this fails, something
        // schedule-dependent leaked into the fold.
        let src = "int g; lock_t m; int buf[16];
             void w(int n) { int i; for (i = 0; i < 200; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t;
                sys_read(1000, &buf[0], 16);
                t = spawn(w, 1); w(2); join(t);
                print(g); print(buf[3]); return 0; }";
        let p = compile(src).unwrap();
        for seed in [7u64, 23, 901] {
            let rec = record(&p, &ExecConfig { seed, ..ExecConfig::default() });
            let rep = replay_bisect(
                &p,
                &rec.logs,
                &ExecConfig { seed: seed ^ 0xabcd, ..ExecConfig::default() },
            );
            assert!(rep.complete, "seed {seed}");
            assert_eq!(rep.observed.journal, rec.logs.journal, "seed {seed}");
            assert!(!rec.logs.checkpoints.is_empty(), "seed {seed}");
            assert_eq!(rep.observed.checkpoints, rec.logs.checkpoints, "seed {seed}");
        }
    }

    #[test]
    fn replayer_reports_unconsumed_logs() {
        let mut logs = ReplayLogs::default();
        logs.spawn_order.push(0);
        let r = Replayer::new(logs);
        assert!(!r.fully_consumed());
    }
}
