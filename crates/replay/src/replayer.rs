//! The replaying supervisor: enforces recorded orders and feeds recorded
//! inputs.

use crate::logs::ReplayLogs;
use chimera_minic::ir::{Program, WeakLockId};
use chimera_runtime::{
    execute_supervised, Event, EventKind, EventMask, ExecConfig, ExecResult, OrderPoint,
    Supervisor, ThreadId,
};
use std::collections::{BTreeMap, VecDeque};

/// Result of a replay attempt.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    /// The replayed execution.
    pub result: ExecResult,
    /// True if the replay consumed every ordered log entry without getting
    /// stuck (a racy, *uninstrumented* program can diverge; a Chimera-
    /// instrumented one cannot).
    pub complete: bool,
}

/// Replay `program` against recorded `logs`.
///
/// Inputs are fed from the log with zero latency (the paper's
/// network-bound workloads replay much faster than real time for exactly
/// this reason), weak-lock timeouts are disabled, and forced releases are
/// re-injected at their recorded `(thread, instruction-count)` points.
pub fn replay(program: &Program, logs: &ReplayLogs, base: &ExecConfig) -> ReplayRun {
    let config = ExecConfig {
        log_sync: false,
        log_weak: false,
        log_input: false,
        timeout_enabled: false,
        ..*base
    };
    let mut sup = Replayer::new(logs.clone());
    let result = execute_supervised(program, &config, &mut sup);
    let complete = result.outcome.is_exit() && sup.fully_consumed();
    ReplayRun { result, complete }
}

/// The order-enforcing supervisor.
#[derive(Debug, Clone)]
pub struct Replayer {
    logs: ReplayLogs,
    mutex_pos: BTreeMap<i64, usize>,
    cond_pos: BTreeMap<i64, usize>,
    weak_pos: BTreeMap<WeakLockId, usize>,
    spawn_pos: usize,
    output_pos: usize,
    input_pos: BTreeMap<u32, u64>,
    /// Recorded forced-release points per thread, in that thread's order —
    /// replayed like DoublePlay's preemptions: the machine re-injects each
    /// when its holder reaches the recorded instruction count (and
    /// parked/running state). Cross-thread ordering needs no extra
    /// enforcement: the per-lock acquire logs already order every
    /// consequence.
    forced_by_thread: BTreeMap<u32, VecDeque<(u64, bool, WeakLockId)>>,
}

impl Replayer {
    /// Build a replayer over recorded logs.
    pub fn new(logs: ReplayLogs) -> Replayer {
        let mut forced_by_thread: BTreeMap<u32, VecDeque<(u64, bool, WeakLockId)>> =
            BTreeMap::new();
        for (t, icount, parked, lock) in &logs.forced {
            forced_by_thread
                .entry(*t)
                .or_default()
                .push_back((*icount, *parked, *lock));
        }
        Replayer {
            logs,
            mutex_pos: BTreeMap::new(),
            cond_pos: BTreeMap::new(),
            weak_pos: BTreeMap::new(),
            spawn_pos: 0,
            output_pos: 0,
            input_pos: BTreeMap::new(),
            forced_by_thread,
        }
    }

    /// Did the replay consume every ordered entry?
    pub fn fully_consumed(&self) -> bool {
        let mutex_ok = self
            .logs
            .mutex_order
            .iter()
            .all(|(a, v)| self.mutex_pos.get(a).copied().unwrap_or(0) == v.len());
        let cond_ok = self
            .logs
            .cond_order
            .iter()
            .all(|(a, v)| self.cond_pos.get(a).copied().unwrap_or(0) == v.len());
        let weak_ok = self
            .logs
            .weak_order
            .iter()
            .all(|(l, v)| self.weak_pos.get(l).copied().unwrap_or(0) == v.len());
        mutex_ok
            && cond_ok
            && weak_ok
            && self.spawn_pos == self.logs.spawn_order.len()
            && self.output_pos == self.logs.output_order.len()
            && self.forced_by_thread.values().all(VecDeque::is_empty)
    }

    fn next_allowed(order: &[u32], pos: usize, thread: ThreadId) -> bool {
        order.get(pos).is_some_and(|t| *t == thread.0)
    }
}

impl Supervisor for Replayer {
    /// Replay tracks log positions off these kinds only.
    fn event_mask(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Sync,
            EventKind::Output,
            EventKind::WeakAcquire,
            EventKind::WeakForcedRelease,
        ])
    }

    /// The machine must poll [`Supervisor::forced_release_at`] between
    /// every pair of steps whenever the recording contains forced
    /// releases — batching steps would skip recorded preemption points.
    fn injects_forced_releases(&self) -> bool {
        !self.logs.forced.is_empty()
    }

    fn may_proceed(&mut self, point: OrderPoint, thread: ThreadId) -> bool {
        match point {
            OrderPoint::Mutex(addr) => {
                let pos = self.mutex_pos.get(&addr).copied().unwrap_or(0);
                match self.logs.mutex_order.get(&addr) {
                    Some(order) => Self::next_allowed(order, pos, thread),
                    // A mutex never seen during recording: let it through
                    // (can only happen on divergent replays of racy code).
                    None => true,
                }
            }
            OrderPoint::Cond(addr) => {
                let pos = self.cond_pos.get(&addr).copied().unwrap_or(0);
                match self.logs.cond_order.get(&addr) {
                    Some(order) => Self::next_allowed(order, pos, thread),
                    None => true,
                }
            }
            OrderPoint::Weak(lock) => {
                let pos = self.weak_pos.get(&lock).copied().unwrap_or(0);
                match self.logs.weak_order.get(&lock) {
                    Some(order) => Self::next_allowed(order, pos, thread),
                    None => true,
                }
            }
            OrderPoint::Spawn => Self::next_allowed(
                &self.logs.spawn_order,
                self.spawn_pos,
                thread,
            ),
            OrderPoint::Output => {
                // Outputs recorded before this log format existed (or from
                // hand-built logs) are unconstrained.
                self.logs.output_order.is_empty()
                    || Self::next_allowed(&self.logs.output_order, self.output_pos, thread)
            }
        }
    }

    fn on_event(&mut self, ev: &Event) {
        match ev {
            Event::Sync { thread: _, kind, addr, .. } => match kind {
                chimera_runtime::SyncKind::Mutex => {
                    *self.mutex_pos.entry(*addr).or_insert(0) += 1;
                }
                chimera_runtime::SyncKind::Cond => {
                    *self.cond_pos.entry(*addr).or_insert(0) += 1;
                }
                chimera_runtime::SyncKind::Spawn => {
                    self.spawn_pos += 1;
                }
                _ => {}
            },
            Event::Output { .. } => {
                self.output_pos += 1;
            }
            Event::WeakAcquire { lock, .. } => {
                *self.weak_pos.entry(*lock).or_insert(0) += 1;
            }
            Event::WeakForcedRelease { holder, .. } => {
                if let Some(q) = self.forced_by_thread.get_mut(&holder.0) {
                    q.pop_front();
                }
            }
            _ => {}
        }
    }

    fn input_override(
        &mut self,
        thread: ThreadId,
        _chan: i64,
        _len: usize,
    ) -> Option<Vec<i64>> {
        let seq = self.input_pos.entry(thread.0).or_insert(0);
        let data = self.logs.inputs.get(&(thread.0, *seq)).cloned();
        if data.is_some() {
            *seq += 1;
        }
        data
    }

    fn forced_release_at(
        &mut self,
        thread: ThreadId,
        icount: u64,
        parked: bool,
    ) -> Option<WeakLockId> {
        let (ic, pk, lock) = *self.forced_by_thread.get(&thread.0)?.front()?;
        if ic == icount && pk == parked {
            // Note: the queue entry is consumed in on_event when the
            // machine actually emits the WeakForcedRelease (the injection
            // is a no-op until the thread holds the lock again).
            Some(lock)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record;
    use chimera_minic::compile;

    #[test]
    fn drf_program_replays_identically() {
        let src = "int g; lock_t m; int buf[16];
             void w(int n) { int i; for (i = 0; i < 50; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t;
                sys_read(1000, &buf[0], 16);
                t = spawn(w, 1); w(2); join(t);
                print(g); print(buf[3]); return 0; }";
        let p = compile(src).unwrap();
        let rec = record(&p, &ExecConfig { seed: 11, ..ExecConfig::default() });
        // Replay under a different seed (different jitter): everything
        // observable must still match.
        let rep = replay(&p, &rec.logs, &ExecConfig { seed: 999, ..ExecConfig::default() });
        assert!(rep.complete, "{:?}", rep.result.outcome);
        assert_eq!(rep.result.state_hash, rec.result.state_hash);
        assert_eq!(rep.result.output, rec.result.output);
    }

    #[test]
    fn replay_feeds_recorded_input_without_latency() {
        let src = "int buf[64];
             int main() { sys_read(1000, &buf[0], 64); print(buf[0]); return 0; }";
        let p = compile(src).unwrap();
        let rec = record(&p, &ExecConfig { seed: 3, ..ExecConfig::default() });
        let rep = replay(&p, &rec.logs, &ExecConfig { seed: 4, ..ExecConfig::default() });
        assert!(rep.complete);
        assert_eq!(rep.result.output, rec.result.output);
        assert_eq!(rep.result.stats.io_wait, 0, "recorded input is fed directly");
        assert!(rep.result.makespan < rec.result.makespan);
    }

    #[test]
    fn racy_program_without_weak_locks_can_diverge() {
        // A read-modify-write race: replay does not enforce racy access
        // order, so across many seeds at least one replay differs from its
        // recording. This is the problem Chimera exists to solve.
        let src = "int g;
             void w(int v) { int i; int x;
                for (i = 0; i < 300; i = i + 1) { x = g; g = x + v; } }
             int main() { int t; t = spawn(w, 1); w(1); join(t); print(g); return 0; }";
        let p = compile(src).unwrap();
        let mut any_divergence = false;
        for seed in 0..10 {
            let rec = record(&p, &ExecConfig { seed, ..ExecConfig::default() });
            let rep = replay(
                &p,
                &rec.logs,
                &ExecConfig { seed: seed + 1000, ..ExecConfig::default() },
            );
            if rep.result.output != rec.result.output || !rep.complete {
                any_divergence = true;
                break;
            }
        }
        assert!(
            any_divergence,
            "expected at least one divergent replay of a racy program"
        );
    }

    #[test]
    fn replayer_reports_unconsumed_logs() {
        let mut logs = ReplayLogs::default();
        logs.spawn_order.push(0);
        let r = Replayer::new(logs);
        assert!(!r.fully_consumed());
    }
}
