//! Deterministic record & replay for MiniC executions (the paper's runtime
//! system, §6.1).
//!
//! The recorder logs the three things Chimera needs (paper §1–2):
//!
//! 1. all nondeterministic input (system-call payloads),
//! 2. the happens-before order of the program's own synchronization, and
//! 3. the acquisition order of every instrumenter-added weak-lock, plus any
//!    forced releases with their exact preemption points.
//!
//! The replayer enforces those orders and feeds recorded inputs back with
//! zero latency. For a Chimera-instrumented program this reproduces the
//! execution exactly; for a racy *uninstrumented* program it can diverge —
//! a contrast demonstrated in this crate's tests and the `debug_race`
//! example.
//!
//! # Quickstart
//!
//! ```
//! use chimera_minic::compile;
//! use chimera_replay::{record, replay, verify_determinism};
//! use chimera_runtime::ExecConfig;
//!
//! let p = compile(
//!     "int g; lock_t m;
//!      void w(int n) { lock(&m); g = g + n; unlock(&m); }
//!      int main() { int t; t = spawn(w, 1); w(2); join(t);
//!                   lock(&m); print(g); unlock(&m); return 0; }",
//! )
//! .unwrap();
//! let rec = record(&p, &ExecConfig { seed: 1, ..ExecConfig::default() });
//! let rep = replay(&p, &rec.logs, &ExecConfig { seed: 2, ..ExecConfig::default() });
//! assert!(verify_determinism(&rec.result, &rep.result).equivalent);
//! ```

#![warn(missing_docs)]

pub mod logs;
pub mod record;
pub mod replayer;
pub mod verify;

pub use logs::{compressed_estimate, Checkpoint, JournalEvent, LogSuffix, ReplayLogs, CHUNK_EVENTS};
pub use record::{record, record_with, Recorder, Recording};
pub use replayer::{replay, replay_bisect, BisectReplay, ReplayRun, Replayer};
pub use verify::{
    localize_divergence, verify_determinism, verify_with_bisection, DeterminismReport, Divergence,
    DivergenceCause,
};
