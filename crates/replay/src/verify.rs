//! The determinism verifier: did a replay reproduce the recording?

use chimera_runtime::ExecResult;

/// Outcome of comparing two executions for observable equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismReport {
    /// True if all checks passed.
    pub equivalent: bool,
    /// One line per failed check.
    pub differences: Vec<String>,
}

impl DeterminismReport {
    fn ok() -> DeterminismReport {
        DeterminismReport {
            equivalent: true,
            differences: Vec::new(),
        }
    }

    fn push(&mut self, what: impl Into<String>) {
        self.equivalent = false;
        self.differences.push(what.into());
    }
}

/// Compare a recording and a replay for observable equivalence: same
/// outcome class, same final live memory, and the same output — both the
/// global commit order and each thread's projection.
pub fn verify_determinism(recorded: &ExecResult, replayed: &ExecResult) -> DeterminismReport {
    let mut report = DeterminismReport::ok();
    if recorded.outcome != replayed.outcome {
        report.push(format!(
            "outcome differs: recorded {:?}, replayed {:?}",
            recorded.outcome, replayed.outcome
        ));
    }
    if recorded.state_hash != replayed.state_hash {
        report.push(format!(
            "final memory differs: {:#x} vs {:#x}",
            recorded.state_hash, replayed.state_hash
        ));
    }
    if recorded.output != replayed.output {
        let n = recorded
            .output
            .iter()
            .zip(&replayed.output)
            .take_while(|(a, b)| a == b)
            .count();
        report.push(format!(
            "output differs from element {n}: recorded {} values, replayed {}",
            recorded.output.len(),
            replayed.output.len()
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record;
    use crate::replayer::replay;
    use chimera_minic::compile;
    use chimera_runtime::ExecConfig;

    #[test]
    fn identical_runs_verify() {
        let p = compile("int main() { print(1); print(2); return 0; }").unwrap();
        let a = chimera_runtime::execute(&p, &ExecConfig::default());
        let b = chimera_runtime::execute(&p, &ExecConfig::default());
        assert!(verify_determinism(&a, &b).equivalent);
    }

    #[test]
    fn detects_output_difference() {
        let p1 = compile("int main() { print(1); return 0; }").unwrap();
        let p2 = compile("int main() { print(2); return 0; }").unwrap();
        let a = chimera_runtime::execute(&p1, &ExecConfig::default());
        let b = chimera_runtime::execute(&p2, &ExecConfig::default());
        let rep = verify_determinism(&a, &b);
        assert!(!rep.equivalent);
        assert!(rep.differences.iter().any(|d| d.contains("output")));
    }

    #[test]
    fn record_replay_of_synchronized_program_verifies() {
        let src = "int g; lock_t m; barrier_t b;
             void w(int n) {
                lock(&m); g = g + n; unlock(&m);
                barrier_wait(&b);
                lock(&m); g = g * 2; unlock(&m);
             }
             int main() { int t1; int t2;
                barrier_init(&b, 2);
                t1 = spawn(w, 3); t2 = spawn(w, 5);
                join(t1); join(t2); print(g); return 0; }";
        let p = compile(src).unwrap();
        for seed in [1u64, 17, 99] {
            let rec = record(&p, &ExecConfig { seed, ..ExecConfig::default() });
            let rep = replay(
                &p,
                &rec.logs,
                &ExecConfig { seed: seed ^ 0xffff, ..ExecConfig::default() },
            );
            let v = verify_determinism(&rec.result, &rep.result);
            assert!(v.equivalent, "seed {seed}: {:?}", v.differences);
        }
    }
}
