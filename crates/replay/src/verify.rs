//! The determinism verifier: did a replay reproduce the recording?
//!
//! Two layers: [`verify_determinism`] compares end states (outcome, final
//! memory, output), and [`localize_divergence`] bisects the v2 checkpoint
//! stream to name the first journal event where a replay left the recorded
//! schedule — without re-running anything.

use crate::logs::{Checkpoint, JournalEvent, ReplayLogs, CHUNK_EVENTS};
use chimera_runtime::ExecResult;

/// Outcome of comparing two executions for observable equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismReport {
    /// True if all checks passed.
    pub equivalent: bool,
    /// One line per failed check.
    pub differences: Vec<String>,
    /// Where the schedules first parted ways, when journal evidence was
    /// available and disagreed (see [`localize_divergence`]).
    pub divergence: Option<Divergence>,
}

impl DeterminismReport {
    fn ok() -> DeterminismReport {
        DeterminismReport {
            equivalent: true,
            differences: Vec::new(),
            divergence: None,
        }
    }

    fn push(&mut self, what: impl Into<String>) {
        self.equivalent = false;
        self.differences.push(what.into());
    }
}

/// Root-cause class of a localized divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceCause {
    /// The input streams differ (payload or consuming thread).
    InputStream,
    /// A program-synchronization order entry differs (mutex, condvar,
    /// spawn, or output commit order).
    SyncOrder,
    /// A weak-lock entry differs (acquisition order or forced release),
    /// i.e. the instrumentation layer's order was not reproduced.
    WeakLockStream,
    /// The journals agree but a checkpoint digest differs: the schedule
    /// matched, the *values* at it did not (an unlogged data race wrote
    /// different data).
    StateValue,
}

impl std::fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DivergenceCause::InputStream => "input stream",
            DivergenceCause::SyncOrder => "sync order",
            DivergenceCause::WeakLockStream => "weak-lock stream",
            DivergenceCause::StateValue => "state value (unlogged race)",
        };
        f.write_str(s)
    }
}

/// The first point where a replay's journal left the recording, found by
/// binary search over checkpoint digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Chunk index (`event / CHUNK_EVENTS`) containing the first mismatch.
    pub chunk: usize,
    /// Global journal index of the first mismatched event.
    pub event: u64,
    /// The recording's event there (`None` = recording ended first).
    pub recorded: Option<JournalEvent>,
    /// The replay's event there (`None` = replay ended first).
    pub replayed: Option<JournalEvent>,
    /// A few journal lines around the mismatch, recorded vs replayed.
    pub context: Vec<String>,
    /// Root-cause hint derived from the mismatched events.
    pub cause: DivergenceCause,
    /// Checkpoint digests compared during the bisection (the work a full
    /// linear scan would have multiplied).
    pub checkpoint_probes: usize,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "first divergence at event {} (chunk {}), cause: {}",
            self.event, self.chunk, self.cause
        )?;
        writeln!(f, "  recorded: {:?}", self.recorded)?;
        writeln!(f, "  replayed: {:?}", self.replayed)?;
        for line in &self.context {
            writeln!(f, "  {line}")?;
        }
        write!(f, "  ({} checkpoint digests probed)", self.checkpoint_probes)
    }
}

fn cause_of(a: Option<&JournalEvent>, b: Option<&JournalEvent>) -> DivergenceCause {
    let classify = |ev: &JournalEvent| match ev {
        JournalEvent::Input { .. } => DivergenceCause::InputStream,
        JournalEvent::Weak { .. } | JournalEvent::Forced { .. } => {
            DivergenceCause::WeakLockStream
        }
        _ => DivergenceCause::SyncOrder,
    };
    // An input mismatch on either side wins (inputs steer everything
    // downstream); then the weak-lock layer; then plain sync order.
    let (ca, cb) = (a.map(classify), b.map(classify));
    for want in [DivergenceCause::InputStream, DivergenceCause::WeakLockStream] {
        if ca == Some(want) || cb == Some(want) {
            return want;
        }
    }
    DivergenceCause::SyncOrder
}

/// Bisect `recorded` against `observed` (a replay's own logs, e.g. from
/// `replay_bisect`) and name the first journal event where they part ways.
///
/// Returns `None` when journals and checkpoints fully agree. The search
/// binary-searches the checkpoint stream for the first digest mismatch —
/// checkpoint prefixes are cumulative, so digests match exactly up to the
/// first bad chunk — then scans only the bracketed window of at most
/// [`CHUNK_EVENTS`] events.
pub fn localize_divergence(recorded: &ReplayLogs, observed: &ReplayLogs) -> Option<Divergence> {
    if recorded.journal == observed.journal && recorded.checkpoints == observed.checkpoints {
        return None;
    }
    let rec_cp = &recorded.checkpoints;
    let obs_cp = &observed.checkpoints;
    let mut probes = 0usize;
    // bad(i): checkpoint i is missing on either side or its digest
    // differs. The running digest makes badness monotone: once a prefix
    // mismatches, every later checkpoint mismatches too (FNV folding never
    // cancels), so binary search applies.
    let n = rec_cp.len().max(obs_cp.len());
    let mut bad = |i: usize| -> bool {
        probes += 1;
        match (rec_cp.get(i), obs_cp.get(i)) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        }
    };
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if bad(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // lo = first bad checkpoint (or n if all agree — then the divergence
    // sits past the last checkpoint). The window to scan starts at the
    // last good checkpoint's event count.
    let start = if lo == 0 {
        0
    } else {
        rec_cp.get(lo - 1).map(|c| c.events).unwrap_or(0)
    };
    let end = match (rec_cp.get(lo), obs_cp.get(lo)) {
        (Some(a), Some(b)) => a.events.max(b.events),
        _ => recorded.journal.len().max(observed.journal.len()) as u64,
    };
    let first_mismatch = |from: u64, to: u64| -> Option<u64> {
        (from..to).find(|&i| {
            recorded.journal.get(i as usize) != observed.journal.get(i as usize)
        })
    };
    // Scan the bracketed window; fall back to a full scan if the bracket
    // was clean (possible only when the divergence is past the last
    // checkpoint or in checkpoint metadata alone).
    let at = first_mismatch(start, end)
        .or_else(|| first_mismatch(0, recorded.journal.len().max(observed.journal.len()) as u64));
    let Some(event) = at else {
        // Journals identical but a digest differs: same schedule,
        // different data — the signature of an unlogged race.
        let cp = rec_cp
            .iter()
            .zip(obs_cp)
            .find(|(a, b)| a != b)
            .map(|(a, _)| *a)
            .or_else(|| rec_cp.get(lo).copied())
            .unwrap_or(Checkpoint {
                events: 0,
                state_hash: 0,
            });
        let event = cp.events.saturating_sub(1);
        return Some(Divergence {
            chunk: (event / CHUNK_EVENTS as u64) as usize,
            event,
            recorded: recorded.journal.get(event as usize).copied(),
            replayed: observed.journal.get(event as usize).copied(),
            context: vec![format!(
                "checkpoint at {} events: digest {:#x} vs {:#x}",
                cp.events,
                cp.state_hash,
                obs_cp
                    .iter()
                    .find(|c| c.events == cp.events)
                    .map(|c| c.state_hash)
                    .unwrap_or(0),
            )],
            cause: DivergenceCause::StateValue,
            checkpoint_probes: probes,
        });
    };
    let rec_ev = recorded.journal.get(event as usize);
    let obs_ev = observed.journal.get(event as usize);
    let mut context = Vec::new();
    let lo_ctx = event.saturating_sub(2);
    let hi_ctx = event + 3;
    for i in lo_ctx..hi_ctx {
        let mark = if i == event { ">>" } else { "  " };
        context.push(format!(
            "{mark} [{i}] recorded {:?} | replayed {:?}",
            recorded.journal.get(i as usize),
            observed.journal.get(i as usize)
        ));
    }
    Some(Divergence {
        chunk: (event / CHUNK_EVENTS as u64) as usize,
        event,
        recorded: rec_ev.copied(),
        replayed: obs_ev.copied(),
        context,
        cause: cause_of(rec_ev, obs_ev),
        checkpoint_probes: probes,
    })
}

/// Compare a recording and a replay for observable equivalence: same
/// outcome class, same final live memory, and the same output — both the
/// global commit order and each thread's projection.
pub fn verify_determinism(recorded: &ExecResult, replayed: &ExecResult) -> DeterminismReport {
    let mut report = DeterminismReport::ok();
    if recorded.outcome != replayed.outcome {
        report.push(format!(
            "outcome differs: recorded {:?}, replayed {:?}",
            recorded.outcome, replayed.outcome
        ));
    }
    if recorded.state_hash != replayed.state_hash {
        report.push(format!(
            "final memory differs: {:#x} vs {:#x}",
            recorded.state_hash, replayed.state_hash
        ));
    }
    if recorded.output != replayed.output {
        let n = recorded
            .output
            .iter()
            .zip(&replayed.output)
            .take_while(|(a, b)| a == b)
            .count();
        report.push(format!(
            "output differs from element {n}: recorded {} values, replayed {}",
            recorded.output.len(),
            replayed.output.len()
        ));
    }
    report
}

/// [`verify_determinism`], plus journal forensics: when the end states
/// disagree (or the schedules do), attach the bisection result naming the
/// first mismatched chunk and event.
pub fn verify_with_bisection(
    recorded: &ExecResult,
    recorded_logs: &ReplayLogs,
    replayed: &ExecResult,
    observed_logs: &ReplayLogs,
) -> DeterminismReport {
    let mut report = verify_determinism(recorded, replayed);
    report.divergence = localize_divergence(recorded_logs, observed_logs);
    if let Some(d) = &report.divergence {
        report.equivalent = false;
        report.differences.push(format!(
            "schedule diverges at event {} (chunk {}): {}",
            d.event, d.chunk, d.cause
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record;
    use crate::replayer::{replay, replay_bisect};
    use chimera_minic::compile;
    use chimera_runtime::ExecConfig;

    #[test]
    fn identical_runs_verify() {
        let p = compile("int main() { print(1); print(2); return 0; }").unwrap();
        let a = chimera_runtime::execute(&p, &ExecConfig::default());
        let b = chimera_runtime::execute(&p, &ExecConfig::default());
        assert!(verify_determinism(&a, &b).equivalent);
    }

    #[test]
    fn detects_output_difference() {
        let p1 = compile("int main() { print(1); return 0; }").unwrap();
        let p2 = compile("int main() { print(2); return 0; }").unwrap();
        let a = chimera_runtime::execute(&p1, &ExecConfig::default());
        let b = chimera_runtime::execute(&p2, &ExecConfig::default());
        let rep = verify_determinism(&a, &b);
        assert!(!rep.equivalent);
        assert!(rep.differences.iter().any(|d| d.contains("output")));
    }

    #[test]
    fn record_replay_of_synchronized_program_verifies() {
        let src = "int g; lock_t m; barrier_t b;
             void w(int n) {
                lock(&m); g = g + n; unlock(&m);
                barrier_wait(&b);
                lock(&m); g = g * 2; unlock(&m);
             }
             int main() { int t1; int t2;
                barrier_init(&b, 2);
                t1 = spawn(w, 3); t2 = spawn(w, 5);
                join(t1); join(t2); print(g); return 0; }";
        let p = compile(src).unwrap();
        for seed in [1u64, 17, 99] {
            let rec = record(&p, &ExecConfig { seed, ..ExecConfig::default() });
            let rep = replay(
                &p,
                &rec.logs,
                &ExecConfig { seed: seed ^ 0xffff, ..ExecConfig::default() },
            );
            let v = verify_determinism(&rec.result, &rep.result);
            assert!(v.equivalent, "seed {seed}: {:?}", v.differences);
        }
    }

    #[test]
    fn conforming_bisect_replay_localizes_nothing() {
        let src = "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < 150; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                print(g); return 0; }";
        let p = compile(src).unwrap();
        let rec = record(&p, &ExecConfig { seed: 5, ..ExecConfig::default() });
        let rep = replay_bisect(&p, &rec.logs, &ExecConfig { seed: 6, ..ExecConfig::default() });
        assert!(rep.complete);
        assert!(localize_divergence(&rec.logs, &rep.observed).is_none());
        let v = verify_with_bisection(&rec.result, &rec.logs, &rep.result, &rep.observed);
        assert!(v.equivalent, "{:?}", v.differences);
    }

    #[test]
    fn planted_mutation_is_localized_exactly() {
        // Plant a single-event mutation at several positions in a real
        // multi-chunk recording; the bisection must name the exact event
        // and chunk. Checkpoints covering the mutated suffix are poisoned
        // the way a real divergent replay would: their digests differ.
        let src = "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < 300; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                print(g); return 0; }";
        let p = compile(src).unwrap();
        let rec = record(&p, &ExecConfig { seed: 9, ..ExecConfig::default() });
        let total = rec.logs.journal.len() as u64;
        assert!(total > 2 * CHUNK_EVENTS as u64, "need a multi-chunk log");
        for pos in [0u64, 1, 255, 256, 300, total - 1] {
            let mut mutated = rec.logs.clone();
            let ev = &mut mutated.journal[pos as usize];
            *ev = match *ev {
                JournalEvent::Mutex { thread, addr } => JournalEvent::Mutex {
                    thread: thread + 1,
                    addr,
                },
                other => JournalEvent::Spawn {
                    thread: other.thread() + 1,
                },
            };
            for cp in &mut mutated.checkpoints {
                if cp.events > pos {
                    cp.state_hash ^= 0xdead_beef;
                }
            }
            let d = localize_divergence(&rec.logs, &mutated).expect("must diverge");
            assert_eq!(d.event, pos, "event index");
            assert_eq!(d.chunk, pos as usize / CHUNK_EVENTS, "chunk index");
            assert!(matches!(d.cause, DivergenceCause::SyncOrder));
            assert!(!d.context.is_empty());
            // Bisection must beat a linear checkpoint scan for interior
            // positions: probes are logarithmic in checkpoint count.
            let n_cp = rec.logs.checkpoints.len();
            assert!(
                d.checkpoint_probes <= (usize::BITS - n_cp.leading_zeros()) as usize + 1,
                "expected O(log {n_cp}) probes, got {}",
                d.checkpoint_probes
            );
        }
    }

    #[test]
    fn cause_hints_follow_the_mismatched_stream() {
        let mut a = ReplayLogs::default();
        a.push_input(0, vec![1]);
        a.push_weak(
            chimera_minic::ir::WeakLockId(3),
            chimera_minic::ir::LockGranularity::Loop,
            1,
        );
        a.push_mutex(9, 0);
        let mut b = a.clone();
        b.journal[0] = JournalEvent::Input { thread: 5 };
        let d = localize_divergence(&a, &b).unwrap();
        assert_eq!(d.cause, DivergenceCause::InputStream);
        let mut b = a.clone();
        b.journal[1] = JournalEvent::Weak {
            thread: 7,
            lock: chimera_minic::ir::WeakLockId(3),
        };
        let d = localize_divergence(&a, &b).unwrap();
        assert_eq!(d.event, 1);
        assert_eq!(d.cause, DivergenceCause::WeakLockStream);
        let mut b = a.clone();
        b.journal[2] = JournalEvent::Mutex { thread: 4, addr: 9 };
        let d = localize_divergence(&a, &b).unwrap();
        assert_eq!(d.event, 2);
        assert_eq!(d.cause, DivergenceCause::SyncOrder);
    }

    #[test]
    fn identical_journals_with_differing_digests_hint_state_value() {
        let mut a = ReplayLogs::default();
        for i in 0..10u32 {
            a.push_mutex(1, i % 2);
        }
        a.push_checkpoint(10, 0x1111);
        let mut b = a.clone();
        b.checkpoints[0].state_hash = 0x2222;
        let d = localize_divergence(&a, &b).unwrap();
        assert_eq!(d.cause, DivergenceCause::StateValue);
        assert_eq!(d.event, 9);
    }
}
