//! The recording supervisor: observes an execution and writes the replay
//! logs.

use crate::logs::{ReplayLogs, CHUNK_EVENTS};
use chimera_minic::ir::Program;
use chimera_runtime::{
    execute_supervised, Event, EventKind, EventMask, ExecConfig, ExecResult, Supervisor,
};

/// A completed recording: the logs plus the recorded run's result (used for
/// determinism verification and overhead measurement).
#[derive(Debug, Clone)]
pub struct Recording {
    /// The logs a replayer needs.
    pub logs: ReplayLogs,
    /// The recorded execution itself.
    pub result: ExecResult,
}

/// Record one execution of (typically instrumented) `program`.
///
/// Turns on all log-cost accounting in the machine (`log_sync`, `log_weak`,
/// `log_input`), so `result.makespan` is the *recording* runtime the
/// paper's Table 2 and Figure 5 measure. Checkpoints are emitted every
/// [`CHUNK_EVENTS`] ordered events (the v2 chunk boundary).
pub fn record(program: &Program, base: &ExecConfig) -> Recording {
    record_with(program, base, CHUNK_EVENTS as u64)
}

/// [`record`] with an explicit checkpoint interval (0 disables
/// checkpointing entirely — the v1-era recording mode the format benchmark
/// compares against).
pub fn record_with(program: &Program, base: &ExecConfig, ckpt_every: u64) -> Recording {
    let config = ExecConfig {
        log_sync: true,
        log_weak: true,
        log_input: true,
        timeout_enabled: true,
        ..*base
    };
    let mut sup = Recorder::with_interval(ckpt_every);
    let result = execute_supervised(program, &config, &mut sup);
    Recording {
        logs: sup.logs,
        result,
    }
}

/// The event observer that builds [`ReplayLogs`] — per-object order
/// streams, the global journal, and (when enabled) periodic schedule
/// checkpoints.
#[derive(Debug, Clone)]
pub struct Recorder {
    /// Logs built so far.
    pub logs: ReplayLogs,
    ckpt_every: u64,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::with_interval(CHUNK_EVENTS as u64)
    }
}

impl Recorder {
    /// A recorder checkpointing every `ckpt_every` ordered events (0 =
    /// never).
    pub fn with_interval(ckpt_every: u64) -> Recorder {
        Recorder {
            logs: ReplayLogs::default(),
            ckpt_every,
        }
    }
}

impl Supervisor for Recorder {
    /// Recording only consumes the event kinds it logs; the machine skips
    /// constructing the rest (notably per-call `FuncEnter`/`FuncExit`).
    fn event_mask(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Input,
            EventKind::Sync,
            EventKind::Output,
            EventKind::WeakAcquire,
            EventKind::WeakForcedRelease,
        ])
    }

    fn checkpoint_interval(&self) -> u64 {
        self.ckpt_every
    }

    fn on_checkpoint(&mut self, events: u64, state_hash: u64) {
        self.logs.push_checkpoint(events, state_hash);
    }

    fn on_event(&mut self, ev: &Event) {
        match ev {
            Event::Input { thread, data, .. } => {
                self.logs.push_input(thread.0, data.clone());
                self.logs.input_log_entries += 1;
            }
            Event::Sync {
                thread, kind, addr, ..
            } => {
                self.logs.sync_log_entries += 1;
                match kind {
                    chimera_runtime::SyncKind::Mutex => {
                        self.logs.push_mutex(*addr, thread.0);
                    }
                    chimera_runtime::SyncKind::Cond => {
                        self.logs.push_cond(*addr, thread.0);
                    }
                    chimera_runtime::SyncKind::Spawn => {
                        self.logs.push_spawn(thread.0);
                    }
                    // Barrier releases and joins are deterministic given
                    // the rest of the order; they are counted but need no
                    // order stream.
                    chimera_runtime::SyncKind::Barrier
                    | chimera_runtime::SyncKind::Join => {}
                }
            }
            Event::Output { thread, .. } => {
                self.logs.push_output(thread.0);
                self.logs.sync_log_entries += 1;
            }
            Event::WeakAcquire {
                thread,
                lock,
                granularity,
                ..
            } => {
                self.logs.push_weak(*lock, *granularity, thread.0);
            }
            Event::WeakForcedRelease {
                lock,
                holder,
                icount,
                parked,
                ..
            } => {
                self.logs.push_forced(holder.0, *icount, *parked, *lock);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    #[test]
    fn records_inputs_and_sync_order() {
        let p = compile(
            "int g; lock_t m; int buf[8];
             void w(int n) { lock(&m); g = g + n; unlock(&m); }
             int main() { int t;
                sys_read(0, &buf[0], 8);
                t = spawn(w, 1); w(2); join(t);
                print(g); return 0; }",
        )
        .unwrap();
        let rec = record(&p, &ExecConfig::default());
        assert!(rec.result.outcome.is_exit());
        assert_eq!(rec.logs.input_log_entries, 1);
        assert_eq!(rec.logs.input_words(), 8);
        // Two lock acquisitions on m.
        let total_mutex: usize = rec.logs.mutex_order.values().map(|v| v.len()).sum();
        assert_eq!(total_mutex, 2);
        assert_eq!(rec.logs.spawn_order, vec![0]);
    }

    #[test]
    fn recorded_journal_matches_order_streams() {
        let p = compile(
            "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < 40; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                print(g); return 0; }",
        )
        .unwrap();
        let rec = record(&p, &ExecConfig::default());
        // The journal is the global order; projected per object it must
        // reproduce the per-object streams — which is exactly what the v2
        // encoder relies on to drop the explicit sections.
        let bytes = rec.logs.to_bytes();
        let back = ReplayLogs::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, rec.logs);
        let total: usize = rec.logs.mutex_order.values().map(|v| v.len()).sum();
        assert!(rec.logs.journal.len() >= total);
    }

    #[test]
    fn recorder_emits_checkpoints_at_chunk_boundaries() {
        let p = compile(
            "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < 400; i = i + 1) {
                lock(&m); g = g + n; unlock(&m); } }
             int main() { int t; t = spawn(w, 1); w(2); join(t);
                print(g); return 0; }",
        )
        .unwrap();
        let rec = record(&p, &ExecConfig::default());
        assert!(
            rec.logs.journal.len() >= 800,
            "expected a multi-chunk journal, got {}",
            rec.logs.journal.len()
        );
        assert!(!rec.logs.checkpoints.is_empty());
        for (i, cp) in rec.logs.checkpoints.iter().enumerate() {
            assert_eq!(cp.events, (i as u64 + 1) * CHUNK_EVENTS as u64);
        }
        // Interval 0 turns checkpointing off and must not change the logs
        // otherwise.
        let rec0 = record_with(&p, &ExecConfig::default(), 0);
        assert!(rec0.logs.checkpoints.is_empty());
        assert_eq!(rec0.logs.journal, rec.logs.journal);
    }

    #[test]
    fn recording_costs_inflate_makespan() {
        let src = "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < 200; i = i + 1) {
                lock(&m); g = g + 1; unlock(&m); } }
             int main() { int t; t = spawn(w, 0); w(0); join(t); return g; }";
        let p = compile(src).unwrap();
        let plain = chimera_runtime::execute(&p, &ExecConfig::default());
        let rec = record(&p, &ExecConfig::default());
        assert!(
            rec.result.makespan > plain.makespan,
            "logging must cost time: {} vs {}",
            rec.result.makespan,
            plain.makespan
        );
    }
}
