//! The recording supervisor: observes an execution and writes the replay
//! logs.

use crate::logs::ReplayLogs;
use chimera_minic::ir::Program;
use chimera_runtime::{
    execute_supervised, Event, EventKind, EventMask, ExecConfig, ExecResult, Supervisor,
};
use std::collections::BTreeMap;

/// A completed recording: the logs plus the recorded run's result (used for
/// determinism verification and overhead measurement).
#[derive(Debug, Clone)]
pub struct Recording {
    /// The logs a replayer needs.
    pub logs: ReplayLogs,
    /// The recorded execution itself.
    pub result: ExecResult,
}

/// Record one execution of (typically instrumented) `program`.
///
/// Turns on all log-cost accounting in the machine (`log_sync`, `log_weak`,
/// `log_input`), so `result.makespan` is the *recording* runtime the
/// paper's Table 2 and Figure 5 measure.
pub fn record(program: &Program, base: &ExecConfig) -> Recording {
    let config = ExecConfig {
        log_sync: true,
        log_weak: true,
        log_input: true,
        timeout_enabled: true,
        ..*base
    };
    let mut sup = Recorder::default();
    let result = execute_supervised(program, &config, &mut sup);
    Recording {
        logs: sup.logs,
        result,
    }
}

/// The event observer that builds [`ReplayLogs`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    /// Logs built so far.
    pub logs: ReplayLogs,
    input_seq: BTreeMap<u32, u64>,
}

impl Supervisor for Recorder {
    /// Recording only consumes the event kinds it logs; the machine skips
    /// constructing the rest (notably per-call `FuncEnter`/`FuncExit`).
    fn event_mask(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Input,
            EventKind::Sync,
            EventKind::Output,
            EventKind::WeakAcquire,
            EventKind::WeakForcedRelease,
        ])
    }

    fn on_event(&mut self, ev: &Event) {
        match ev {
            Event::Input {
                thread, data, ..
            } => {
                let seq = self.input_seq.entry(thread.0).or_insert(0);
                self.logs.inputs.insert((thread.0, *seq), data.clone());
                *seq += 1;
                self.logs.input_log_entries += 1;
            }
            Event::Sync {
                thread, kind, addr, ..
            } => {
                self.logs.sync_log_entries += 1;
                match kind {
                    chimera_runtime::SyncKind::Mutex => {
                        self.logs
                            .mutex_order
                            .entry(*addr)
                            .or_default()
                            .push(thread.0);
                    }
                    chimera_runtime::SyncKind::Cond => {
                        self.logs
                            .cond_order
                            .entry(*addr)
                            .or_default()
                            .push(thread.0);
                    }
                    chimera_runtime::SyncKind::Spawn => {
                        self.logs.spawn_order.push(thread.0);
                    }
                    // Barrier releases and joins are deterministic given
                    // the rest of the order; they are counted but need no
                    // order stream.
                    chimera_runtime::SyncKind::Barrier
                    | chimera_runtime::SyncKind::Join => {}
                }
            }
            Event::Output { thread, .. } => {
                self.logs.output_order.push(thread.0);
                self.logs.sync_log_entries += 1;
            }
            Event::WeakAcquire {
                thread,
                lock,
                granularity,
                ..
            } => {
                self.logs.weak_order.entry(*lock).or_default().push(thread.0);
                self.logs.weak_gran.insert(*lock, *granularity);
            }
            Event::WeakForcedRelease {
                lock,
                holder,
                icount,
                parked,
                ..
            } => {
                self.logs.forced.push((holder.0, *icount, *parked, *lock));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_minic::compile;

    #[test]
    fn records_inputs_and_sync_order() {
        let p = compile(
            "int g; lock_t m; int buf[8];
             void w(int n) { lock(&m); g = g + n; unlock(&m); }
             int main() { int t;
                sys_read(0, &buf[0], 8);
                t = spawn(w, 1); w(2); join(t);
                print(g); return 0; }",
        )
        .unwrap();
        let rec = record(&p, &ExecConfig::default());
        assert!(rec.result.outcome.is_exit());
        assert_eq!(rec.logs.input_log_entries, 1);
        assert_eq!(rec.logs.input_words(), 8);
        // Two lock acquisitions on m.
        let total_mutex: usize = rec.logs.mutex_order.values().map(|v| v.len()).sum();
        assert_eq!(total_mutex, 2);
        assert_eq!(rec.logs.spawn_order, vec![0]);
    }

    #[test]
    fn recording_costs_inflate_makespan() {
        let src = "int g; lock_t m;
             void w(int n) { int i; for (i = 0; i < 200; i = i + 1) {
                lock(&m); g = g + 1; unlock(&m); } }
             int main() { int t; t = spawn(w, 0); w(0); join(t); return g; }";
        let p = compile(src).unwrap();
        let plain = chimera_runtime::execute(&p, &ExecConfig::default());
        let rec = record(&p, &ExecConfig::default());
        assert!(
            rec.result.makespan > plain.makespan,
            "logging must cost time: {} vs {}",
            rec.result.makespan,
            plain.makespan
        );
    }
}
