//! Replay-log data structures, binary encoding, and compressed-size
//! estimation.
//!
//! Chimera's recorder produces two families of logs (paper Table 2):
//!
//! * **DRF logs** — enough to replay a data-race-free program: every
//!   nondeterministic input, and the happens-before order of the program's
//!   own synchronization operations.
//! * **Weak-lock logs** — the acquisition order of every weak-lock the
//!   instrumenter added (one stream per granularity class), plus any forced
//!   releases with their precise preemption points.
//!
//! The paper reports gzip-compressed sizes; we report sizes from a binary
//! varint encoding plus an order-0 entropy + run-length estimate standing
//! in for gzip (DESIGN.md §2).

use chimera_minic::ir::{LockGranularity, WeakLockId};
use std::collections::BTreeMap;

/// A recorded nondeterministic input: the `seq`-th input consumed by
/// `thread`.
pub type InputKey = (u32, u64);

/// All logs produced by one recorded execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayLogs {
    /// Input payloads keyed by (thread, per-thread input sequence).
    pub inputs: BTreeMap<InputKey, Vec<i64>>,
    /// Per-mutex acquisition order (thread ids).
    pub mutex_order: BTreeMap<i64, Vec<u32>>,
    /// Per-condvar wakeup delivery order (thread ids of the woken).
    pub cond_order: BTreeMap<i64, Vec<u32>>,
    /// Global spawn order (parent thread ids).
    pub spawn_order: Vec<u32>,
    /// Global output-syscall order (writing thread ids).
    pub output_order: Vec<u32>,
    /// Per-weak-lock acquisition order (thread ids).
    pub weak_order: BTreeMap<WeakLockId, Vec<u32>>,
    /// Granularity of each weak-lock seen (for per-class counting).
    pub weak_gran: BTreeMap<WeakLockId, LockGranularity>,
    /// Forced releases: (holder thread, retired-instruction count, parked
    /// flag, lock), in commit order.
    pub forced: Vec<(u32, u64, bool, WeakLockId)>,
    /// Count of program sync events logged (mutex + barrier + cond + spawn
    /// + join).
    pub sync_log_entries: u64,
    /// Count of input events logged.
    pub input_log_entries: u64,
}

impl ReplayLogs {
    /// Number of weak-lock log entries for one granularity class — the
    /// paper's "instr. log" / "basic blk. log" / "loop log" / "func. log"
    /// columns of Table 2.
    pub fn weak_entries(&self, g: LockGranularity) -> u64 {
        self.weak_order
            .iter()
            .filter(|(l, _)| self.weak_gran.get(l) == Some(&g))
            .map(|(_, v)| v.len() as u64)
            .sum()
    }

    /// Total input words recorded.
    pub fn input_words(&self) -> u64 {
        self.inputs.values().map(|v| v.len() as u64).sum()
    }

    /// Serialize the input log to bytes (varint packed).
    pub fn encode_input_log(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for ((t, seq), data) in &self.inputs {
            push_varint(&mut out, *t as u64);
            push_varint(&mut out, *seq);
            push_varint(&mut out, data.len() as u64);
            for &v in data {
                push_varint(&mut out, zigzag(v));
            }
        }
        out
    }

    /// Serialize the order log (program sync + weak-locks + forced
    /// releases) to bytes.
    pub fn encode_order_log(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (addr, threads) in &self.mutex_order {
            push_varint(&mut out, zigzag(*addr));
            push_varint(&mut out, threads.len() as u64);
            out.extend(threads.iter().map(|t| *t as u8));
        }
        for (addr, threads) in &self.cond_order {
            push_varint(&mut out, zigzag(*addr));
            push_varint(&mut out, threads.len() as u64);
            out.extend(threads.iter().map(|t| *t as u8));
        }
        push_varint(&mut out, self.spawn_order.len() as u64);
        out.extend(self.spawn_order.iter().map(|t| *t as u8));
        push_varint(&mut out, self.output_order.len() as u64);
        out.extend(self.output_order.iter().map(|t| *t as u8));
        for (lock, threads) in &self.weak_order {
            push_varint(&mut out, lock.0 as u64);
            push_varint(&mut out, threads.len() as u64);
            out.extend(threads.iter().map(|t| *t as u8));
        }
        for (t, icount, parked, lock) in &self.forced {
            push_varint(&mut out, *t as u64);
            push_varint(&mut out, *icount);
            out.push(*parked as u8);
            push_varint(&mut out, lock.0 as u64);
        }
        out
    }

    /// Estimated compressed sizes in bytes: `(input_log, order_log)`.
    pub fn compressed_sizes(&self) -> (usize, usize) {
        (
            compressed_estimate(&self.encode_input_log()),
            compressed_estimate(&self.encode_order_log()),
        )
    }

    /// Serialize the complete log set to a self-describing byte buffer
    /// (what a real deployment writes to its log file).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"CHIM");
        push_varint(&mut out, 1); // format version
        push_varint(&mut out, self.inputs.len() as u64);
        for ((t, seq), data) in &self.inputs {
            push_varint(&mut out, *t as u64);
            push_varint(&mut out, *seq);
            push_varint(&mut out, data.len() as u64);
            for &v in data {
                push_varint(&mut out, zigzag(v));
            }
        }
        let order_map = |out: &mut Vec<u8>, m: &BTreeMap<i64, Vec<u32>>| {
            push_varint(out, m.len() as u64);
            for (addr, threads) in m {
                push_varint(out, zigzag(*addr));
                push_varint(out, threads.len() as u64);
                for t in threads {
                    push_varint(out, *t as u64);
                }
            }
        };
        order_map(&mut out, &self.mutex_order);
        order_map(&mut out, &self.cond_order);
        push_varint(&mut out, self.spawn_order.len() as u64);
        for t in &self.spawn_order {
            push_varint(&mut out, *t as u64);
        }
        push_varint(&mut out, self.output_order.len() as u64);
        for t in &self.output_order {
            push_varint(&mut out, *t as u64);
        }
        push_varint(&mut out, self.weak_order.len() as u64);
        for (lock, threads) in &self.weak_order {
            push_varint(&mut out, lock.0 as u64);
            let g = self
                .weak_gran
                .get(lock)
                .copied()
                .unwrap_or(LockGranularity::Instruction);
            push_varint(&mut out, gran_code(g));
            push_varint(&mut out, threads.len() as u64);
            for t in threads {
                push_varint(&mut out, *t as u64);
            }
        }
        push_varint(&mut out, self.forced.len() as u64);
        for (t, icount, parked, lock) in &self.forced {
            push_varint(&mut out, *t as u64);
            push_varint(&mut out, *icount);
            out.push(*parked as u8);
            push_varint(&mut out, lock.0 as u64);
        }
        push_varint(&mut out, self.sync_log_entries);
        push_varint(&mut out, self.input_log_entries);
        out
    }

    /// Parse a buffer produced by [`ReplayLogs::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (bad magic,
    /// unsupported version, or truncation).
    pub fn from_bytes(bytes: &[u8]) -> Result<ReplayLogs, String> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != b"CHIM" {
            return Err("bad magic".into());
        }
        let version = r.varint()?;
        if version != 1 {
            return Err(format!("unsupported log format version {version}"));
        }
        let mut logs = ReplayLogs::default();
        let n_inputs = r.varint()?;
        for _ in 0..n_inputs {
            let t = r.varint()? as u32;
            let seq = r.varint()?;
            let len = r.varint()? as usize;
            let mut data = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                data.push(unzigzag(r.varint()?));
            }
            logs.inputs.insert((t, seq), data);
        }
        let order_map = |r: &mut Reader| -> Result<BTreeMap<i64, Vec<u32>>, String> {
            let n = r.varint()?;
            let mut m = BTreeMap::new();
            for _ in 0..n {
                let addr = unzigzag(r.varint()?);
                let len = r.varint()? as usize;
                let mut v = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    v.push(r.varint()? as u32);
                }
                m.insert(addr, v);
            }
            Ok(m)
        };
        logs.mutex_order = order_map(&mut r)?;
        logs.cond_order = order_map(&mut r)?;
        let n = r.varint()? as usize;
        for _ in 0..n {
            logs.spawn_order.push(r.varint()? as u32);
        }
        let n = r.varint()? as usize;
        for _ in 0..n {
            logs.output_order.push(r.varint()? as u32);
        }
        let n_weak = r.varint()?;
        for _ in 0..n_weak {
            let lock = WeakLockId(r.varint()? as u32);
            let g = gran_from_code(r.varint()?)?;
            let len = r.varint()? as usize;
            let mut v = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                v.push(r.varint()? as u32);
            }
            logs.weak_order.insert(lock, v);
            logs.weak_gran.insert(lock, g);
        }
        let n_forced = r.varint()?;
        for _ in 0..n_forced {
            let t = r.varint()? as u32;
            let icount = r.varint()?;
            let parked = r.take(1)?[0] != 0;
            let lock = WeakLockId(r.varint()? as u32);
            logs.forced.push((t, icount, parked, lock));
        }
        logs.sync_log_entries = r.varint()?;
        logs.input_log_entries = r.varint()?;
        Ok(logs)
    }
}

fn gran_code(g: LockGranularity) -> u64 {
    match g {
        LockGranularity::Function => 0,
        LockGranularity::Loop => 1,
        LockGranularity::BasicBlock => 2,
        LockGranularity::Instruction => 3,
    }
}

fn gran_from_code(c: u64) -> Result<LockGranularity, String> {
    Ok(match c {
        0 => LockGranularity::Function,
        1 => LockGranularity::Loop,
        2 => LockGranularity::BasicBlock,
        3 => LockGranularity::Instruction,
        other => return Err(format!("bad granularity code {other}")),
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err("truncated log".into());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.take(1)?[0];
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err("varint overflow".into());
            }
        }
    }
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// ZigZag-encode a signed value for varint packing.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// LEB128 varint.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Estimate the gzip-compressed size of `bytes`: a run-length pre-pass
/// (gzip's LZ77 collapses runs) followed by the order-0 Shannon entropy
/// bound of the residual, plus a small header constant.
pub fn compressed_estimate(bytes: &[u8]) -> usize {
    if bytes.is_empty() {
        return 0;
    }
    // RLE pre-pass: (byte, run-length<=255) pairs.
    let mut rle = Vec::with_capacity(bytes.len() / 2);
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let mut run = 1usize;
        while i + run < bytes.len() && bytes[i + run] == b && run < 255 {
            run += 1;
        }
        rle.push(b);
        rle.push(run as u8);
        i += run;
    }
    // Order-0 entropy of the RLE stream.
    let mut freq = [0u64; 256];
    for &b in &rle {
        freq[b as usize] += 1;
    }
    let n = rle.len() as f64;
    let mut bits = 0.0;
    for &f in freq.iter() {
        if f > 0 {
            let p = f as f64 / n;
            bits += -(p.log2()) * f as f64;
        }
    }
    (bits / 8.0).ceil() as usize + 18 // gzip header/trailer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_small_and_large() {
        let mut out = Vec::new();
        push_varint(&mut out, 0);
        push_varint(&mut out, 127);
        push_varint(&mut out, 128);
        push_varint(&mut out, u64::MAX);
        assert_eq!(out[0], 0);
        assert_eq!(out[1], 127);
        assert_eq!(out[2] & 0x80, 0x80);
        assert_eq!(out.len(), 1 + 1 + 2 + 10);
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn compressed_estimate_compresses_runs() {
        let uniform = vec![7u8; 10_000];
        let est = compressed_estimate(&uniform);
        assert!(est < 500, "run of one byte must compress well, got {est}");
        // Pseudo-random bytes compress poorly.
        let noisy: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert!(compressed_estimate(&noisy) > est * 10);
    }

    #[test]
    fn empty_log_sizes_are_zero() {
        let logs = ReplayLogs::default();
        let (i, _o) = logs.compressed_sizes();
        assert_eq!(i, 0);
    }

    #[test]
    fn weak_entries_split_by_granularity() {
        let mut logs = ReplayLogs::default();
        logs.weak_order.insert(WeakLockId(0), vec![0, 1, 0]);
        logs.weak_order.insert(WeakLockId(1), vec![1]);
        logs.weak_gran.insert(WeakLockId(0), LockGranularity::Loop);
        logs.weak_gran
            .insert(WeakLockId(1), LockGranularity::Function);
        assert_eq!(logs.weak_entries(LockGranularity::Loop), 3);
        assert_eq!(logs.weak_entries(LockGranularity::Function), 1);
        assert_eq!(logs.weak_entries(LockGranularity::BasicBlock), 0);
    }

    /// A log exercising every section of the format.
    fn rich_logs() -> ReplayLogs {
        let mut logs = ReplayLogs::default();
        logs.inputs.insert((0, 0), vec![5, -3, 1 << 40]);
        logs.inputs.insert((2, 7), vec![]);
        logs.mutex_order.insert(-9, vec![0, 1, 0, 2]);
        logs.cond_order.insert(44, vec![3]);
        logs.spawn_order = vec![0, 0, 1];
        logs.output_order = vec![2, 0];
        logs.weak_order.insert(WeakLockId(5), vec![1, 2]);
        logs.weak_gran.insert(WeakLockId(5), LockGranularity::Loop);
        logs.forced.push((1, 999, true, WeakLockId(5)));
        logs.sync_log_entries = 17;
        logs.input_log_entries = 3;
        logs
    }

    #[test]
    fn serialization_round_trips() {
        let logs = rich_logs();
        let bytes = logs.to_bytes();
        let back = ReplayLogs::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, logs);
    }

    #[test]
    fn every_truncation_of_a_valid_log_errors() {
        // The parser consumes fields strictly sequentially and a valid
        // buffer parses to exactly its last byte, so *every* proper prefix
        // must run out mid-field and report truncation — never panic, and
        // never accept a half-log silently.
        let bytes = rich_logs().to_bytes();
        for len in 0..bytes.len() {
            let r = ReplayLogs::from_bytes(&bytes[..len]);
            assert!(
                r.is_err(),
                "prefix of {len}/{} bytes parsed Ok",
                bytes.len()
            );
        }
    }

    #[test]
    fn hostile_section_lengths_error_not_panic() {
        let header = |b: &mut Vec<u8>| {
            b.extend_from_slice(b"CHIM");
            push_varint(b, 1);
        };
        // Absurd input-record count: must fail on the missing records, not
        // try to allocate for them.
        let mut b = Vec::new();
        header(&mut b);
        push_varint(&mut b, u64::MAX);
        assert!(ReplayLogs::from_bytes(&b).is_err());
        // Absurd payload length inside one otherwise-valid input record.
        let mut b = Vec::new();
        header(&mut b);
        push_varint(&mut b, 1); // one input record
        push_varint(&mut b, 0); // thread
        push_varint(&mut b, 0); // seq
        push_varint(&mut b, u64::MAX); // payload length
        assert!(ReplayLogs::from_bytes(&b).is_err());
        // Unknown weak-lock granularity code.
        let mut b = Vec::new();
        header(&mut b);
        for _ in 0..5 {
            push_varint(&mut b, 0); // empty inputs/mutex/cond/spawn/output
        }
        push_varint(&mut b, 1); // one weak-lock stream
        push_varint(&mut b, 0); // lock id
        push_varint(&mut b, 9); // bogus granularity
        let err = ReplayLogs::from_bytes(&b).unwrap_err();
        assert!(err.contains("granularity"), "{err}");
        // A varint that never terminates within 64 bits.
        let mut b = b"CHIM".to_vec();
        b.extend([0xff; 10]);
        let err = ReplayLogs::from_bytes(&b).unwrap_err();
        assert!(err.contains("varint overflow"), "{err}");
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(ReplayLogs::from_bytes(b"NOPE....").is_err());
        assert!(ReplayLogs::from_bytes(b"CH").is_err());
        let mut ok = ReplayLogs::default().to_bytes();
        ok.truncate(5);
        // Truncated buffers must error, not panic.
        let _ = ReplayLogs::from_bytes(&ok);
    }

    #[test]
    fn unzigzag_inverts_zigzag() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    mod proptests {
        use super::*;
        use chimera_testkit::prop::{self, Gen, Source};
        use chimera_testkit::prop_assert_eq;

        fn arb_logs() -> Gen<ReplayLogs> {
            fn order(s: &mut Source) -> BTreeMap<i64, Vec<u32>> {
                let n = s.int(0usize..4);
                (0..n)
                    .map(|_| {
                        let key = s.raw_u64() as i64;
                        let len = s.int(0usize..12);
                        (key, (0..len).map(|_| s.int(0u32..8)).collect())
                    })
                    .collect()
            }
            Gen::new(|s| {
                let n_inputs = s.int(0usize..6);
                let inputs = (0..n_inputs)
                    .map(|_| {
                        let key = (s.int(0u32..8), s.int(0u64..64));
                        let len = s.int(0usize..16);
                        (key, (0..len).map(|_| s.raw_u64() as i64).collect())
                    })
                    .collect();
                let mutex_order = order(s);
                let cond_order = order(s);
                let n_weak = s.int(0usize..4);
                let weak_order: BTreeMap<WeakLockId, Vec<u32>> = (0..n_weak)
                    .map(|_| {
                        let key = WeakLockId(s.int(0u32..16));
                        let len = s.int(0usize..12);
                        (key, (0..len).map(|_| s.int(0u32..8)).collect())
                    })
                    .collect();
                let n_forced = s.int(0usize..5);
                let forced = (0..n_forced)
                    .map(|_| {
                        (s.int(0u32..8), s.raw_u64(), s.bool(), WeakLockId(s.int(0u32..16)))
                    })
                    .collect();
                let weak_gran = weak_order
                    .keys()
                    .map(|l| (*l, LockGranularity::Loop))
                    .collect();
                ReplayLogs {
                    inputs,
                    mutex_order,
                    cond_order,
                    spawn_order: vec![0, 0],
                    output_order: vec![1],
                    weak_order,
                    weak_gran,
                    forced,
                    sync_log_entries: s.raw_u64(),
                    input_log_entries: s.raw_u64(),
                }
            })
        }

        /// Arbitrary logs survive a serialize/parse round trip.
        #[test]
        fn to_bytes_from_bytes_round_trips() {
            prop::check("to_bytes_from_bytes_round_trips", &arb_logs(), |logs| {
                let back = ReplayLogs::from_bytes(&logs.to_bytes()).expect("valid buffer");
                prop_assert_eq!(&back, logs);
                Ok(())
            });
        }

        /// Random byte soup never panics the parser.
        #[test]
        fn from_bytes_never_panics() {
            let gen = prop::vec_of(prop::any_u8(), 0..256);
            prop::check("from_bytes_never_panics", &gen, |bytes| {
                let _ = ReplayLogs::from_bytes(bytes);
                Ok(())
            });
        }

        /// Structured corruption: start from a *valid* encoding of an
        /// arbitrary log, then flip a few bytes and possibly truncate.
        /// This drives the parser deep into real sections (random soup
        /// almost always dies at the magic), where it must still either
        /// error cleanly or produce a log that re-serializes.
        #[test]
        fn corrupted_valid_encodings_never_panic() {
            let gen = arb_logs().flat_map(|logs| {
                let bytes = logs.to_bytes();
                Gen::new(move |s| {
                    let mut b = bytes.clone();
                    let flips = s.int(1usize..5);
                    for _ in 0..flips {
                        let i = s.int(0usize..b.len());
                        b[i] = s.int(0u32..256) as u8;
                    }
                    if s.bool() {
                        let keep = s.int(0usize..b.len() + 1);
                        b.truncate(keep);
                    }
                    b
                })
            });
            prop::check("corrupted_valid_encodings_never_panic", &gen, |bytes| {
                if let Ok(parsed) = ReplayLogs::from_bytes(bytes) {
                    // Corruption may still decode (e.g. a flipped thread
                    // id); whatever comes back must round-trip its own
                    // re-encoding.
                    let again = ReplayLogs::from_bytes(&parsed.to_bytes()).expect("re-encode");
                    prop_assert_eq!(&again, &parsed);
                }
                Ok(())
            });
        }
    }

    #[test]
    fn encoding_includes_all_inputs() {
        let mut logs = ReplayLogs::default();
        logs.inputs.insert((0, 0), vec![1, 2, 3]);
        logs.inputs.insert((1, 0), vec![250; 100]);
        let bytes = logs.encode_input_log();
        assert!(bytes.len() > 100);
        assert_eq!(logs.input_words(), 103);
    }
}
